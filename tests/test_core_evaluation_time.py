"""Tests for the Table IV evaluation-time estimator."""

import pytest

from repro.core.evaluation_time import estimate_evaluation_time


class TestEstimateEvaluationTime:
    def test_tight_normal_data(self, rng):
        samples = rng.normal(100, 0.2, size=50)
        estimate = estimate_evaluation_time(samples, rng=rng)
        assert estimate.parametric_runs <= 2
        assert estimate.confirm_runs == 10
        assert estimate.sample_count == 50

    def test_noisy_data_needs_many_runs(self, rng):
        samples = rng.normal(100, 15, size=50)
        estimate = estimate_evaluation_time(samples, rng=rng)
        assert estimate.parametric_runs > 50

    def test_recommended_runs_follows_normality(self, rng):
        normal = estimate_evaluation_time(
            rng.normal(100, 1, size=50), rng=rng)
        if normal.normality.normal:
            assert normal.recommended_runs == normal.parametric_runs
        skewed = estimate_evaluation_time(
            rng.lognormal(4.6, 1.0, size=50), rng=rng)
        if not skewed.normality.normal:
            expected = (skewed.confirm_runs
                        if skewed.confirm_runs is not None
                        else skewed.sample_count + 1)
            assert skewed.recommended_runs == expected

    def test_confirm_display_shows_greater_than(self, rng):
        samples = rng.lognormal(0, 2.0, size=30)
        estimate = estimate_evaluation_time(samples, rng=rng)
        if estimate.confirm_runs is None:
            assert estimate.confirm_display() == ">30"
        else:
            assert estimate.confirm_display().isdigit()

    def test_evaluation_seconds_scales_with_run_duration(self, rng):
        samples = rng.normal(100, 1, size=50)
        short = estimate_evaluation_time(samples, run_seconds=60,
                                         rng=rng)
        long = estimate_evaluation_time(samples, run_seconds=120,
                                        rng=rng)
        assert long.evaluation_seconds == pytest.approx(
            2 * short.evaluation_seconds)

    def test_format_row_matches_table4_fields(self, rng):
        estimate = estimate_evaluation_time(
            rng.normal(100, 1, size=50), rng=rng)
        row = estimate.format_row("HP-SMToff")
        assert "parametric=" in row
        assert "CONFIRM=" in row
        assert "Shapiro-Wilk=" in row
