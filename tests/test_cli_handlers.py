"""End-to-end tests for the ``capacity`` and ``tune --apply`` CLI
handlers, plus the ``--seed`` threading added with the campaign PR."""

from repro.cli import main as cli_main

#: A tiny capacity grid: two load points, two runs, generous QoS so
#: both observers find nonzero capacity and the provisioning section
#: renders.
TINY_CAPACITY = [
    "capacity", "--qps", "20000", "40000", "--runs", "2",
    "--requests", "60", "--qos-p99", "5000",
    "--target-qps", "100000",
]


class TestCapacity:
    def test_capacity_end_to_end(self, capsys):
        assert cli_main(list(TINY_CAPACITY)) == 0
        output = capsys.readouterr().out
        # Both observers report a capacity under the QoS target...
        assert "LP: capacity" in output
        assert "HP: capacity" in output
        assert "p99 <= 5000 us" in output
        # ...and the fleet-provisioning comparison renders.
        assert "Fleet sizes for 100000 QPS:" in output
        assert "machines" in output
        assert "the optimistic observer" in output

    def test_capacity_sweep_limited_under_tight_qos(self, capsys):
        assert cli_main([
            "capacity", "--qps", "20000", "--runs", "2",
            "--requests", "60", "--qos-p99", "5000",
            "--target-qps", "100000"]) == 0
        # One sweep point means capacity equals the sweep edge.
        assert "sweep-limited" in capsys.readouterr().out

    def test_capacity_is_seed_deterministic(self, capsys):
        cli_main(list(TINY_CAPACITY) + ["--seed", "7"])
        first = capsys.readouterr().out
        cli_main(list(TINY_CAPACITY) + ["--seed", "7"])
        assert capsys.readouterr().out == first

    def test_capacity_seed_changes_the_samples(self, capsys):
        """Different base seeds draw different runs; the handler must
        actually thread --seed through to run_experiment."""
        import numpy as np

        from repro.config.presets import LP_CLIENT
        from repro.core.experiment import run_experiment
        from repro.workloads.memcached import build_memcached_testbed

        def p99(seed):
            result = run_experiment(
                lambda s: build_memcached_testbed(
                    s, client_config=LP_CLIENT, qps=20_000,
                    num_requests=60),
                runs=2, base_seed=seed)
            return float(np.median(result.p99_samples()))

        assert p99(0) != p99(1_000_000)


class TestTuneApply:
    def test_apply_plans_then_applies(self, capsys):
        assert cli_main(["tune", "--config", "HP", "--apply"]) == 0
        output = capsys.readouterr().out
        assert "Tuning plan" in output
        assert "applied" in output
        assert "dry run" not in output

    def test_apply_reports_reboot_for_boot_knobs(self, capsys):
        # HP wants idle=poll, a grub (boot-time) change on the fake
        # Skylake host, so apply must flag the reboot.
        assert cli_main(["tune", "--config", "HP", "--apply"]) == 0
        assert "reboot required" in capsys.readouterr().out

    def test_dry_run_performs_nothing(self, capsys):
        assert cli_main(["tune", "--config", "HP"]) == 0
        output = capsys.readouterr().out
        assert "dry run" in output
        assert "applied" not in output


class TestStudySeed:
    def test_study_accepts_seed(self, capsys):
        base = ["study", "--workload", "memcached", "--knob", "smt",
                "--qps", "20000", "--runs", "2", "--requests", "60"]
        assert cli_main(base + ["--seed", "11"]) == 0
        seeded = capsys.readouterr().out
        assert cli_main(base) == 0
        unseeded = capsys.readouterr().out
        assert seeded.splitlines()[0] == unseeded.splitlines()[0]
        assert seeded != unseeded
