"""Tests for the Table III taxonomy and Section VI recommendations."""


from repro.config.presets import HP_CLIENT, LP_CLIENT
from repro.core.recommendations import recommend
from repro.core.scenarios import risky_scenarios, scenario_table
from repro.loadgen.base import GeneratorDesign


class TestScenarios:
    def test_table3_has_four_rows(self):
        assert len(scenario_table()) == 4

    def test_only_untuned_small_latency_is_risky(self):
        risky = risky_scenarios()
        assert len(risky) == 1
        scenario = risky[0]
        assert scenario.client_conf == "not-tuned"
        assert scenario.response_time == "small"
        assert scenario.generator_design == "open-loop time-sensitive"

    def test_all_points_of_measurement_in_app(self):
        assert all(s.point_of_measurement == "in-app"
                   for s in scenario_table())

    def test_sections_recorded(self):
        sections = {s.sections for s in scenario_table()}
        assert ("5.1", "5.3") in sections
        assert ("5.2",) in sections

    def test_client_conf_wording(self):
        confs = [s.client_conf for s in scenario_table()]
        assert confs == ["tuned", "not-tuned", "tuned", "not-tuned"]


class TestRecommendations:
    def test_time_sensitive_recommends_hp(self):
        design = GeneratorDesign(loop="open", time_sensitive=True)
        advice = recommend(design)
        assert advice.client_config is HP_CLIENT
        assert not advice.explore_space
        assert any("time-sensitive" in r for r in advice.rationale)

    def test_time_sensitive_with_power_managed_target_warns(self):
        design = GeneratorDesign(loop="open", time_sensitive=True)
        advice = recommend(design, target_config=LP_CLIENT,
                           target_known=True)
        assert advice.client_config is HP_CLIENT
        assert any("under-estimate" in r or "representative" in r
                   or "over/under-provisioning" in r
                   for r in advice.rationale)

    def test_time_insensitive_with_known_target_mirrors_it(self):
        design = GeneratorDesign(loop="open", time_sensitive=False)
        advice = recommend(design, target_config=LP_CLIENT,
                           target_known=True)
        assert advice.client_config is LP_CLIENT
        assert not advice.explore_space

    def test_time_insensitive_unknown_target_explores(self):
        design = GeneratorDesign(loop="open", time_sensitive=False)
        advice = recommend(design)
        assert advice.client_config is None
        assert advice.explore_space
        assert any("space exploration" in r for r in advice.rationale)

    def test_every_recommendation_mentions_repetition_methods(self):
        for design in (
                GeneratorDesign(loop="open", time_sensitive=True),
                GeneratorDesign(loop="open", time_sensitive=False),
                GeneratorDesign(loop="closed", time_sensitive=True)):
            advice = recommend(design)
            assert any("CONFIRM" in r for r in advice.rationale)

    def test_render_is_readable(self):
        design = GeneratorDesign(loop="open", time_sensitive=True)
        text = recommend(design).render()
        assert "Recommendation" in text
        assert "1." in text
