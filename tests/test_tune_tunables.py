"""Tests for the autotuner's tunable schema and search space."""

import json
import random

import pytest

from repro.api import experiment
from repro.errors import SpecValidationError
from repro.tune import (
    BoolTunable,
    CategoricalTunable,
    FloatRangeTunable,
    IntRangeTunable,
    SearchSpace,
    as_tunable,
    validate_field,
)
from repro.tune.tunables import format_value


def bool_smt():
    return BoolTunable(name="smt", field="hardware.server.smt")


def cat_gov():
    return CategoricalTunable(
        name="gov", field="hardware.server.frequency_governor",
        values=("powersave", "performance"))


class TestFieldValidation:
    def test_static_fields_pass(self):
        assert validate_field("hardware.server.smt") == \
            "hardware.server.smt"
        assert validate_field("cluster.lb_policy") == "cluster.lb_policy"
        assert validate_field("policy.engine") == "policy.engine"
        assert validate_field("graph") == "graph"

    def test_workload_params_pass(self):
        assert validate_field("workload.value_size") == \
            "workload.value_size"

    def test_typo_gets_did_you_mean(self):
        with pytest.raises(SpecValidationError,
                           match="did you mean 'hardware.server.smt'"):
            validate_field("hardware.server.smtX")

    def test_reserved_fields_rejected_with_reason(self):
        with pytest.raises(SpecValidationError,
                           match="sweeps load.qps itself"):
            validate_field("load.qps")
        with pytest.raises(SpecValidationError, match="not tunable"):
            validate_field("policy.base_seed")

    def test_empty_field_rejected(self):
        with pytest.raises(SpecValidationError):
            validate_field("")
        with pytest.raises(SpecValidationError):
            validate_field("workload.")


class TestTunableKinds:
    def test_bool_grid(self):
        assert bool_smt().grid_values() == (False, True)
        assert bool_smt().contains(True)
        assert not bool_smt().contains(1)

    def test_categorical_rejects_empty_and_duplicates(self):
        with pytest.raises(SpecValidationError, match="at least one"):
            CategoricalTunable(name="g", field="policy.engine",
                               values=())
        with pytest.raises(SpecValidationError, match="repeats"):
            CategoricalTunable(name="g", field="policy.engine",
                               values=("reference", "reference"))

    def test_categorical_freezes_list_values(self):
        cstates = CategoricalTunable(
            name="cs", field="hardware.server.cstates",
            values=(["C1"], ["C1", "C1E"]))
        assert cstates.values == (("C1",), ("C1", "C1E"))
        assert cstates.contains(["C1", "C1E"])
        assert not cstates.contains(["C6"])

    def test_int_range_inclusive_stride(self):
        nodes = IntRangeTunable(name="n", field="cluster.nodes",
                                low=1, high=7, step=2)
        assert nodes.grid_values() == (1, 3, 5, 7)
        assert nodes.contains(5)
        assert not nodes.contains(4)
        assert not nodes.contains(True)

    def test_int_range_rejects_inverted_and_bad_step(self):
        with pytest.raises(SpecValidationError, match="empty range"):
            IntRangeTunable(name="n", field="cluster.nodes",
                            low=5, high=1)
        with pytest.raises(SpecValidationError, match="step"):
            IntRangeTunable(name="n", field="cluster.nodes",
                            low=1, high=5, step=0)

    def test_float_range_lattice(self):
        size = FloatRangeTunable(name="v", field="workload.value_size",
                                 low=0.0, high=1.0, points=5)
        assert size.grid_values() == (0.0, 0.25, 0.5, 0.75, 1.0)
        assert size.contains(0.3)
        assert not size.contains(1.5)

    def test_float_range_rejects_degenerate(self):
        with pytest.raises(SpecValidationError, match="empty range"):
            FloatRangeTunable(name="v", field="workload.value_size",
                              low=1.0, high=1.0)
        with pytest.raises(SpecValidationError, match="points"):
            FloatRangeTunable(name="v", field="workload.value_size",
                              low=0.0, high=1.0, points=1)

    def test_sample_stays_in_domain(self):
        rng = random.Random(3)
        for tunable in (bool_smt(), cat_gov(),
                        IntRangeTunable(name="n", field="cluster.nodes",
                                        low=1, high=8),
                        FloatRangeTunable(name="v",
                                          field="workload.value_size",
                                          low=2.0, high=9.0)):
            for _ in range(20):
                assert tunable.contains(tunable.sample(rng))


class TestTunableSerialization:
    ALL = [
        lambda: bool_smt(),
        lambda: cat_gov(),
        lambda: IntRangeTunable(name="n", field="cluster.nodes",
                                low=1, high=8, step=1),
        lambda: FloatRangeTunable(name="v", field="workload.value_size",
                                  low=2.0, high=9.0, points=3),
    ]

    @pytest.mark.parametrize("make", ALL)
    def test_exact_json_round_trip(self, make):
        tunable = make()
        data = json.loads(json.dumps(tunable.to_dict()))
        assert as_tunable(data) == tunable
        assert as_tunable(data).to_dict() == tunable.to_dict()

    @pytest.mark.parametrize("make", ALL)
    def test_content_hash_stable(self, make):
        assert make().content_hash() == make().content_hash()

    def test_hash_changes_with_domain(self):
        wide = IntRangeTunable(name="n", field="cluster.nodes",
                               low=1, high=8)
        narrow = IntRangeTunable(name="n", field="cluster.nodes",
                                 low=1, high=4)
        assert wide.content_hash() != narrow.content_hash()

    def test_unknown_kind_gets_did_you_mean(self):
        with pytest.raises(SpecValidationError,
                           match="did you mean 'categorical'"):
            as_tunable({"kind": "categoricl", "name": "g",
                        "field": "policy.engine", "values": ["a"]})

    def test_unknown_key_gets_did_you_mean(self):
        with pytest.raises(SpecValidationError,
                           match="did you mean 'values'"):
            as_tunable({"kind": "categorical", "name": "g",
                        "field": "policy.engine", "vales": ["a"]})

    def test_missing_name_rejected(self):
        with pytest.raises(SpecValidationError, match="missing 'name'"):
            as_tunable({"kind": "bool", "field": "hardware.server.smt"})


class TestFormatValue:
    def test_canonical_texts(self):
        assert format_value(True) == "on"
        assert format_value(False) == "off"
        assert format_value(0.25) == "0.25"
        assert format_value(("C1", "C1E")) == "C1+C1E"
        assert format_value("performance") == "performance"


class TestSearchSpace:
    def space(self):
        return SearchSpace(tunables=(bool_smt(), cat_gov()))

    def test_grid_is_product_in_declaration_order(self):
        grid = self.space().grid()
        assert len(grid) == 4
        # Last tunable fastest, declaration order preserved.
        assert grid[0] == {"smt": False, "gov": "powersave"}
        assert grid[1] == {"smt": False, "gov": "performance"}
        assert grid[2] == {"smt": True, "gov": "powersave"}
        assert grid[3] == {"smt": True, "gov": "performance"}

    def test_size_matches_grid(self):
        assert self.space().size() == len(self.space().grid())

    def test_empty_space_rejected(self):
        with pytest.raises(SpecValidationError, match="at least one"):
            SearchSpace(tunables=())

    def test_duplicate_names_and_fields_rejected(self):
        with pytest.raises(SpecValidationError, match="duplicate"):
            SearchSpace(tunables=(bool_smt(), bool_smt()))
        with pytest.raises(SpecValidationError, match="duplicate"):
            SearchSpace(tunables=(
                bool_smt(),
                BoolTunable(name="other", field="hardware.server.smt")))

    def test_assignment_validation(self):
        space = self.space()
        with pytest.raises(SpecValidationError, match="missing"):
            space.validate_assignment({"smt": True})
        with pytest.raises(SpecValidationError, match="unknown"):
            space.validate_assignment(
                {"smt": True, "gov": "powersave", "x": 1})
        with pytest.raises(SpecValidationError, match="outside"):
            space.validate_assignment(
                {"smt": True, "gov": "schedutil"})

    def test_apply_builds_validated_candidate(self):
        plan = experiment("memcached").client("LP").build()
        candidate = self.space().apply(
            plan, {"smt": True, "gov": "performance"})
        assert candidate.hardware.server.smt is True
        assert candidate.hardware.server.frequency_governor.value == \
            "performance"
        # Untouched sections survive.
        assert candidate.workload == plan.workload
        assert candidate.load == plan.load

    def test_apply_does_not_mutate_base_plan(self):
        plan = experiment("memcached").client("LP").build()
        before = plan.content_hash()
        self.space().apply(plan, {"smt": True, "gov": "performance"})
        assert plan.content_hash() == before

    def test_workload_param_routes_through_registry(self):
        space = SearchSpace(tunables=(
            IntRangeTunable(name="delay",
                            field="workload.added_delay_us",
                            low=0, high=100, step=50),))
        plan = experiment("synthetic").client("LP").build()
        candidate = space.apply(plan, {"delay": 100})
        assert dict(candidate.workload.params)["added_delay_us"] == 100

    def test_bad_workload_param_fails_at_plan_layer(self):
        space = SearchSpace(tunables=(
            IntRangeTunable(name="vs", field="workload.not_a_param",
                            low=1, high=2),))
        plan = experiment("synthetic").client("LP").build()
        with pytest.raises(SpecValidationError):
            space.validate_against(plan)

    def test_graph_preset_candidates(self):
        space = SearchSpace(tunables=(
            CategoricalTunable(
                name="topo", field="graph",
                values=("hdsearch-graph", "memcached-cached")),))
        plan = experiment("memcached").client("LP").build()
        candidate = space.apply(plan, {"topo": "memcached-cached"})
        assert candidate.graph is not None
        space.validate_against(plan)

    def test_cluster_field_materializes_section(self):
        space = SearchSpace(tunables=(
            IntRangeTunable(name="n", field="cluster.nodes",
                            low=1, high=4),))
        plan = experiment("memcached").client("LP").build()
        candidate = space.apply(plan, {"n": 4})
        assert candidate.cluster is not None
        assert candidate.cluster.nodes == 4

    def test_space_json_round_trip_and_hash(self):
        space = self.space()
        again = SearchSpace.from_json(space.to_json())
        assert again == space
        assert again.content_hash() == space.content_hash()

    def test_space_rejects_unknown_keys(self):
        with pytest.raises(SpecValidationError, match="unknown key"):
            SearchSpace.from_dict({"tunables": [], "extra": 1})

    def test_assignment_key_is_name_ordered(self):
        space = self.space()
        forward = space.assignment_key(
            {"smt": True, "gov": "powersave"})
        reversed_insert = space.assignment_key(
            dict([("gov", "powersave"), ("smt", True)]))
        assert forward == reversed_insert
