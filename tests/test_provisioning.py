"""Tests for the QoS capacity / provisioning analysis."""

import pytest

from repro.core.provisioning import (
    CapacityResult,
    capacity_under_qos,
    provisioning_error,
    provisioning_plan,
)
from repro.errors import ExperimentError


def sweep(**latency_by_qps):
    return {float(k.lstrip("q")): v
            for k, v in latency_by_qps.items()}


class TestCapacity:
    def test_paper_example_lp_vs_hp(self):
        """The paper's example: QoS p99 <= 400us; LP finds 300K, HP
        finds 500K."""
        lp = capacity_under_qos(
            {100e3: 250.0, 200e3: 300.0, 300e3: 380.0,
             400e3: 450.0, 500e3: 520.0}, 400.0)
        hp = capacity_under_qos(
            {100e3: 120.0, 200e3: 150.0, 300e3: 200.0,
             400e3: 300.0, 500e3: 390.0}, 400.0)
        assert lp.capacity_qps == 300e3
        assert lp.violated_at_qps == 400e3
        assert hp.capacity_qps == 500e3
        assert hp.sweep_limited

    def test_all_loads_violate(self):
        result = capacity_under_qos({100.0: 900.0, 200.0: 950.0}, 400.0)
        assert result.capacity_qps == 0.0
        assert result.violated_at_qps == 100.0

    def test_unsorted_input_handled(self):
        result = capacity_under_qos(
            {300.0: 500.0, 100.0: 100.0, 200.0: 200.0}, 400.0)
        assert result.capacity_qps == 200.0

    def test_empty_sweep_rejected(self):
        with pytest.raises(ExperimentError):
            capacity_under_qos({}, 400.0)

    def test_invalid_target_rejected(self):
        with pytest.raises(ExperimentError):
            capacity_under_qos({100.0: 50.0}, 0.0)


class TestProvisioning:
    def lp_hp(self):
        lp = capacity_under_qos({300e3: 100.0, 400e3: 500.0}, 400.0)
        hp = capacity_under_qos({300e3: 80.0, 500e3: 300.0}, 400.0)
        return lp, hp

    def test_machine_counts_round_up(self):
        lp, hp = self.lp_hp()
        assert provisioning_plan(1_000_000, lp).machines == 4  # /300K
        assert provisioning_plan(1_000_000, hp).machines == 2  # /500K

    def test_paper_1_6x_overprovision(self):
        """300K vs 500K capacity at large scale: ~1.67x machines."""
        lp, hp = self.lp_hp()
        ratios = provisioning_error(
            {"LP": lp, "HP": hp}, target_qps=30_000_000)
        assert ratios["HP"] == pytest.approx(1.0)
        assert ratios["LP"] == pytest.approx(100 / 60, rel=0.01)

    def test_zero_capacity_rejected(self):
        bad = capacity_under_qos({100.0: 900.0}, 400.0)
        with pytest.raises(ExperimentError):
            provisioning_plan(1000, bad)

    def test_invalid_target_rejected(self):
        lp, _ = self.lp_hp()
        with pytest.raises(ExperimentError):
            provisioning_plan(0, lp)


class TestCapacityInterpolation:
    SWEEP = {10_000.0: 100.0, 20_000.0: 200.0, 30_000.0: 400.0}

    def test_opt_in_only(self):
        result = capacity_under_qos(self.SWEEP, qos_target_us=300.0)
        assert result.interpolated_capacity_qps is None
        assert result.best_capacity_qps == result.capacity_qps

    def test_linear_crossing_between_grid_points(self):
        result = capacity_under_qos(
            self.SWEEP, qos_target_us=300.0, interpolate=True)
        assert result.capacity_qps == 20_000.0
        assert result.violated_at_qps == 30_000.0
        # 300us sits halfway between 200us and 400us.
        assert result.interpolated_capacity_qps == pytest.approx(25_000.0)
        assert result.best_capacity_qps == result.interpolated_capacity_qps

    def test_grid_answer_unchanged_by_interpolation(self):
        plain = capacity_under_qos(self.SWEEP, qos_target_us=300.0)
        interp = capacity_under_qos(
            self.SWEEP, qos_target_us=300.0, interpolate=True)
        assert interp.capacity_qps == plain.capacity_qps
        assert interp.violated_at_qps == plain.violated_at_qps

    def test_no_interpolation_without_bracketing_points(self):
        # Sweep-limited: no violation to interpolate toward.
        passing = capacity_under_qos(
            {10_000.0: 100.0}, qos_target_us=300.0, interpolate=True)
        assert passing.interpolated_capacity_qps is None
        # First load already violates: no passing point to start from.
        failing = capacity_under_qos(
            {10_000.0: 500.0}, qos_target_us=300.0, interpolate=True)
        assert failing.capacity_qps == 0.0
        assert failing.interpolated_capacity_qps is None

    def test_interpolated_capacity_feeds_provisioning(self):
        result = capacity_under_qos(
            self.SWEEP, qos_target_us=300.0, interpolate=True)
        refined = CapacityResult(
            qos_target_us=result.qos_target_us, metric=result.metric,
            capacity_qps=result.best_capacity_qps,
            violated_at_qps=result.violated_at_qps)
        plan = provisioning_plan(100_000.0, refined)
        assert plan.machines == 4  # vs 5 from the coarse 20k grid point
