"""Tests for the QoS capacity / provisioning analysis."""

import pytest

from repro.core.provisioning import (
    CapacityResult,
    capacity_under_qos,
    provisioning_error,
    provisioning_plan,
)
from repro.errors import ExperimentError


def sweep(**latency_by_qps):
    return {float(k.lstrip("q")): v
            for k, v in latency_by_qps.items()}


class TestCapacity:
    def test_paper_example_lp_vs_hp(self):
        """The paper's example: QoS p99 <= 400us; LP finds 300K, HP
        finds 500K."""
        lp = capacity_under_qos(
            {100e3: 250.0, 200e3: 300.0, 300e3: 380.0,
             400e3: 450.0, 500e3: 520.0}, 400.0)
        hp = capacity_under_qos(
            {100e3: 120.0, 200e3: 150.0, 300e3: 200.0,
             400e3: 300.0, 500e3: 390.0}, 400.0)
        assert lp.capacity_qps == 300e3
        assert lp.violated_at_qps == 400e3
        assert hp.capacity_qps == 500e3
        assert hp.sweep_limited

    def test_all_loads_violate(self):
        result = capacity_under_qos({100.0: 900.0, 200.0: 950.0}, 400.0)
        assert result.capacity_qps == 0.0
        assert result.violated_at_qps == 100.0

    def test_unsorted_input_handled(self):
        result = capacity_under_qos(
            {300.0: 500.0, 100.0: 100.0, 200.0: 200.0}, 400.0)
        assert result.capacity_qps == 200.0

    def test_empty_sweep_rejected(self):
        with pytest.raises(ExperimentError):
            capacity_under_qos({}, 400.0)

    def test_invalid_target_rejected(self):
        with pytest.raises(ExperimentError):
            capacity_under_qos({100.0: 50.0}, 0.0)


class TestProvisioning:
    def lp_hp(self):
        lp = capacity_under_qos({300e3: 100.0, 400e3: 500.0}, 400.0)
        hp = capacity_under_qos({300e3: 80.0, 500e3: 300.0}, 400.0)
        return lp, hp

    def test_machine_counts_round_up(self):
        lp, hp = self.lp_hp()
        assert provisioning_plan(1_000_000, lp).machines == 4  # /300K
        assert provisioning_plan(1_000_000, hp).machines == 2  # /500K

    def test_paper_1_6x_overprovision(self):
        """300K vs 500K capacity at large scale: ~1.67x machines."""
        lp, hp = self.lp_hp()
        ratios = provisioning_error(
            {"LP": lp, "HP": hp}, target_qps=30_000_000)
        assert ratios["HP"] == pytest.approx(1.0)
        assert ratios["LP"] == pytest.approx(100 / 60, rel=0.01)

    def test_zero_capacity_rejected(self):
        bad = capacity_under_qos({100.0: 900.0}, 400.0)
        with pytest.raises(ExperimentError):
            provisioning_plan(1000, bad)

    def test_invalid_target_rejected(self):
        lp, _ = self.lp_hp()
        with pytest.raises(ExperimentError):
            provisioning_plan(0, lp)


class TestCapacityInterpolation:
    SWEEP = {10_000.0: 100.0, 20_000.0: 200.0, 30_000.0: 400.0}

    def test_opt_in_only(self):
        result = capacity_under_qos(self.SWEEP, qos_target_us=300.0)
        assert result.interpolated_capacity_qps is None
        assert result.best_capacity_qps == result.capacity_qps

    def test_linear_crossing_between_grid_points(self):
        result = capacity_under_qos(
            self.SWEEP, qos_target_us=300.0, interpolate=True)
        assert result.capacity_qps == 20_000.0
        assert result.violated_at_qps == 30_000.0
        # 300us sits halfway between 200us and 400us.
        assert result.interpolated_capacity_qps == pytest.approx(25_000.0)
        assert result.best_capacity_qps == result.interpolated_capacity_qps

    def test_grid_answer_unchanged_by_interpolation(self):
        plain = capacity_under_qos(self.SWEEP, qos_target_us=300.0)
        interp = capacity_under_qos(
            self.SWEEP, qos_target_us=300.0, interpolate=True)
        assert interp.capacity_qps == plain.capacity_qps
        assert interp.violated_at_qps == plain.violated_at_qps

    def test_no_interpolation_without_bracketing_points(self):
        # Sweep-limited: no violation to interpolate toward.
        passing = capacity_under_qos(
            {10_000.0: 100.0}, qos_target_us=300.0, interpolate=True)
        assert passing.interpolated_capacity_qps is None
        # First load already violates: no passing point to start from.
        failing = capacity_under_qos(
            {10_000.0: 500.0}, qos_target_us=300.0, interpolate=True)
        assert failing.capacity_qps == 0.0
        assert failing.interpolated_capacity_qps is None

    def test_interpolated_capacity_feeds_provisioning(self):
        result = capacity_under_qos(
            self.SWEEP, qos_target_us=300.0, interpolate=True)
        refined = CapacityResult(
            qos_target_us=result.qos_target_us, metric=result.metric,
            capacity_qps=result.best_capacity_qps,
            violated_at_qps=result.violated_at_qps)
        plan = provisioning_plan(100_000.0, refined)
        assert plan.machines == 4  # vs 5 from the coarse 20k grid point


class TestProvisioningUsesInterpolatedCapacity:
    """provisioning_plan routes through best_capacity_qps (bugfix)."""

    SWEEP = {10_000.0: 100.0, 20_000.0: 200.0, 30_000.0: 400.0}

    def interpolated(self):
        return capacity_under_qos(
            self.SWEEP, qos_target_us=300.0, interpolate=True)

    def test_interpolated_crossing_sizes_the_fleet_by_default(self):
        plan = provisioning_plan(100_000.0, self.interpolated())
        # 25k interpolated capacity -> 4 machines, not 5 from the
        # coarse 20k grid point.
        assert plan.machines == 4
        assert plan.per_machine_qps == pytest.approx(25_000.0)

    def test_per_machine_qps_reflects_value_actually_used(self):
        result = self.interpolated()
        default = provisioning_plan(100_000.0, result)
        assert default.per_machine_qps == result.best_capacity_qps
        pinned = provisioning_plan(100_000.0, result,
                                   use_interpolated=False)
        assert pinned.per_machine_qps == result.capacity_qps

    def test_escape_hatch_restores_grid_sizing(self):
        plan = provisioning_plan(100_000.0, self.interpolated(),
                                 use_interpolated=False)
        assert plan.machines == 5
        assert plan.per_machine_qps == 20_000.0

    def test_no_crossing_means_no_behavior_change(self):
        sweep_limited = capacity_under_qos(
            {10_000.0: 100.0, 20_000.0: 200.0}, qos_target_us=300.0,
            interpolate=True)
        assert sweep_limited.interpolated_capacity_qps is None
        default = provisioning_plan(50_000.0, sweep_limited)
        pinned = provisioning_plan(50_000.0, sweep_limited,
                                   use_interpolated=False)
        assert default == pinned

    def test_zero_selected_capacity_rejected_either_way(self):
        all_violate = capacity_under_qos(
            {10_000.0: 900.0}, qos_target_us=300.0, interpolate=True)
        with pytest.raises(ExperimentError):
            provisioning_plan(50_000.0, all_violate)
        with pytest.raises(ExperimentError):
            provisioning_plan(50_000.0, all_violate,
                              use_interpolated=False)

    def test_provisioning_error_threads_the_flag(self):
        lp = capacity_under_qos(
            {200e3: 300.0, 300e3: 500.0}, 400.0, interpolate=True)
        hp = capacity_under_qos(
            {400e3: 300.0, 500e3: 500.0}, 400.0, interpolate=True)
        # Interpolated: LP 250k, HP 450k -> 4 vs 3 machines at 1M.
        interp = provisioning_error({"LP": lp, "HP": hp}, 1_000_000.0)
        assert interp == {"HP": 1.0, "LP": pytest.approx(4 / 3)}
        # Grid-pinned: LP 200k, HP 400k -> 5 vs 3 machines.
        grid = provisioning_error({"LP": lp, "HP": hp}, 1_000_000.0,
                                  use_interpolated=False)
        assert grid == {"HP": 1.0, "LP": pytest.approx(5 / 3)}
