"""End-to-end tests for the observability CLI surface:
``repro trace``, the ``repro plan`` sink/tracer preview, and the
campaign timing readout."""

import json
import sqlite3

import pytest

from repro.cli import main as cli_main
from repro.obs import validate_chrome_trace

SPEC = {
    "name": "cli-obs",
    "workload": "memcached",
    "clients": ["LP"],
    "conditions": {"SMToff": {"knob": "smt", "enabled": False}},
    "qps": [50_000],
    "runs": 2,
    "num_requests": 60,
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(SPEC))
    return str(path)


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "results.sqlite")


class TestTraceCommand:
    def test_writes_valid_chrome_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert cli_main(["trace", "--workload", "memcached",
                         "--qps", "50000", "--requests", "300",
                         "--seed", "5", "--output",
                         str(out_path)]) == 0
        output = capsys.readouterr().out
        assert "trace events" in output
        assert "stage" in output and "request" in output
        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) > 0
        names = {event["name"] for event in payload["traceEvents"]}
        assert {"request", "service", "net.out"} <= names

    def test_streaming_sink_flag(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert cli_main(["trace", "--workload", "memcached",
                         "--qps", "50000", "--requests", "300",
                         "--sink", "streaming", "--output",
                         str(out_path)]) == 0
        assert out_path.exists()

    def test_unknown_sink_fails_with_suggestion(self, tmp_path,
                                                capsys):
        assert cli_main(["trace", "--workload", "memcached",
                         "--requests", "100", "--sink", "streamin",
                         "--output",
                         str(tmp_path / "t.json")]) == 1
        assert "did you mean 'streaming'" in capsys.readouterr().err


class TestPlanObservabilityPreview:
    def test_default_policy_line(self, capsys):
        assert cli_main(["plan", "--workload", "memcached",
                         "--qps", "10000", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "observability: sink=columnar" in out
        assert "tracing=off" in out
        assert "hot path runs unobserved" in out

    def test_sink_and_trace_flags(self, capsys):
        assert cli_main(["plan", "--workload", "memcached",
                         "--qps", "10000", "--runs", "1",
                         "--sink", "streaming", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "observability: sink=streaming" in out
        assert "tracing=on" in out
        assert "unobserved" not in out

    def test_unknown_sink_fails_before_expansion(self, capsys):
        assert cli_main(["plan", "--workload", "memcached",
                         "--sink", "streamin"]) == 1
        captured = capsys.readouterr()
        assert "did you mean 'streaming'" in captured.err
        assert "experiments" not in captured.out


class TestCampaignTimings:
    def test_progress_reports_wall_time_and_cache(self, spec_file,
                                                  store_path, capsys):
        assert cli_main(["campaign", "run", "--spec", spec_file,
                         "--store", store_path, "--serial"]) == 0
        first = capsys.readouterr().out
        assert "done" in first and "s)" in first
        assert cli_main(["campaign", "run", "--spec", spec_file,
                         "--store", store_path, "--serial"]) == 0
        assert "(cached)" in capsys.readouterr().out

    def test_status_prints_timing_table(self, spec_file, store_path,
                                        capsys):
        cli_main(["campaign", "run", "--spec", spec_file,
                  "--store", store_path, "--serial"])
        capsys.readouterr()
        assert cli_main(["campaign", "status", "--spec", spec_file,
                         "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "timings (stored conditions, slowest first):" in out
        assert "LP-SMToff" in out
        assert "total" in out

    def test_status_without_timings_omits_table(self, spec_file,
                                                store_path, capsys):
        cli_main(["campaign", "run", "--spec", spec_file,
                  "--store", store_path, "--serial"])
        # Zero out the recorded timings, as rows written by
        # pre-timing code read back.
        conn = sqlite3.connect(store_path)
        conn.execute("UPDATE results SET elapsed_s = 0.0")
        conn.commit()
        conn.close()
        capsys.readouterr()
        assert cli_main(["campaign", "status", "--spec", spec_file,
                         "--store", store_path]) == 0
        assert "timings" not in capsys.readouterr().out


class TestStoreMigration:
    def test_pre_timing_database_gains_elapsed_column(self, tmp_path):
        path = str(tmp_path / "old.sqlite")
        conn = sqlite3.connect(path)
        conn.executescript("""
            CREATE TABLE results (
                condition_hash  TEXT PRIMARY KEY,
                campaign        TEXT NOT NULL,
                workload        TEXT NOT NULL,
                label           TEXT NOT NULL,
                qps             REAL NOT NULL,
                runs            INTEGER NOT NULL,
                spec_json       TEXT NOT NULL,
                payload_json    TEXT NOT NULL,
                created_at      REAL NOT NULL
            );
        """)
        conn.execute(
            "INSERT INTO results VALUES "
            "('h1', 'c', 'memcached', 'LP', 1.0, 1, '{}', '{}', 0.0)")
        conn.commit()
        conn.close()

        from repro.campaign.store import ResultStore

        with ResultStore(path) as store:
            assert store.count() == 1
            row = store._conn.execute(
                "SELECT elapsed_s FROM results").fetchone()
            assert row[0] == 0.0
