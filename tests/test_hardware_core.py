"""Tests for SimCore: the serialized event-handling core."""

import pytest

from repro.config.presets import HP_CLIENT, LP_CLIENT
from repro.hardware.core import SimCore
from repro.parameters import DEFAULT_PARAMETERS


def make_core(config, params=DEFAULT_PARAMETERS, **kwargs):
    return SimCore(params, config, **kwargs)


class TestHpCore:
    """The tuned core: poll idle, performance governor."""

    def test_event_pays_only_work_and_poll_wake(self, params):
        core = make_core(HP_CLIENT)
        occ = core.handle_event(100.0, 2.2, wakes_thread=True)
        expected_work = 2.2 * params.nominal_freq_ghz / params.turbo_freq_ghz
        assert occ.work_us == pytest.approx(expected_work)
        assert occ.finish_us == pytest.approx(
            100.0 + params.poll_wake_us + expected_work)
        assert occ.cstate == "C0"
        assert occ.wake_latency_us == 0.0

    def test_no_thread_wake_cost_when_not_waking(self, params):
        core = make_core(HP_CLIENT)
        occ = core.handle_event(100.0, 2.2, wakes_thread=False)
        assert occ.overhead_us == pytest.approx(0.0)


class TestLpCore:
    """The default core: deep C-states, powersave governor."""

    def test_wake_path_includes_cstate_and_ramp(self, params):
        core = make_core(LP_CLIENT)
        occ = core.handle_event(10_000.0, 1.0, wakes_thread=True)
        assert occ.cstate == "C6"
        # C6 exit + DVFS ramp + context switch land on the path.
        expected_overhead = (133.0 + params.wake_dvfs_ramp_us
                             + params.context_switch_us
                             + params.uncore_dynamic_penalty_us)
        assert occ.overhead_us == pytest.approx(expected_overhead)

    def test_work_runs_slow_at_min_frequency(self, params):
        core = make_core(LP_CLIENT)
        occ = core.handle_event(10.0, 1.0)
        assert occ.work_us == pytest.approx(
            1.0 * params.nominal_freq_ghz / params.min_freq_ghz)

    def test_shallow_wake_has_no_dvfs_ramp(self, params):
        core = make_core(LP_CLIENT)
        core.handle_event(10.0, 1.0)
        first_finish = core.available_at
        occ = core.handle_event(first_finish + 3.0, 1.0)
        assert occ.cstate == "C1"
        expected = (2.0 + params.context_switch_us)
        assert occ.overhead_us == pytest.approx(expected)

    def test_latency_limit_blocks_c6(self, params):
        core = make_core(LP_CLIENT, cstate_latency_limit_us=20.0)
        occ = core.handle_event(10_000.0, 1.0)
        assert occ.cstate == "C1E"


class TestQueueing:
    def test_busy_core_queues_events(self, params):
        core = make_core(HP_CLIENT)
        first = core.handle_event(0.0, 10.0, wakes_thread=False)
        second = core.handle_event(1.0, 10.0, wakes_thread=False)
        assert second.queue_wait_us == pytest.approx(
            first.finish_us - 1.0)
        assert second.start_us == pytest.approx(first.finish_us)

    def test_queued_event_pays_no_wake(self, params):
        core = make_core(LP_CLIENT)
        core.handle_event(1_000.0, 50.0)
        occ = core.handle_event(1_001.0, 1.0)
        assert occ.wake_latency_us == 0.0
        assert occ.cstate == "C0"

    def test_out_of_order_arrivals_rejected(self, params):
        core = make_core(HP_CLIENT)
        core.handle_event(10.0, 1.0)
        with pytest.raises(ValueError):
            core.handle_event(5.0, 1.0)

    def test_counters_accumulate(self, params):
        core = make_core(HP_CLIENT)
        core.handle_event(0.0, 1.0)
        core.handle_event(100.0, 1.0)
        assert core.events_handled == 2
        assert core.total_busy_us > 0


class TestPollingMode:
    def test_polling_pays_no_wake_costs(self, params):
        core = make_core(LP_CLIENT, polling=True)
        occ = core.handle_event(100_000.0, 1.0, wakes_thread=False)
        assert occ.cstate == "C0"
        assert occ.overhead_us == pytest.approx(0.0)

    def test_polling_ramps_frequency_via_spin(self, params):
        core = make_core(LP_CLIENT, polling=True)
        core.handle_event(0.0, 1.0, wakes_thread=False)
        # Far beyond the governor interval: spinning counted as busy.
        occ = core.handle_event(50_000.0, 1.0, wakes_thread=False)
        assert occ.freq_ghz == pytest.approx(params.nominal_freq_ghz)


class TestOverheadScale:
    def test_scale_multiplies_overheads(self, params):
        plain = make_core(LP_CLIENT)
        scaled = make_core(LP_CLIENT, overhead_scale=2.0)
        occ_plain = plain.handle_event(10_000.0, 1.0)
        occ_scaled = scaled.handle_event(10_000.0, 1.0)
        assert occ_scaled.overhead_us == pytest.approx(
            2.0 * occ_plain.overhead_us)
        assert occ_scaled.work_us == pytest.approx(occ_plain.work_us)

    def test_invalid_scale_rejected(self, params):
        with pytest.raises(ValueError):
            make_core(LP_CLIENT, overhead_scale=0.0)


class TestTimedSleep:
    def test_deterministic_without_rng(self, params):
        core = make_core(LP_CLIENT)
        wake = core.timed_sleep_until(100.0, 0.0)
        assert wake == pytest.approx(100.0 + params.sleep_slack_us / 2)

    def test_past_target_clamped_to_now(self, params):
        core = make_core(LP_CLIENT)
        wake = core.timed_sleep_until(5.0, 10.0)
        assert wake >= 10.0

    def test_tuned_sleep_has_small_slack(self, params):
        core = make_core(HP_CLIENT)
        wake = core.timed_sleep_until(100.0, 0.0)
        assert wake - 100.0 <= 1.0

    def test_utilization_bounded(self, params):
        core = make_core(HP_CLIENT)
        core.handle_event(0.0, 10.0)
        assert 0.0 < core.utilization(100.0) <= 1.0
        assert core.utilization(0.0) == 0.0
