"""Tests for C-state governor behaviour."""

import pytest

from repro.config.presets import HP_CLIENT, LP_CLIENT, SERVER_BASELINE
from repro.config.presets import server_with_c1e
from repro.hardware.cstates import CStateGovernor
from repro.parameters import cstates_by_name


class TestSelection:
    def test_poll_config_never_sleeps(self, params):
        governor = CStateGovernor(params, HP_CLIENT)
        decision = governor.select(10_000.0)
        assert decision.state.name == "C0"
        assert decision.wake_latency_us == 0.0

    def test_short_gap_selects_shallow_state(self, params):
        governor = CStateGovernor(params, LP_CLIENT)
        decision = governor.select(3.0)
        assert decision.state.name == "C1"

    def test_medium_gap_selects_c1e(self, params):
        governor = CStateGovernor(params, LP_CLIENT)
        decision = governor.select(100.0)
        assert decision.state.name == "C1E"

    def test_long_gap_selects_c6(self, params):
        governor = CStateGovernor(params, LP_CLIENT)
        decision = governor.select(5_000.0)
        assert decision.state.name == "C6"
        assert decision.wake_latency_us == pytest.approx(133.0)

    def test_zero_gap_stays_c0(self, params):
        governor = CStateGovernor(params, LP_CLIENT)
        assert governor.select(0.0).state.name == "C0"

    def test_negative_gap_treated_as_zero(self, params):
        governor = CStateGovernor(params, LP_CLIENT)
        assert governor.select(-5.0).wake_latency_us == 0.0

    def test_wake_latency_capped_by_gap(self, params):
        """A core cannot pay more exit latency than it slept."""
        governor = CStateGovernor(params, LP_CLIENT)
        decision = governor.select(25.0)
        assert decision.wake_latency_us <= 25.0

    def test_server_baseline_caps_at_c1(self, params):
        governor = CStateGovernor(params, SERVER_BASELINE)
        decision = governor.select(100_000.0)
        assert decision.state.name == "C1"

    def test_c1e_server_variant_reaches_c1e(self, params):
        governor = CStateGovernor(params, server_with_c1e(True))
        decision = governor.select(1_000.0)
        assert decision.state.name == "C1E"


class TestLatencyLimit:
    def test_limit_excludes_deep_states(self, params):
        governor = CStateGovernor(params, LP_CLIENT, latency_limit_us=20.0)
        decision = governor.select(100_000.0)
        assert decision.state.name == "C1E"

    def test_tight_limit_keeps_only_c1(self, params):
        governor = CStateGovernor(params, LP_CLIENT, latency_limit_us=2.0)
        assert governor.select(100_000.0).state.name == "C1"

    def test_impossible_limit_falls_back_to_c0(self, params):
        governor = CStateGovernor(params, LP_CLIENT, latency_limit_us=0.5)
        decision = governor.select(100_000.0)
        assert decision.state.name == "C0"


class TestPredictionNoise:
    def test_noise_requires_rng(self, params):
        governor = CStateGovernor(params, LP_CLIENT)
        names = {governor.select(550.0).state.name for _ in range(20)}
        assert names == {"C1E"}  # deterministic without rng

    def test_noise_can_flip_border_decisions(self, params, rng):
        governor = CStateGovernor(params, LP_CLIENT)
        names = {governor.select(550.0, rng).state.name
                 for _ in range(200)}
        assert "C6" in names and "C1E" in names

    def test_tickless_off_limits_prediction(self, params):
        """Non-tickless kernels bound sleep depth at the tick period."""
        governor = CStateGovernor(params, LP_CLIENT)  # tickless off
        # Gap beyond the 4 ms tick: still selectable because the C6
        # residency (600us) is below the tick limit.
        assert governor.select(100_000.0).state.name == "C6"


class TestTable:
    def test_skylake_table_names(self):
        table = cstates_by_name()
        assert set(table) == {"C0", "C1", "C1E", "C6"}

    def test_exit_latencies_monotone(self, params):
        latencies = [s.exit_latency_us for s in params.cstate_table()]
        assert latencies == sorted(latencies)

    def test_residencies_monotone(self, params):
        residencies = [s.target_residency_us
                       for s in params.cstate_table()]
        assert residencies == sorted(residencies)

    def test_enabled_states_filtered_by_config(self, params):
        governor = CStateGovernor(params, SERVER_BASELINE)
        names = [s.name for s in governor.enabled_states]
        assert names == ["C0", "C1"]
