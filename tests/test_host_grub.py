"""Tests for grub command-line editing."""

import pytest

from repro.errors import HostToolingError
from repro.host.filesystem import FakeFilesystem
from repro.host.grub import GrubConfig


@pytest.fixture
def grub(small_fake_fs):
    return GrubConfig(small_fake_fs)


class TestCmdline:
    def test_initial_cmdline(self, grub):
        assert grub.cmdline() == ["quiet", "splash"]

    def test_set_flag_appends(self, grub):
        grub.set_flag("nohz", "off")
        assert "nohz=off" in grub.cmdline()

    def test_set_flag_is_idempotent(self, grub):
        grub.set_flag("nohz", "off")
        grub.set_flag("nohz", "on")
        tokens = grub.cmdline()
        assert tokens.count("nohz=on") == 1
        assert "nohz=off" not in tokens

    def test_valueless_flag(self, grub):
        grub.set_flag("mitigations")
        assert "mitigations" in grub.cmdline()

    def test_clear_flag(self, grub):
        grub.set_flag("nohz", "on")
        grub.clear_flag("nohz")
        assert all(not t.startswith("nohz") for t in grub.cmdline())

    def test_clear_preserves_others(self, grub):
        grub.clear_flag("quiet")
        assert grub.cmdline() == ["splash"]

    def test_flags_mapping(self, grub):
        grub.set_flag("nohz", "on")
        flags = grub.cmdline_flags()
        assert flags["nohz"] == "on"
        assert flags["quiet"] is None

    def test_missing_cmdline_line_raises(self):
        fs = FakeFilesystem({"/etc/default/grub": "GRUB_DEFAULT=0\n"})
        with pytest.raises(HostToolingError):
            GrubConfig(fs).cmdline()


class TestPaperKnobs:
    def test_c0_sets_idle_poll(self, grub):
        grub.set_max_cstate("C0")
        flags = grub.cmdline_flags()
        assert flags.get("idle") == "poll"
        assert "intel_idle.max_cstate" not in flags

    def test_c1_sets_max_cstate_1(self, grub):
        grub.set_max_cstate("C1")
        assert grub.cmdline_flags()["intel_idle.max_cstate"] == "1"

    def test_c1e_sets_max_cstate_2(self, grub):
        grub.set_max_cstate("C1E")
        assert grub.cmdline_flags()["intel_idle.max_cstate"] == "2"

    def test_c6_clears_ceiling(self, grub):
        grub.set_max_cstate("C1")
        grub.set_max_cstate("C6")
        flags = grub.cmdline_flags()
        assert "intel_idle.max_cstate" not in flags
        assert "idle" not in flags

    def test_switching_ceiling_removes_old_flags(self, grub):
        grub.set_max_cstate("C0")
        grub.set_max_cstate("C1")
        flags = grub.cmdline_flags()
        assert "idle" not in flags
        assert flags["intel_idle.max_cstate"] == "1"

    def test_unknown_cstate_raises(self, grub):
        with pytest.raises(HostToolingError):
            grub.set_max_cstate("C9")

    def test_pstate_driver_disable(self, grub):
        grub.set_pstate_driver(False)
        assert grub.cmdline_flags()["intel_pstate"] == "disable"

    def test_pstate_driver_enable_clears_flag(self, grub):
        grub.set_pstate_driver(False)
        grub.set_pstate_driver(True)
        assert "intel_pstate" not in grub.cmdline_flags()

    def test_tickless(self, grub):
        grub.set_tickless(True)
        assert grub.cmdline_flags()["nohz"] == "on"
        grub.set_tickless(False)
        assert grub.cmdline_flags()["nohz"] == "off"

    def test_requires_reboot(self, grub):
        assert grub.requires_reboot()
