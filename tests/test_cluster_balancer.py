"""LoadBalancer policies, accounting, and station-interface parity."""

import pytest

from repro.cluster import LoadBalancer
from repro.cluster.balancer import (
    least_outstanding_choice,
    power_of_two_choice,
)
from repro.errors import ConfigurationError
from repro.server.request import Request
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


class StubBackend:
    """A fixed-delay server group with the station submit interface."""

    def __init__(self, sim, delay_us=10.0, util=0.5):
        self._sim = sim
        self.delay_us = delay_us
        self._util = util
        self.served = 0

    def submit(self, request, done_fn):
        self.served += 1
        self._sim.post(self.delay_us, done_fn, request)

    def utilization(self):
        return self._util

    def expected_service_us(self):
        return self.delay_us


def make_lb(sim, count=4, policy="round-robin", seed=0, delays=None):
    streams = RandomStreams(seed)
    backends = [
        StubBackend(sim, delay_us=(delays[i] if delays else 10.0),
                    util=0.1 * (i + 1))
        for i in range(count)
    ]
    return LoadBalancer(sim, backends, policy=policy,
                        rng=streams.stream("lb")), backends


def drive(sim, lb, count):
    done = []
    for index in range(count):
        lb.submit(Request(request_id=index), done.append)
    sim.run()
    return done


class TestConstruction:
    def test_needs_backends(self, sim):
        with pytest.raises(ConfigurationError, match="backend"):
            LoadBalancer(sim, [])

    def test_unknown_policy(self, sim):
        with pytest.raises(ConfigurationError, match="policy"):
            LoadBalancer(sim, [StubBackend(sim)], policy="best")

    @pytest.mark.parametrize("policy", ["random", "power-of-two"])
    def test_stochastic_policies_need_rng(self, sim, policy):
        with pytest.raises(ConfigurationError, match="rng"):
            LoadBalancer(sim, [StubBackend(sim)], policy=policy)

    def test_deterministic_policies_allow_no_rng(self, sim):
        for policy in ("round-robin", "least-outstanding"):
            LoadBalancer(sim, [StubBackend(sim)], policy=policy)


class TestRoundRobin:
    def test_cycles_in_order(self, sim):
        lb, _ = make_lb(sim, count=3)
        assert [lb.choose() for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_dispatch_counts_balanced(self, sim):
        lb, backends = make_lb(sim, count=4)
        done = drive(sim, lb, 40)
        assert len(done) == 40
        assert lb.dispatched == [10, 10, 10, 10]
        assert [b.served for b in backends] == [10, 10, 10, 10]


class TestRandom:
    def test_choices_in_range_and_deterministic(self, sim):
        lb, _ = make_lb(sim, count=4, policy="random", seed=3)
        first = [lb.choose() for _ in range(50)]
        assert all(0 <= index < 4 for index in first)
        lb2, _ = make_lb(Simulator(), count=4, policy="random", seed=3)
        assert [lb2.choose() for _ in range(50)] == first

    def test_different_seeds_differ(self, sim):
        lb, _ = make_lb(sim, count=8, policy="random", seed=1)
        lb2, _ = make_lb(sim, count=8, policy="random", seed=2)
        assert ([lb.choose() for _ in range(40)]
                != [lb2.choose() for _ in range(40)])


class TestLeastOutstanding:
    def test_choice_function_argmin_lowest_index(self):
        assert least_outstanding_choice([3, 1, 1, 2]) == 1
        assert least_outstanding_choice([0]) == 0
        assert least_outstanding_choice([5, 5, 5]) == 0

    def test_never_picks_strictly_busier_node(self, sim):
        lb, _ = make_lb(sim, count=3, policy="least-outstanding",
                        delays=[5.0, 50.0, 500.0])
        violations = []

        def check(chosen, outstanding):
            if outstanding[chosen] != min(outstanding):
                violations.append((chosen, outstanding))

        lb.on_dispatch = check
        drive(sim, lb, 60)
        assert violations == []
        assert lb.completed == 60

    def test_skews_away_from_slow_backends(self, sim):
        lb, _ = make_lb(sim, count=2, policy="least-outstanding",
                        delays=[1.0, 10_000.0])
        for index in range(20):
            lb.submit(Request(request_id=index), lambda r: None)
            sim.run_until(sim.now + 5.0)
        assert lb.dispatched[0] > lb.dispatched[1]


class TestPowerOfTwo:
    def test_choice_function_prefers_less_loaded(self):
        assert power_of_two_choice([4, 1], 0, 1) == 1
        assert power_of_two_choice([1, 4], 0, 1) == 0
        # Tie: the first draw wins (no extra randomness consumed).
        assert power_of_two_choice([2, 2], 1, 0) == 1

    def test_dispatches_are_conserved(self, sim):
        lb, backends = make_lb(sim, count=4, policy="power-of-two",
                               seed=11)
        done = drive(sim, lb, 100)
        assert len(done) == 100
        assert sum(lb.dispatched) == 100
        assert sum(b.served for b in backends) == 100
        assert lb.outstanding == [0, 0, 0, 0]

    def test_candidate_pair_is_distinct(self, sim):
        """The classic p2c formulation compares two *different*
        backends; sampling with replacement would degenerate to a
        blind random pick whenever the pair collides."""
        lb, _ = make_lb(sim, count=2, policy="power-of-two", seed=1)
        # Load one backend heavily; a genuine pairwise comparison on
        # 2 nodes must now always pick the idle one.
        lb.outstanding[0] = 100
        assert all(lb.choose() == 1 for _ in range(50))

    def test_single_backend_needs_no_draws(self, sim):
        streams = RandomStreams(0)
        lb = LoadBalancer(sim, [StubBackend(sim)],
                          policy="power-of-two",
                          rng=streams.stream("lb"))
        assert [lb.choose() for _ in range(5)] == [0] * 5


class TestAccounting:
    def test_outstanding_tracks_in_flight(self, sim):
        lb, _ = make_lb(sim, count=2, delays=[100.0, 100.0])
        lb.submit(Request(request_id=0), lambda r: None)
        lb.submit(Request(request_id=1), lambda r: None)
        assert lb.outstanding == [1, 1]
        sim.run()
        assert lb.outstanding == [0, 0]
        assert lb.completed == 2

    def test_node_utilizations_and_mean(self, sim):
        lb, _ = make_lb(sim, count=4)
        assert lb.node_utilizations() == pytest.approx(
            (0.1, 0.2, 0.3, 0.4))
        assert lb.utilization() == pytest.approx(0.25)

    def test_expected_service_us_averages_backends(self, sim):
        lb, _ = make_lb(sim, count=2, delays=[10.0, 30.0])
        assert lb.expected_service_us() == pytest.approx(20.0)

    def test_on_dispatch_sees_pre_dispatch_outstanding(self, sim):
        lb, _ = make_lb(sim, count=2, delays=[100.0, 100.0])
        seen = []
        lb.on_dispatch = lambda chosen, outstanding: seen.append(
            (chosen, outstanding))
        lb.submit(Request(request_id=0), lambda r: None)
        lb.submit(Request(request_id=1), lambda r: None)
        assert seen == [(0, [0, 0]), (1, [1, 0])]
