"""Tests for the four workload testbed builders."""

import numpy as np
import pytest

from repro.config.presets import HP_CLIENT, LP_CLIENT
from repro.errors import ConfigurationError, ExperimentError
from repro.units import MS
from repro.workloads.memcached import build_memcached_testbed
from repro.workloads.hdsearch import build_hdsearch_testbed
from repro.workloads.socialnetwork import (
    build_socialnetwork_testbed,
    social_graph,
    timeline_length_distribution,
)
from repro.workloads.synthetic import DelayedService, build_synthetic_testbed


class TestMemcachedTestbed:
    def test_run_produces_metrics(self):
        testbed = build_memcached_testbed(
            seed=1, client_config=HP_CLIENT, qps=50_000,
            num_requests=200)
        metrics = testbed.run()
        assert metrics.requests == 180  # 10% warmup trimmed
        assert metrics.avg_us > 0
        assert metrics.p99_us >= metrics.avg_us
        assert metrics.avg_us >= metrics.true_avg_us

    def test_identical_seeds_identical_results(self):
        a = build_memcached_testbed(
            seed=9, client_config=LP_CLIENT, qps=50_000,
            num_requests=150).run()
        b = build_memcached_testbed(
            seed=9, client_config=LP_CLIENT, qps=50_000,
            num_requests=150).run()
        assert a.avg_us == b.avg_us
        assert a.p99_us == b.p99_us

    def test_different_seeds_differ(self):
        a = build_memcached_testbed(
            seed=1, client_config=LP_CLIENT, qps=50_000,
            num_requests=150).run()
        b = build_memcached_testbed(
            seed=2, client_config=LP_CLIENT, qps=50_000,
            num_requests=150).run()
        assert a.avg_us != b.avg_us

    def test_testbed_is_single_use(self):
        testbed = build_memcached_testbed(
            seed=1, client_config=HP_CLIENT, qps=50_000,
            num_requests=100)
        testbed.run()
        with pytest.raises(ExperimentError):
            testbed.run()

    def test_latency_scale_is_tens_of_microseconds(self):
        metrics = build_memcached_testbed(
            seed=3, client_config=HP_CLIENT, qps=50_000,
            num_requests=300).run()
        assert 20.0 < metrics.avg_us < 200.0

    def test_utilization_grows_with_load(self):
        low = build_memcached_testbed(
            seed=4, client_config=HP_CLIENT, qps=10_000,
            num_requests=300).run()
        high = build_memcached_testbed(
            seed=4, client_config=HP_CLIENT, qps=500_000,
            num_requests=300).run()
        assert high.server_utilization > low.server_utilization


class TestHdsearchTestbed:
    def test_latency_is_sub_millisecond_scale(self):
        metrics = build_hdsearch_testbed(
            seed=1, client_config=HP_CLIENT, qps=1_000,
            num_requests=200).run()
        assert 0.2 * MS < metrics.avg_us < 3 * MS

    def test_much_slower_than_memcached(self):
        hdsearch = build_hdsearch_testbed(
            seed=1, client_config=HP_CLIENT, qps=1_000,
            num_requests=150).run()
        memcached = build_memcached_testbed(
            seed=1, client_config=HP_CLIENT, qps=100_000,
            num_requests=150).run()
        assert hdsearch.avg_us > 5 * memcached.avg_us

    def test_deterministic(self):
        a = build_hdsearch_testbed(seed=5, client_config=LP_CLIENT,
                                   qps=1_000, num_requests=100).run()
        b = build_hdsearch_testbed(seed=5, client_config=LP_CLIENT,
                                   qps=1_000, num_requests=100).run()
        assert a.avg_us == b.avg_us


class TestSocialNetworkTestbed:
    def test_graph_is_reed98_scale(self):
        graph = social_graph()
        assert graph.number_of_nodes() == 962
        assert graph.number_of_edges() > 5_000

    def test_timeline_lengths_bounded_by_page(self):
        lengths = timeline_length_distribution()
        assert max(lengths) <= 40
        assert min(lengths) >= 0
        assert np.mean(lengths) > 1

    def test_latency_is_millisecond_scale(self):
        metrics = build_socialnetwork_testbed(
            seed=1, client_config=HP_CLIENT, qps=300,
            num_requests=150).run()
        assert 1 * MS < metrics.avg_us < 10 * MS
        assert metrics.p99_us > 2 * MS

    def test_p99_heavy_tail(self):
        metrics = build_socialnetwork_testbed(
            seed=2, client_config=HP_CLIENT, qps=300,
            num_requests=200).run()
        assert metrics.p99_us > 2 * metrics.avg_us


class TestSyntheticTestbed:
    def test_delay_extends_latency_linearly_at_low_load(self):
        """Paper: 'the response time increases linearly with the
        increase of the added delay' (validation of the workload)."""
        points = []
        for delay in (0.0, 100.0, 200.0, 400.0):
            metrics = build_synthetic_testbed(
                seed=1, client_config=HP_CLIENT, qps=5_000,
                added_delay_us=delay, num_requests=200).run()
            points.append((delay, metrics.avg_us))
        base = points[0][1]
        for delay, avg in points[1:]:
            assert avg == pytest.approx(base + delay, rel=0.15)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayedService(-1.0)

    def test_delayed_service_mean(self):
        assert DelayedService(100.0).mean_service_us() == pytest.approx(
            110.0)
