"""Property tests for the mergeable-sink protocol (repro.parallel.merge).

The contract, per sink:

* **columnar** is exact: merging the K striped partitions of a row
  population through :func:`merge_columnar_payloads` yields the same
  measured arrays and statistics as one unpartitioned buffer, for any
  partition width -- bit for bit;
* **streaming** is tolerance-pinned: Chan-combined moments equal a
  single accumulator fed the same chunks (float-summation order), and
  mixture-replayed P\N{SUPERSCRIPT TWO} markers track the pooled
  sample quantile within the relative tolerances asserted here.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadgen.measurement import PointOfMeasurement, RunSamples
from repro.obs.sinks import P2Quantile, _RunningMoments, merge_marker_states
from repro.parallel.merge import (
    MergedStreamingSamples,
    merge_columnar_payloads,
    merged_run_metrics,
)
from repro.telemetry import SampleColumns
from repro.telemetry.columns import COLUMN_FIELDS

WARMUP = 0.1


def synthetic_arrays(n, seed):
    """A full set of telemetry columns with *unique* send times.

    Unique ``intended_send_us`` makes the stable send-order sort a
    total order, so partition-and-merge must reproduce the reference
    arrays exactly rather than merely as a multiset.
    """
    rng = np.random.default_rng(seed)
    arrays = {name: rng.uniform(1.0, 100.0, n) for name in COLUMN_FIELDS}
    arrays["request_id"] = np.arange(n, dtype=np.float64)
    arrays["intended_send_us"] = rng.permutation(n).astype(np.float64) * 7.5
    return arrays


def striped_payloads(arrays, k):
    """Round-robin partition of *arrays* into k shard payloads, the
    same striping :func:`repro.parallel.shard.shard_layout` produces."""
    return [
        {"kind": "columnar", "warmup_fraction": WARMUP,
         "columns": {name: values[stripe::k]
                     for name, values in arrays.items()},
         "server_utilization": 0.5, "node_utilizations": [],
         "obs_metrics": [["completions", float(len(
             arrays["request_id"][stripe::k]))]]}
        for stripe in range(k)
    ]


class TestColumnarPartitionProperty:
    @given(n=st.integers(min_value=10, max_value=80),
           k=st.integers(min_value=1, max_value=5),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_merging_k_partitions_is_exact(self, n, k, seed):
        arrays = synthetic_arrays(n, seed)
        reference = RunSamples.from_columns(
            SampleColumns.from_arrays(arrays), warmup_fraction=WARMUP)
        merged = merge_columnar_payloads(striped_payloads(arrays, k))
        assert len(merged) == len(reference)
        assert merged.measured_count == reference.measured_count
        for point in PointOfMeasurement:
            assert np.array_equal(merged.latencies_us(point),
                                  reference.latencies_us(point))
        assert (merged.average_latency_us()
                == reference.average_latency_us())
        assert (merged.percentile_latency_us(99.0)
                == reference.percentile_latency_us(99.0))

    @given(n=st.integers(min_value=10, max_value=60),
           k=st.integers(min_value=2, max_value=5),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_merged_metrics_match_reference_statistics(self, n, k, seed):
        arrays = synthetic_arrays(n, seed)
        reference = RunSamples.from_columns(
            SampleColumns.from_arrays(arrays), warmup_fraction=WARMUP)
        metrics = merged_run_metrics(striped_payloads(arrays, k), seed=3)
        assert metrics.avg_us == reference.average_latency_us()
        assert metrics.p99_us == reference.percentile_latency_us(99.0)
        assert metrics.requests == reference.measured_count
        assert metrics.seed == 3
        assert dict(metrics.obs_metrics)["completions"] == float(n)

    def test_merge_rejects_empty_payloads(self):
        with pytest.raises(ValueError):
            merge_columnar_payloads([])
        with pytest.raises(ValueError):
            merged_run_metrics([], seed=0)

    def test_merge_rejects_mixed_sink_kinds(self):
        arrays = synthetic_arrays(20, 1)
        columnar, streaming = striped_payloads(arrays, 2)
        streaming = dict(streaming, kind="streaming")
        with pytest.raises(ValueError):
            merged_run_metrics([columnar, streaming], seed=0)


class TestMomentsMergeProperty:
    @given(chunks=st.lists(
        st.lists(st.floats(min_value=0.0, max_value=1e6,
                           allow_nan=False, allow_infinity=False),
                 min_size=1, max_size=50),
        min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_chan_merge_equals_sequential_chunks(self, chunks):
        serial = _RunningMoments()
        states = []
        for chunk in chunks:
            values = np.asarray(chunk, dtype=np.float64)
            serial.observe_chunk(values)
            shard = _RunningMoments()
            shard.observe_chunk(values)
            states.append(shard.state())
        merged = _RunningMoments.from_states(states)
        assert merged.count == serial.count
        assert merged.min == serial.min
        assert merged.max == serial.max
        assert math.isclose(merged.mean, serial.mean,
                            rel_tol=1e-12, abs_tol=1e-9)
        assert math.isclose(merged.variance(), serial.variance(),
                            rel_tol=1e-9, abs_tol=1e-6)


class TestQuantileMergeTolerance:
    """Mixture replay of per-shard P\N{SUPERSCRIPT TWO} markers vs the
    pooled sample quantile.  These relative tolerances are the
    documented accuracy of the streaming half of the protocol."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("pct,tolerance", [(0.50, 0.02),
                                               (0.99, 0.05)])
    def test_merged_markers_track_pooled_quantile(self, seed, pct,
                                                  tolerance):
        rng = np.random.default_rng(seed)
        values = rng.exponential(100.0, 8_000)
        shards = 4
        states = []
        for stripe in range(shards):
            estimator = P2Quantile(pct)
            estimator.observe_many(values[stripe::shards].tolist())
            states.append(estimator.marker_state())
        merged = merge_marker_states(states, pct)
        pooled = float(np.quantile(values, pct))
        assert merged == pytest.approx(pooled, rel=tolerance)

    def test_tiny_shards_below_marker_threshold_merge(self):
        # Under five observations marker_state ships the raw sorted
        # buffer; the mixture replay must still bracket the data.
        chunks = [[1.0, 9.0, 5.0], [2.0, 8.0], [7.0, 3.0, 4.0, 6.0]]
        states = []
        for chunk in chunks:
            estimator = P2Quantile(0.5)
            estimator.observe_many(chunk)
            states.append(estimator.marker_state())
        merged = merge_marker_states(states, 0.5)
        pooled = float(np.quantile(
            [x for chunk in chunks for x in chunk], 0.5))
        assert 1.0 <= merged <= 9.0
        assert merged == pytest.approx(pooled, rel=0.25)


def streaming_state(values, warmup_skipped=0, kernel_stack_us=2.0,
                    tracked=(50.0, 99.0)):
    """A hand-built export_state payload over one latency population
    (both generator and nic channels see the same values)."""
    data = np.asarray(values, dtype=np.float64)
    moments = _RunningMoments()
    moments.observe_chunk(data)
    quantiles = {}
    for pct in tracked:
        estimator = P2Quantile(pct / 100.0)
        estimator.observe_many(data.tolist())
        quantiles[f"{pct:g}"] = estimator.marker_state()
    channel = {"moments": moments.state(), "quantiles": quantiles}
    return {
        "warmup_fraction": WARMUP,
        "kernel_stack_us": kernel_stack_us,
        "tracked_quantiles": list(tracked),
        "recorded": int(data.size) + warmup_skipped,
        "warmup_skipped": warmup_skipped,
        "windows": [],
        "channels": {PointOfMeasurement.GENERATOR.value: channel,
                     PointOfMeasurement.NIC.value: dict(channel)},
    }


class TestMergedStreamingSamples:
    def setup_method(self):
        rng = np.random.default_rng(42)
        self.populations = [rng.exponential(100.0, 2_000)
                            for _ in range(3)]
        self.pooled = np.concatenate(self.populations)
        self.merged = MergedStreamingSamples(
            [streaming_state(pop, warmup_skipped=5)
             for pop in self.populations])

    def test_counts_add_across_shards(self):
        assert len(self.merged) == self.pooled.size + 15
        assert self.merged.warmup_count == 15
        assert self.merged.measured_count == self.pooled.size

    def test_mean_and_extremes_are_pooled(self):
        assert self.merged.average_latency_us() == pytest.approx(
            float(np.mean(self.pooled)), rel=1e-12)
        assert self.merged.min_latency_us() == float(np.min(self.pooled))
        assert self.merged.max_latency_us() == float(np.max(self.pooled))
        assert self.merged.variance_us2() == pytest.approx(
            float(np.var(self.pooled)), rel=1e-9)

    def test_percentile_tracks_pooled_quantile(self):
        # P2 itself is a few percent off at the tail of heavy-tailed
        # data, before any merging; 8% bounds estimator + mixture
        # error together for this pinned population.
        assert self.merged.percentile_latency_us(99.0) == pytest.approx(
            float(np.quantile(self.pooled, 0.99)), rel=0.08)

    def test_kernel_point_is_nic_plus_stack_traversal(self):
        nic = self.merged.average_latency_us(PointOfMeasurement.NIC)
        kernel = self.merged.average_latency_us(PointOfMeasurement.KERNEL)
        assert kernel == pytest.approx(nic + 2.0)

    def test_untracked_percentile_raises(self):
        with pytest.raises(ValueError, match="not tracked"):
            self.merged.percentile_latency_us(95.0)

    def test_empty_states_raise(self):
        with pytest.raises(ValueError):
            MergedStreamingSamples([])
