"""Tests for the analysis layer: survey, tables, figures."""

import pytest

from repro.analysis.figures import (
    graph_study,
    memcached_study,
    render_graph_series,
    render_latency_series,
    render_ratio_series,
    synthetic_study,
)
from repro.analysis.survey import SURVEY_ROWS, survey_counts
from repro.analysis.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.core.evaluation_time import estimate_evaluation_time
from repro.errors import ExperimentError


class TestSurvey:
    def test_counts_match_table1(self):
        counts = survey_counts()
        assert counts == {
            "Client only": 0,
            "Server only": 8,
            "Client and server": 2,
            "None": 10,
        }

    def test_twenty_rows(self):
        assert len(SURVEY_ROWS) == 20

    def test_ten_percent_characterize_client(self):
        client_rows = [r for r in SURVEY_ROWS if r.characterizes_client]
        assert len(client_rows) / len(SURVEY_ROWS) == pytest.approx(0.1)


class TestTableRenderers:
    def test_table1_totals(self):
        text = render_table1()
        assert "Server only" in text and "Total" in text
        assert text.strip().endswith("20")

    def test_table2_has_all_knobs_and_columns(self):
        text = render_table2()
        for knob in ("C-states", "Frequency Driver", "Turbo", "SMT",
                     "Uncore Frequency", "Tickless"):
            assert knob in text
        assert "LP" in text and "HP" in text and "Baseline" in text
        assert "intel_pstate" in text and "acpi_cpufreq" in text

    def test_table3_marks_risky_row(self):
        text = render_table3()
        assert "X(5.1,5.3)" in text
        assert "open-loop time-insensitive" in text

    def test_table4_renders_estimates(self, rng):
        estimates = {
            "HP-SMToff": {
                10_000.0: estimate_evaluation_time(
                    rng.normal(100, 1, size=30), rng=rng),
            },
        }
        text = render_table4(estimates, qps_order=[10_000.0])
        assert "HP-SMToff" in text
        assert "10K" in text
        assert "pass" in text or "fail" in text


@pytest.fixture(scope="module")
def tiny_grid():
    """A minimal memcached SMT grid for renderer tests."""
    # >= 8 runs: the 95% non-parametric CI's upper rank only fits the
    # sample for n >= 8.
    return memcached_study(
        knob="smt", qps_list=(50_000,), runs=8, num_requests=100,
        base_seed=0)


class TestStudyGrid:
    def test_grid_has_all_cells(self, tiny_grid):
        assert set(tiny_grid.cells) == {
            ("LP", "SMToff"), ("LP", "SMTon"),
            ("HP", "SMToff"), ("HP", "SMTon"),
        }

    def test_series_lengths(self, tiny_grid):
        series = tiny_grid.series("LP", "SMToff", "avg")
        assert len(series) == 1
        assert series[0][0] == 50_000.0
        assert series[0][1] > 0

    def test_ratio_series(self, tiny_grid):
        ratios = tiny_grid.ratio_series("HP", "SMToff", "SMTon", "avg")
        assert 0.8 < ratios[0][1] < 1.3

    def test_client_gap_lp_above_hp(self, tiny_grid):
        gaps = tiny_grid.client_gap_series("SMToff", "avg")
        assert gaps[0][1] > 1.3  # LP well above HP on memcached

    def test_comparisons_produce_verdicts(self, tiny_grid):
        comparisons = tiny_grid.comparisons("HP", "SMToff", "SMTon")
        assert 50_000.0 in comparisons

    def test_unknown_metric_rejected(self, tiny_grid):
        with pytest.raises(ExperimentError):
            tiny_grid.series("LP", "SMToff", "bogus")

    def test_missing_cell_rejected(self, tiny_grid):
        with pytest.raises(ExperimentError):
            tiny_grid.result("LP", "SMToff", 999.0)

    def test_stdev_metric(self, tiny_grid):
        series = tiny_grid.series("LP", "SMToff", "stdev_avg")
        assert series[0][1] >= 0

    def test_renderers_produce_rows(self, tiny_grid):
        latency_text = render_latency_series(tiny_grid, "avg")
        assert "LP-SMToff" in latency_text and "50K" in latency_text
        ratio_text = render_ratio_series(tiny_grid, "SMToff", "SMTon")
        assert "LP" in ratio_text and "HP" in ratio_text


class TestSyntheticStudy:
    def test_one_grid_per_delay(self):
        grids = synthetic_study(
            delays_us=(0, 100), qps_list=(5_000,), runs=3,
            num_requests=100)
        assert set(grids) == {0.0, 100.0}
        for grid in grids.values():
            assert ("LP", "baseline") in grid.cells


@pytest.fixture(scope="module")
def tiny_graph_grid():
    """A minimal service-graph QoS grid for renderer tests."""
    return graph_study(
        workload="memcached", graphs=("memcached-cached",),
        qps_list=(50_000, 100_000), runs=8, num_requests=100,
        base_seed=0)


class TestGraphStudy:
    def test_grid_has_topology_cells(self, tiny_graph_grid):
        assert set(tiny_graph_grid.cells) == {"memcached-cached"}
        series = tiny_graph_grid.series("memcached-cached", "p99")
        assert len(series) == 2
        assert all(value > 0 for _, value in series)

    def test_qos_capacity_is_monotone_in_target(self, tiny_graph_grid):
        loose = tiny_graph_grid.qos_capacity(
            "memcached-cached", target_us=1e9)
        tight = tiny_graph_grid.qos_capacity(
            "memcached-cached", target_us=0.0)
        assert loose == 100_000.0
        assert tight == 0.0
        assert loose >= tiny_graph_grid.qos_capacity(
            "memcached-cached", target_us=200.0) >= tight

    def test_renderer_produces_rows(self, tiny_graph_grid):
        text = render_graph_series(tiny_graph_grid, "p99")
        assert "memcached-cached" in text
        assert "50K" in text and "100K" in text

    def test_missing_cell_rejected(self, tiny_graph_grid):
        with pytest.raises(ExperimentError):
            tiny_graph_grid.result("memcached-cached", 999.0)
        with pytest.raises(ExperimentError):
            tiny_graph_grid.result("absent", 50_000.0)


@pytest.fixture(scope="module")
def rising_graph_grid():
    """A graph grid whose p99 rises with load (saturating sweep)."""
    return graph_study(
        workload="memcached", graphs=("memcached-cached",),
        qps_list=(1_000_000, 2_000_000), runs=3, num_requests=100,
        base_seed=0)


class TestGraphQosCapacityDelegation:
    """qos_capacity delegates to capacity_under_qos (bugfix)."""

    def test_matches_capacity_under_qos(self, tiny_graph_grid):
        from repro.core.provisioning import capacity_under_qos

        latency_by_qps = dict(
            tiny_graph_grid.series("memcached-cached", "p99"))
        for target in (200.0, 500.0, 1e9):
            expected = capacity_under_qos(latency_by_qps, target,
                                          metric="p99")
            assert tiny_graph_grid.qos_capacity(
                "memcached-cached", target_us=target) == \
                expected.capacity_qps

    def crossing_target(self, grid):
        series = dict(grid.series("memcached-cached", "p99"))
        low, high = sorted(series)
        target = (series[low] + series[high]) / 2.0
        # The sweep saturates, so the target sits strictly between
        # the two measured latencies -- a crossing exists.
        assert series[low] < target < series[high]
        return low, high, target

    def test_capacity_result_exposes_interpolated_crossing(
            self, rising_graph_grid):
        low, high, target = self.crossing_target(rising_graph_grid)
        result = rising_graph_grid.capacity_result(
            "memcached-cached", target, interpolate=True)
        assert result.capacity_qps == low
        assert result.violated_at_qps == high
        assert result.interpolated_capacity_qps is not None
        assert low < result.interpolated_capacity_qps < high
        # And qos_capacity(interpolate=True) reports it.
        assert rising_graph_grid.qos_capacity(
            "memcached-cached", target_us=target,
            interpolate=True) == result.interpolated_capacity_qps

    def test_interpolation_stays_opt_in(self, rising_graph_grid):
        low, _, target = self.crossing_target(rising_graph_grid)
        assert rising_graph_grid.qos_capacity(
            "memcached-cached", target_us=target) == low

    def test_capacity_renderer_produces_rows(self, rising_graph_grid):
        from repro.analysis import render_graph_capacity

        _, _, target = self.crossing_target(rising_graph_grid)
        text = render_graph_capacity(rising_graph_grid, target)
        assert "memcached-cached" in text
        assert "interp" in text
        # Sweep-limited target: no crossing to interpolate.
        unconstrained = render_graph_capacity(rising_graph_grid, 1e9)
        assert "-" in unconstrained
