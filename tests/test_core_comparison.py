"""Tests for condition comparison and conflict detection."""

import pytest

from repro.core.comparison import (
    Verdict,
    compare_conditions,
    detect_conflicts,
)
from repro.errors import StatisticsError


def normal_samples(rng, mean, std=1.0, n=50):
    return rng.normal(mean, std, size=n)


class TestCompareConditions:
    def test_clearly_different_conditions(self, rng):
        fast = normal_samples(rng, 100.0)
        slow = normal_samples(rng, 140.0)
        comparison = compare_conditions(fast, slow, "fast", "slow")
        assert comparison.verdict is Verdict.A_FASTER
        assert comparison.ratio == pytest.approx(1.4, rel=0.05)
        assert "fast is faster" in comparison.describe()

    def test_reversed_order(self, rng):
        fast = normal_samples(rng, 100.0)
        slow = normal_samples(rng, 140.0)
        comparison = compare_conditions(slow, fast, "slow", "fast")
        assert comparison.verdict is Verdict.B_FASTER

    def test_identical_conditions_indistinguishable(self, rng):
        a = normal_samples(rng, 100.0, std=5.0)
        b = normal_samples(rng, 100.0, std=5.0)
        comparison = compare_conditions(a, b)
        assert comparison.verdict is Verdict.INDISTINGUISHABLE
        assert "indistinguishable" in comparison.describe()

    def test_overlap_rule_matches_cis(self, rng):
        a = normal_samples(rng, 100.0, std=8.0)
        b = normal_samples(rng, 103.0, std=8.0)
        comparison = compare_conditions(a, b)
        expected_overlap = comparison.ci_a.overlaps(comparison.ci_b)
        assert (comparison.verdict is Verdict.INDISTINGUISHABLE) \
            == expected_overlap

    def test_zero_mean_rejected(self):
        with pytest.raises(StatisticsError):
            compare_conditions([0.0] * 20, [1.0] * 20)


class TestDetectConflicts:
    def make_comparison(self, rng, delta):
        a = normal_samples(rng, 100.0, std=1.0)
        b = normal_samples(rng, 100.0 + delta, std=1.0)
        return compare_conditions(a, b)

    def test_conflict_found_when_observers_disagree(self, rng):
        per_observer = {
            "LP": {400_000.0: self.make_comparison(rng, 20.0)},
            "HP": {400_000.0: self.make_comparison(rng, 0.0)},
        }
        conflicts = detect_conflicts(per_observer)
        assert len(conflicts) == 1
        assert conflicts[0].operating_point == 400_000.0
        assert "conflicting" in conflicts[0].describe()

    def test_no_conflict_when_observers_agree(self, rng):
        per_observer = {
            "LP": {100.0: self.make_comparison(rng, 20.0)},
            "HP": {100.0: self.make_comparison(rng, 25.0)},
        }
        assert detect_conflicts(per_observer) == []

    def test_points_sorted(self, rng):
        per_observer = {
            "LP": {
                300.0: self.make_comparison(rng, 20.0),
                100.0: self.make_comparison(rng, 20.0),
            },
            "HP": {
                300.0: self.make_comparison(rng, 0.0),
                100.0: self.make_comparison(rng, 0.0),
            },
        }
        conflicts = detect_conflicts(per_observer)
        assert [c.operating_point for c in conflicts] == [100.0, 300.0]

    def test_empty_input(self):
        assert detect_conflicts({}) == []

    def test_observer_missing_point_ignored(self, rng):
        per_observer = {
            "LP": {100.0: self.make_comparison(rng, 20.0)},
            "HP": {},
        }
        assert detect_conflicts(per_observer) == []
