"""Tests for telemetry sinks: streaming accuracy vs the exact path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import experiment
from repro.errors import SpecValidationError
from repro.loadgen.measurement import PointOfMeasurement, RunSamples
from repro.obs import (
    P2Quantile,
    StreamingSink,
    describe_sink,
    make_sink,
    sink_names,
    validate_sink_name,
)
from repro.obs.sinks import _RunningMoments


class TestRegistry:
    def test_known_names(self):
        assert sink_names() == ("columnar", "streaming")
        assert "exact" in describe_sink("columnar")
        assert "O(1)" in describe_sink("streaming")

    def test_did_you_mean_suggestion(self):
        with pytest.raises(SpecValidationError,
                           match="did you mean 'streaming'"):
            validate_sink_name("streamin")

    def test_unknown_name_lists_registry(self):
        with pytest.raises(SpecValidationError,
                           match="columnar, streaming"):
            validate_sink_name("parquet")

    def test_make_sink_constructs_both(self):
        assert isinstance(make_sink("columnar", 100), RunSamples)
        assert isinstance(make_sink("streaming", 100), StreamingSink)


class TestRunningMomentsProperties:
    @given(st.lists(st.floats(min_value=0.1, max_value=1e6),
                    min_size=1, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_mean_and_variance_match_numpy(self, values):
        moments = _RunningMoments()
        for value in values:
            moments.observe(value)
        array = np.asarray(values)
        assert moments.mean == pytest.approx(
            float(np.mean(array)), rel=1e-9)
        assert moments.variance() == pytest.approx(
            float(np.var(array)), rel=1e-7, abs=1e-9)
        assert moments.min == float(np.min(array))
        assert moments.max == float(np.max(array))


class TestP2QuantileProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_tracks_numpy_quantile_on_lognormal(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.lognormal(mean=4.0, sigma=0.5, size=5_000)
        p50 = P2Quantile(0.5)
        p99 = P2Quantile(0.99)
        for x in data:
            p50.observe(float(x))
            p99.observe(float(x))
        assert p50.value() == pytest.approx(
            float(np.percentile(data, 50)), rel=0.05)
        # The P2 tail estimate on heavy-tailed data is much looser
        # than the median: across the whole seed range above the
        # worst p99 error is ~20% (e.g. seeds 53, 1183, 7739).
        assert p99.value() == pytest.approx(
            float(np.percentile(data, 99)), rel=0.25)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6),
                    min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_estimate_stays_within_observed_range(self, values):
        estimator = P2Quantile(0.9)
        for value in values:
            estimator.observe(value)
        assert min(values) <= estimator.value() <= max(values)

    def test_small_samples_interpolate_exactly(self):
        estimator = P2Quantile(0.5)
        for value in (3.0, 1.0, 2.0):
            estimator.observe(value)
        assert estimator.value() == 2.0

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(1.0)
        with pytest.raises(ValueError):
            P2Quantile(0.0)


class TestStreamingSinkUnit:
    def test_validates_constructor_arguments(self):
        with pytest.raises(ValueError):
            StreamingSink(0)
        with pytest.raises(ValueError):
            StreamingSink(100, warmup_fraction=1.0)
        with pytest.raises(ValueError):
            StreamingSink(100, quantiles=(0.0,))
        with pytest.raises(ValueError):
            StreamingSink(100, target_windows=0)

    def test_untracked_percentile_raises(self):
        sink = StreamingSink(100, quantiles=(99.0,))
        with pytest.raises(ValueError, match="not tracked"):
            sink.percentile_latency_us(75.0)


class TestStreamingVsExact:
    """The documented accuracy contract, on real testbed runs."""

    @pytest.fixture(scope="class")
    def pair(self):
        def run(sink):
            plan = (experiment("memcached").client("LP")
                    .load(qps=300_000, num_requests=100_000)
                    .policy(runs=1, base_seed=7, sink=sink)
                    .build())
            testbed = plan.testbed(7)
            metrics = testbed.run()
            return metrics, testbed.generator.samples

        exact_metrics, exact_samples = run("columnar")
        stream_metrics, stream_samples = run("streaming")
        return (exact_metrics, exact_samples,
                stream_metrics, stream_samples)

    def test_sample_counts_match(self, pair):
        exact_metrics, exact_samples, stream_metrics, stream = pair
        assert isinstance(stream, StreamingSink)
        assert len(stream) == len(exact_samples)
        assert stream.measured_count == exact_samples.measured_count
        assert stream_metrics.requests == exact_metrics.requests

    def test_mean_exact_up_to_float_order(self, pair):
        exact_metrics, _, stream_metrics, _ = pair
        assert stream_metrics.avg_us == pytest.approx(
            exact_metrics.avg_us, rel=1e-9)
        assert stream_metrics.true_avg_us == pytest.approx(
            exact_metrics.true_avg_us, rel=1e-9)

    def test_quantiles_within_documented_tolerance(self, pair):
        exact_metrics, exact_samples, stream_metrics, stream = pair
        assert stream_metrics.p99_us == pytest.approx(
            exact_metrics.p99_us, rel=0.02)
        assert stream_metrics.true_p99_us == pytest.approx(
            exact_metrics.true_p99_us, rel=0.02)
        assert stream.percentile_latency_us(50.0) == pytest.approx(
            exact_samples.percentile_latency_us(50.0), rel=0.02)

    def test_variance_matches_exact_path(self, pair):
        _, exact_samples, _, stream = pair
        latencies = exact_samples.latencies_us(
            PointOfMeasurement.GENERATOR)
        assert stream.variance_us2() == pytest.approx(
            float(np.var(latencies)), rel=1e-7)

    def test_kernel_point_is_constant_shift_of_nic(self, pair):
        _, exact_samples, _, stream = pair
        assert stream.average_latency_us(
            PointOfMeasurement.KERNEL) == pytest.approx(
            exact_samples.average_latency_us(
                PointOfMeasurement.KERNEL), rel=1e-9)

    def test_windowed_series_is_bounded_and_covers_run(self, pair):
        _, _, _, stream = pair
        assert 0 < len(stream.windows) <= 2 * 128
        covered = sum(window[2] for window in stream.windows)
        # Flushed windows cover all but the (unflushed) tail.
        assert covered >= stream.measured_count - stream._window_requests
        for start, end, count, mean, peak in stream.windows:
            assert end >= start and count > 0
            assert peak >= mean > 0


class TestGoldenObsOff:
    """Observability off must leave the exact path byte-for-byte alone."""

    def test_default_plan_uses_columnar_and_no_obs(self):
        plan = (experiment("memcached").client("LP")
                .load(qps=50_000, num_requests=200)
                .policy(runs=1, base_seed=3)
                .build())
        assert plan.policy.sink == "columnar"
        assert plan.policy.trace is False
        assert plan.policy.observed is False
        assert plan.policy.observability() is None
        testbed = plan.testbed(3)
        assert testbed.sim.obs is None
        assert isinstance(testbed.generator.samples, RunSamples)
        metrics = testbed.run()
        assert metrics.obs_metrics == ()
