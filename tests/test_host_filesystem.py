"""Tests for the pluggable filesystem and the synthetic sysfs tree."""

import pytest

from repro.errors import SysfsError
from repro.host.filesystem import (
    FakeFilesystem,
    format_cpu_list,
    make_skylake_tree,
    parse_cpu_list,
)


class TestFakeFilesystem:
    def test_read_write_roundtrip(self):
        fs = FakeFilesystem({"/a": "1"})
        fs.write_text("/a", "2")
        assert fs.read_text("/a") == "2"

    def test_read_missing_raises(self):
        with pytest.raises(SysfsError):
            FakeFilesystem().read_text("/missing")

    def test_write_missing_raises(self):
        with pytest.raises(SysfsError):
            FakeFilesystem().write_text("/missing", "1")

    def test_read_only_paths_reject_writes(self):
        fs = FakeFilesystem({"/locked": "1"})
        fs.read_only.add("/locked")
        with pytest.raises(SysfsError):
            fs.write_text("/locked", "2")

    def test_journal_records_writes_in_order(self):
        fs = FakeFilesystem({"/a": "1", "/b": "1"})
        fs.write_text("/b", "x")
        fs.write_text("/a", "y")
        assert fs.journal == [("/b", "x"), ("/a", "y")]

    def test_exists_for_files_and_directories(self):
        fs = FakeFilesystem({"/dir/file": "1"})
        assert fs.exists("/dir/file")
        assert fs.exists("/dir")
        assert not fs.exists("/other")

    def test_listdir_returns_direct_children(self):
        fs = FakeFilesystem({
            "/d/a": "1", "/d/b/c": "2", "/d/b/e": "3", "/x": "4"})
        assert fs.listdir("/d") == ["a", "b"]

    def test_listdir_missing_raises(self):
        with pytest.raises(SysfsError):
            FakeFilesystem().listdir("/nope")

    def test_read_strips_whitespace(self):
        fs = FakeFilesystem({"/a": " 42\n"})
        assert fs.read_text("/a") == "42"


class TestSkylakeTree:
    def test_default_tree_has_40_cpus(self):
        files = make_skylake_tree()
        assert files["/sys/devices/system/cpu/online"] == "0-39"
        assert "/sys/devices/system/cpu/cpu39/cpufreq/scaling_governor" \
            in files

    def test_tree_has_four_cstates_per_cpu(self):
        files = make_skylake_tree(num_cpus=1)
        for state in ("state0", "state1", "state2", "state3"):
            assert (f"/sys/devices/system/cpu/cpu0/cpuidle/{state}/name"
                    in files)

    def test_tree_has_msr_nodes(self):
        files = make_skylake_tree(num_cpus=2)
        assert "/dev/cpu/0/msr@0x1a0" in files
        assert "/dev/cpu/1/msr@0x620" in files

    def test_tree_has_grub(self):
        files = make_skylake_tree(num_cpus=1)
        assert "GRUB_CMDLINE_LINUX_DEFAULT" in files["/etc/default/grub"]

    def test_configurable_driver_and_governor(self):
        files = make_skylake_tree(
            num_cpus=1, driver="acpi-cpufreq", governor="performance")
        base = "/sys/devices/system/cpu/cpu0/cpufreq"
        assert files[f"{base}/scaling_driver"] == "acpi-cpufreq"
        assert files[f"{base}/scaling_governor"] == "performance"


class TestCpuLists:
    def test_parse_simple_range(self):
        assert parse_cpu_list("0-3") == [0, 1, 2, 3]

    def test_parse_mixed(self):
        assert parse_cpu_list("0-2,5,8-9") == [0, 1, 2, 5, 8, 9]

    def test_parse_empty(self):
        assert parse_cpu_list("") == []

    def test_parse_malformed_raises(self):
        for bad in ("a-b", "3-1", "1,,2", "1-"):
            with pytest.raises(SysfsError):
                parse_cpu_list(bad)

    def test_format_compacts_ranges(self):
        assert format_cpu_list([0, 1, 2, 5, 8, 9]) == "0-2,5,8-9"

    def test_format_empty(self):
        assert format_cpu_list([]) == ""

    def test_roundtrip(self):
        spec = "0-7,12,14-15,39"
        assert format_cpu_list(parse_cpu_list(spec)) == spec

    def test_format_deduplicates(self):
        assert format_cpu_list([3, 3, 2, 1]) == "1-3"
