"""Tests for campaign execution: parallelism, memoization, resume,
failure isolation."""

import multiprocessing

import pytest

from repro.campaign.executor import (
    CampaignExecutor,
    execute_campaign,
    run_condition,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.config.presets import (
    LP_CLIENT,
    SERVER_BASELINE,
    server_with_smt,
)
from repro.errors import ExperimentError
from repro.workloads.registry import (
    builder_by_name,
    register_builder,
    register_workload,
    registered_workloads,
    workload_by_name,
)


def small_spec(**overrides):
    defaults = dict(
        name="executor-test",
        workload="memcached",
        conditions={"SMToff": server_with_smt(False),
                    "SMTon": server_with_smt(True)},
        qps_list=(10_000, 50_000, 100_000),
        runs=2,
        num_requests=60,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def sample_map(outcome):
    """hash -> per-run average samples, for equality comparisons."""
    return {h: result.avg_samples().tolist()
            for h, result in outcome.results().items()}


class TestRegistry:
    def test_paper_workloads_registered(self):
        assert set(registered_workloads()) >= {
            "memcached", "hdsearch", "socialnetwork", "synthetic"}

    def test_unknown_workload_rejected(self):
        with pytest.raises(ExperimentError):
            builder_by_name("quake3")

    def test_duplicate_registration_rejected(self):
        original = workload_by_name("memcached")
        builder = builder_by_name("memcached")
        try:
            with pytest.raises(ExperimentError):
                register_builder("memcached", builder)
            register_builder("memcached", builder, replace=True)
        finally:
            # Restore the typed definition even on failure: the
            # legacy shim registers a schema-less one, which would
            # mask parameter validation for the rest of the session.
            register_workload(original, replace=True)
        assert workload_by_name("memcached") is original


class TestRunCondition:
    def test_runs_one_experiment(self):
        condition = small_spec().expand()[0]
        result = run_condition(condition)
        assert result.label == condition.label
        assert result.qps == condition.qps
        assert len(result.runs) == condition.runs

    def test_extra_kwargs_reach_the_builder(self):
        spec = small_spec(
            workload="synthetic",
            conditions={"baseline": SERVER_BASELINE},
            qps_list=(5_000,),
            extra={"added_delay_us": 300.0})
        result = run_condition(spec.expand()[0])
        # 300 us of added service delay dominates the ~90 us baseline.
        assert result.avg_stats().mean > 250


class TestSerialExecution:
    def test_all_conditions_complete(self):
        spec = small_spec()
        outcome = execute_campaign(spec, max_workers=1)
        assert outcome.ok
        assert len(outcome.outcomes) == spec.size() == 12
        assert len(outcome.executed) == 12
        assert not outcome.hits and not outcome.failures
        assert "12 conditions" in outcome.summary()

    def test_outcomes_in_expansion_order(self):
        spec = small_spec()
        outcome = execute_campaign(spec, max_workers=1)
        assert ([o.spec.content_hash() for o in outcome.outcomes]
                == [c.content_hash() for c in spec.expand()])


class TestParallelExecution:
    def test_parallel_equals_serial_bit_for_bit(self):
        spec = small_spec()
        serial = execute_campaign(spec, max_workers=1)
        parallel = execute_campaign(spec, max_workers=2)
        assert parallel.ok
        assert sample_map(parallel) == sample_map(serial)

    def test_chunked_execution_equals_serial(self):
        spec = small_spec()
        serial = execute_campaign(spec, max_workers=1)
        chunked = execute_campaign(spec, max_workers=2, chunksize=4)
        assert sample_map(chunked) == sample_map(serial)

    def test_bad_chunksize_rejected(self):
        with pytest.raises(ExperimentError):
            CampaignExecutor(chunksize=0)


class TestMemoization:
    def test_second_invocation_is_all_hits(self):
        spec = small_spec()
        with ResultStore(":memory:") as store:
            first = execute_campaign(spec, store=store, max_workers=1)
            second = execute_campaign(spec, store=store, max_workers=1)
        assert len(first.executed) == 12
        assert len(second.hits) == 12 and not second.executed
        assert sample_map(second) == sample_map(first)

    def test_interrupted_campaign_resumes_missing_only(self):
        """Kill-and-rerun: drop half the stored rows (as if the run
        died mid-flight) and check only those re-execute."""
        spec = small_spec()
        with ResultStore(":memory:") as store:
            execute_campaign(spec, store=store, max_workers=1)
            conditions = spec.expand()
            for condition in conditions[::2]:
                store.delete(condition.content_hash())
            resumed = execute_campaign(spec, store=store, max_workers=1)
        assert resumed.ok
        assert len(resumed.executed) == len(conditions[::2])
        assert ({o.spec.content_hash() for o in resumed.hits}
                == {c.content_hash() for c in conditions[1::2]})

    def test_grown_campaign_reuses_overlap(self):
        """Adding QPS points to a swept campaign only runs the new
        cells -- seeds are identity-derived, not position-derived."""
        narrow = small_spec(qps_list=(10_000, 50_000))
        wide = small_spec(qps_list=(10_000, 50_000, 100_000))
        with ResultStore(":memory:") as store:
            execute_campaign(narrow, store=store, max_workers=1)
            outcome = execute_campaign(wide, store=store, max_workers=1)
        assert len(outcome.hits) == narrow.size()
        assert len(outcome.executed) == wide.size() - narrow.size()
        assert all(o.spec.qps == 100_000 for o in outcome.executed)

    def test_parallel_run_persists_to_store(self):
        spec = small_spec(qps_list=(10_000,))
        with ResultStore(":memory:") as store:
            execute_campaign(spec, store=store, max_workers=2)
            assert store.count() == spec.size()


def _broken_builder(seed, client_config, server_config=None, qps=0.0,
                    num_requests=0, **extra):
    raise RuntimeError(f"injected failure at qps={qps:g}")


def _flaky_builder(seed, client_config, server_config=None,
                   qps=0.0, num_requests=0, **extra):
    if qps >= 50_000:
        raise RuntimeError("injected failure above 50K")
    from repro.workloads.memcached import build_memcached_testbed

    return build_memcached_testbed(
        seed, client_config=client_config, server_config=server_config,
        qps=qps, num_requests=num_requests, **extra)


register_builder("broken-test", _broken_builder, replace=True)
register_builder("flaky-test", _flaky_builder, replace=True)


class TestFailureIsolation:
    def test_one_failure_does_not_kill_the_campaign(self):
        spec = small_spec(workload="flaky-test",
                          clients={"LP": LP_CLIENT})
        with ResultStore(":memory:") as store:
            outcome = execute_campaign(spec, store=store, max_workers=1)
            assert not outcome.ok
            # qps 10K succeeds, 50K and 100K fail, per condition.
            assert len(outcome.executed) == 2
            assert len(outcome.failures) == 4
            assert all("injected failure" in o.error
                       for o in outcome.failures)
            # Failures are not persisted: they retry next invocation.
            assert store.count() == 2
            retry = execute_campaign(spec, store=store, max_workers=1)
            assert len(retry.hits) == 2
            assert len(retry.failures) == 4

    def test_fail_fast_inline_reraises_the_original_error(self):
        spec = small_spec(workload="broken-test", qps_list=(10_000,),
                          clients={"LP": LP_CLIENT})
        with pytest.raises(RuntimeError, match="injected failure"):
            execute_campaign(spec, max_workers=1, fail_fast=True)

    def test_studies_fail_fast_with_the_builder_error(self):
        """The figure studies must keep their pre-campaign fail-fast
        contract: a broken cell raises immediately, original type."""
        from repro.analysis.figures import _run_grid

        with pytest.raises(RuntimeError, match="injected failure"):
            _run_grid("broken-test",
                      {"SMToff": server_with_smt(False)},
                      qps_list=(10_000,), runs=2, num_requests=60,
                      base_seed=0, clients={"LP": LP_CLIENT})

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="test builders only exist in this process")
    def test_fail_fast_pool_raises_experiment_error(self):
        spec = small_spec(workload="broken-test",
                          clients={"LP": LP_CLIENT})
        with pytest.raises(ExperimentError, match="injected failure"):
            execute_campaign(spec, max_workers=2, fail_fast=True)

    def test_raise_on_failure_lists_conditions(self):
        spec = small_spec(workload="broken-test", qps_list=(10_000,),
                          clients={"LP": LP_CLIENT})
        outcome = execute_campaign(spec, max_workers=1)
        with pytest.raises(ExperimentError, match="LP-SMToff"):
            outcome.raise_on_failure()

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="test builders only exist in this process")
    def test_worker_failures_are_captured_in_pool_mode(self):
        spec = small_spec(workload="flaky-test",
                          clients={"LP": LP_CLIENT})
        outcome = execute_campaign(spec, max_workers=2)
        assert len(outcome.executed) == 2
        assert len(outcome.failures) == 4


class TestProgress:
    def test_callback_sees_every_condition(self):
        spec = small_spec(qps_list=(10_000, 50_000))
        events = []

        def progress(outcome, completed, total):
            events.append((outcome.status, completed, total))

        with ResultStore(":memory:") as store:
            execute_campaign(spec, store=store, max_workers=1,
                             progress=progress)
            execute_campaign(spec, store=store, max_workers=1,
                             progress=progress)
        first, second = events[:8], events[8:]
        assert [c for _, c, _ in first] == list(range(1, 9))
        assert all(t == 8 for _, _, t in first)
        assert all(status == "done" for status, _, _ in first)
        assert all(status == "hit" for status, _, _ in second)
