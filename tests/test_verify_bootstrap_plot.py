"""Tests for host verification, bootstrap CIs and ASCII charts."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import ascii_chart, chart_from_grid
from repro.config.presets import HP_CLIENT, LP_CLIENT
from repro.errors import StatisticsError
from repro.host.tuner import HostTuner
from repro.host.verify import verify_host
from repro.stats.bootstrap import (
    bootstrap_ci,
    bootstrap_median_ci,
    bootstrap_p99_ci,
)
from repro.stats.ci import nonparametric_median_ci


class TestVerifyHost:
    def test_fresh_host_matches_lp(self, small_fake_fs):
        """A default Skylake host is exactly the LP configuration
        (modulo the boot-time tickless knob, which verify skips)."""
        report = verify_host(small_fake_fs, LP_CLIENT)
        assert report.ok, report.render()
        assert "OK" in report.render()

    def test_fresh_host_diverges_from_hp(self, small_fake_fs):
        report = verify_host(small_fake_fs, HP_CLIENT)
        assert not report.ok
        knobs = {m.knob for m in report.mismatches}
        assert "C-states" in knobs
        assert "Frequency Governor" in knobs
        assert "Uncore Frequency" in knobs

    def test_tuned_host_matches_runtime_knobs(self, small_fake_fs):
        """After applying HP, all runtime-observable knobs match
        except the driver (a boot-time change)."""
        HostTuner(small_fake_fs).apply_config(HP_CLIENT)
        report = verify_host(small_fake_fs, HP_CLIENT)
        knobs = {m.knob for m in report.mismatches}
        assert knobs == {"Frequency Driver"}  # needs the reboot

    def test_drift_detected(self, small_fake_fs):
        """Someone flips SMT between runs: verify catches it."""
        from repro.host.sysfs import CpuSysfs
        CpuSysfs(small_fake_fs).set_smt(False)
        report = verify_host(small_fake_fs, LP_CLIENT)
        assert not report.ok
        assert any(m.knob == "SMT" for m in report.mismatches)
        assert "DIVERGES" in report.render()


class TestBootstrap:
    def test_median_ci_contains_median(self, rng):
        samples = rng.lognormal(3.0, 0.5, size=60)
        interval = bootstrap_median_ci(samples, rng=rng)
        assert interval.contains(float(np.median(samples)))
        assert interval.kind == "bootstrap"

    def test_agrees_with_order_statistic_ci(self, rng):
        """On normal-ish data the two non-parametric CIs should be
        similar."""
        samples = rng.normal(100, 5, size=100)
        bootstrap = bootstrap_median_ci(samples, rng=rng)
        order = nonparametric_median_ci(samples)
        assert abs(bootstrap.lower - order.lower) < 2.0
        assert abs(bootstrap.upper - order.upper) < 2.0

    def test_p99_ci_contains_p99(self, rng):
        samples = rng.exponential(10.0, size=200)
        interval = bootstrap_p99_ci(samples, rng=rng)
        assert interval.contains(float(np.percentile(samples, 99)))

    def test_custom_statistic(self, rng):
        samples = rng.normal(50, 3, size=80)
        interval = bootstrap_ci(
            samples, statistic=lambda v: float(np.mean(v)), rng=rng)
        assert interval.contains(float(np.mean(samples)))

    def test_width_shrinks_with_sample_size(self, rng):
        small = bootstrap_median_ci(rng.normal(100, 5, size=20),
                                    rng=rng)
        large = bootstrap_median_ci(rng.normal(100, 5, size=500),
                                    rng=rng)
        assert large.width < small.width

    def test_deterministic_with_default_rng(self, rng):
        samples = rng.normal(100, 5, size=50)
        a = bootstrap_median_ci(samples)
        b = bootstrap_median_ci(samples)
        assert a.lower == b.lower and a.upper == b.upper

    def test_invalid_inputs(self, rng):
        samples = rng.normal(size=20)
        with pytest.raises(StatisticsError):
            bootstrap_ci(samples, confidence=1.0)
        with pytest.raises(StatisticsError):
            bootstrap_ci(samples, resamples=10)


class TestAsciiChart:
    def test_chart_contains_all_elements(self):
        series = {
            "LP": [(1.0, 10.0), (2.0, 20.0)],
            "HP": [(1.0, 5.0), (2.0, 6.0)],
        }
        text = ascii_chart(series, title="demo", y_label="us")
        assert "demo" in text
        assert "legend:" in text
        assert "* LP" in text and "o HP" in text
        assert "x: [1, 2]" in text

    def test_single_point_series(self):
        text = ascii_chart({"only": [(1.0, 1.0)]})
        assert "legend:" in text

    def test_empty_input_rejected(self):
        with pytest.raises(StatisticsError):
            ascii_chart({})
        with pytest.raises(StatisticsError):
            ascii_chart({"empty": []})

    def test_tiny_plot_rejected(self):
        with pytest.raises(StatisticsError):
            ascii_chart({"a": [(0, 0)]}, width=2, height=2)

    def test_chart_from_grid(self):
        from repro.analysis.figures import memcached_study
        grid = memcached_study(knob="smt", qps_list=(50_000,),
                               runs=3, num_requests=80)
        text = chart_from_grid(grid, "avg")
        assert "LP-SMToff" in text
