"""Property-based tests (hypothesis) on core invariants."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import LP_CLIENT
from repro.hardware.core import SimCore
from repro.hardware.cstates import CStateGovernor
from repro.hardware.frequency import FrequencyModel
from repro.host.filesystem import format_cpu_list, parse_cpu_list
from repro.parameters import DEFAULT_PARAMETERS
from repro.sim.engine import Simulator
from repro.stats.ci import nonparametric_median_ci, parametric_mean_ci
from repro.stats.descriptive import describe
from repro.stats.repetitions import parametric_repetitions
from repro.units import work_cycles_us

finite_floats = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False,
    allow_infinity=False)

sample_lists = st.lists(finite_floats, min_size=8, max_size=200)


class TestCiProperties:
    @given(sample_lists)
    @settings(max_examples=60, deadline=None)
    def test_nonparametric_ci_contains_median(self, samples):
        interval = nonparametric_median_ci(samples)
        assert interval.lower <= float(np.median(samples)) \
            <= interval.upper

    @given(sample_lists)
    @settings(max_examples=60, deadline=None)
    def test_nonparametric_bounds_are_sample_values(self, samples):
        interval = nonparametric_median_ci(samples)
        values = set(samples) | {float(np.median(samples))}
        assert interval.lower in values
        assert interval.upper in values

    @given(sample_lists)
    @settings(max_examples=60, deadline=None)
    def test_ci_invariant_under_permutation(self, samples):
        rng = np.random.default_rng(0)
        shuffled = list(samples)
        rng.shuffle(shuffled)
        a = nonparametric_median_ci(samples)
        b = nonparametric_median_ci(shuffled)
        assert a.lower == b.lower and a.upper == b.upper

    @given(sample_lists, st.floats(min_value=0.1, max_value=1e3))
    @settings(max_examples=60, deadline=None)
    def test_ci_scales_with_data(self, samples, factor):
        base = nonparametric_median_ci(samples)
        scaled = nonparametric_median_ci(
            [s * factor for s in samples])
        assert scaled.lower == pytest.approx(
            base.lower * factor, rel=1e-9)
        assert scaled.upper == pytest.approx(
            base.upper * factor, rel=1e-9)

    @given(st.lists(finite_floats, min_size=2, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_parametric_ci_contains_mean(self, samples):
        interval = parametric_mean_ci(samples)
        assert interval.lower <= float(np.mean(samples)) \
            <= interval.upper


class TestRepetitionProperties:
    @given(st.lists(st.floats(min_value=1.0, max_value=1e4,
                              allow_nan=False),
                    min_size=3, max_size=100),
           st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_parametric_repetitions_positive(self, samples, error):
        assert parametric_repetitions(samples, error_pct=error) >= 1

    @given(st.lists(st.floats(min_value=1.0, max_value=1e4,
                              allow_nan=False),
                    min_size=3, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_smaller_error_never_needs_fewer_runs(self, samples):
        strict = parametric_repetitions(samples, error_pct=0.5)
        loose = parametric_repetitions(samples, error_pct=2.0)
        assert strict >= loose


class TestDescribeProperties:
    @given(sample_lists)
    @settings(max_examples=60, deadline=None)
    def test_summary_ordering(self, samples):
        stats = describe(samples)
        assert stats.minimum <= stats.median <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.p95 <= stats.p99 <= stats.maximum
        assert stats.std >= 0


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False),
                    min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestHardwareProperties:
    @given(st.floats(min_value=0.0, max_value=1e7, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_wake_latency_bounded_by_deepest_state(self, gap):
        governor = CStateGovernor(DEFAULT_PARAMETERS, LP_CLIENT)
        decision = governor.select(gap)
        assert 0.0 <= decision.wake_latency_us <= 133.0
        assert decision.wake_latency_us <= max(gap, 0.0)

    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=50.0, allow_nan=False)),
        min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_core_timeline_monotone(self, events):
        """Arrivals sorted -> finishes are non-decreasing and never
        precede arrivals."""
        core = SimCore(DEFAULT_PARAMETERS, LP_CLIENT)
        time = 0.0
        last_finish = 0.0
        for gap, work in events:
            time += gap
            occupancy = core.handle_event(time, work)
            assert occupancy.finish_us >= time
            assert occupancy.finish_us >= last_finish
            assert occupancy.start_us >= time
            assert occupancy.work_us > 0
            last_finish = occupancy.finish_us

    @given(st.floats(min_value=0.8, max_value=3.0),
           st.floats(min_value=0.01, max_value=1e4))
    @settings(max_examples=80, deadline=None)
    def test_work_scaling_monotone_in_frequency(self, freq, work):
        slow = work_cycles_us(work, 2.2, max(0.8, freq - 0.1))
        fast = work_cycles_us(work, 2.2, freq)
        assert fast <= slow + 1e-9

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_frequency_within_hardware_bounds(self, utilization):
        model = FrequencyModel(DEFAULT_PARAMETERS, LP_CLIENT)
        interval = DEFAULT_PARAMETERS.governor_interval_us
        model.account_busy(utilization * interval)
        decision = model.evaluate(interval)
        assert (DEFAULT_PARAMETERS.min_freq_ghz - 1e-9
                <= decision.freq_ghz
                <= DEFAULT_PARAMETERS.turbo_freq_ghz + 1e-9)


class TestCpuListProperties:
    @given(st.sets(st.integers(min_value=0, max_value=500),
                   max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_format_parse_roundtrip(self, cpus):
        formatted = format_cpu_list(cpus)
        assert parse_cpu_list(formatted) == sorted(cpus)
