"""Tests for lifecycle tracing: spans, bit-identity, Chrome export."""

import json
from dataclasses import replace

import pytest

from repro.api import experiment
from repro.obs import (
    Tracer,
    chrome_trace,
    latency_breakdown,
    render_breakdown_table,
    validate_chrome_trace,
    write_chrome_trace,
)


def _plan(trace, seed=17, num_requests=400, workload="memcached"):
    return (experiment(workload).client("LP")
            .load(qps=50_000, num_requests=num_requests)
            .policy(runs=1, base_seed=seed, trace=trace)
            .build())


class TestTracer:
    def test_span_and_instant_recording(self):
        tracer = Tracer()
        tracer.span("service", 1.0, 3.0, request_id=7, track="srv")
        tracer.instant("lb.dispatch", 5.0, request_id=7, track="lb")
        assert len(tracer) == 2
        assert tracer.counts() == {"service": 1, "lb.dispatch": 1}
        assert len(tracer.spans_for_request(7)) == 2
        assert tracer.spans_named("service")[0][1:3] == (1.0, 3.0)

    def test_span_cap_counts_dropped(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            tracer.span("s", 0.0, 1.0, request_id=i, track="t")
        assert len(tracer) == 2
        assert tracer.dropped == 3


class TestBitIdentity:
    def test_traced_run_is_bit_identical(self):
        baseline = _plan(trace=False).testbed(17).run()
        traced_testbed = _plan(trace=True).testbed(17)
        traced = traced_testbed.run()
        assert replace(traced, obs_metrics=()) == baseline
        assert len(traced_testbed.sim.obs.tracer) > 0

    def test_traced_experiment_samples_match(self):
        base = _plan(trace=False).run()
        traced = _plan(trace=True).run()
        assert base.avg_samples() == traced.avg_samples()
        assert base.p99_samples() == traced.p99_samples()


class TestLatencyReconstruction:
    @pytest.fixture(scope="class")
    def traced(self):
        testbed = _plan(trace=True).testbed(17)
        testbed.run()
        return testbed

    def test_request_spans_reconstruct_latency_exactly(self, traced):
        tracer = traced.sim.obs.tracer
        samples = traced.generator.samples
        for request in samples.measured_requests():
            assert tracer.request_latency_us(
                request.request_id) == request.measured_latency_us

    def test_every_request_has_full_lifecycle(self, traced):
        tracer = traced.sim.obs.tracer
        counts = tracer.counts()
        for name in ("client.send", "net.out", "service",
                     "net.in", "client.recv", "request"):
            assert counts[name] == 400, name


class TestChromeExport:
    @pytest.fixture(scope="class")
    def tracer(self):
        testbed = _plan(trace=True).testbed(17)
        testbed.run()
        return testbed.sim.obs.tracer

    def test_payload_validates(self, tracer):
        payload = chrome_trace(tracer, label="test")
        count = validate_chrome_trace(payload)
        # One X event per span plus the metadata events.
        assert count > len(tracer)
        assert payload["displayTimeUnit"] == "ms"

    def test_written_file_is_valid_json(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path), label="test")
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) > 0

    def test_validation_rejects_malformed_events(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        bad_phase = {"traceEvents": [
            {"name": "x", "ph": "?", "pid": 0, "tid": 0, "ts": 0.0}]}
        with pytest.raises(ValueError, match="ph"):
            validate_chrome_trace(bad_phase)
        negative_dur = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": 0, "tid": 0,
             "ts": 0.0, "dur": -1.0}]}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(negative_dur)

    def test_breakdown_table_renders(self, tracer):
        breakdown = latency_breakdown(tracer)
        assert breakdown["request"]["count"] == 400
        table = render_breakdown_table(
            breakdown, breakdown["request"]["total_us"])
        assert "stage" in table and "% of req" in table
        assert "service" in table
