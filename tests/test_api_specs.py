"""Tests for the repro.api spec layer: validation, round-trips,
content-hash stability, fluent construction and sweeps."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.api import (
    ExperimentPlan,
    HardwareSpec,
    LoadSpec,
    RunPolicy,
    WorkloadSpec,
    experiment,
)
from repro.config.presets import (
    HP_CLIENT,
    LP_CLIENT,
    SERVER_BASELINE,
    server_with_smt,
)
from repro.errors import SpecValidationError


def small_plan(**policy):
    return (experiment("memcached")
            .client(LP_CLIENT)
            .load(qps=50_000, num_requests=80)
            .policy(runs=2, **policy)
            .build())


#: A representative spread of plans for round-trip/hash tests: every
#: workload, both clients, a server variant, workload parameters, a
#: custom warmup, and non-default policies.
PLAN_GRID = {
    "memcached-lp": lambda: small_plan(),
    "memcached-hp-smt": lambda: (
        experiment("memcached")
        .client(HP_CLIENT)
        .server(server_with_smt(True), label="SMTon")
        .load(qps=100_000, num_requests=120)
        .policy(runs=3, base_seed=77, label="HP-SMTon")
        .build()),
    "hdsearch": lambda: (
        experiment("hdsearch")
        .client("HP")
        .load(qps=1_500, num_requests=60, warmup_fraction=0.2)
        .build()),
    "socialnetwork": lambda: (
        experiment("socialnetwork")
        .client("LP")
        .load(qps=200, num_requests=50)
        .policy(runs=1)
        .build()),
    "synthetic-delay": lambda: (
        experiment("synthetic", added_delay_us=200)
        .client("LP")
        .load(qps=5_000, num_requests=60)
        .policy(runs=2, base_seed=5)
        .build()),
}


class TestWorkloadSpec:
    def test_unknown_workload_did_you_mean(self):
        with pytest.raises(SpecValidationError,
                           match="did you mean 'memcached'"):
            WorkloadSpec.create("memcachd")

    def test_unknown_workload_lists_registry(self):
        with pytest.raises(SpecValidationError, match="registered:"):
            WorkloadSpec.create("quake3")

    def test_unknown_parameter_names_valid_keys(self):
        with pytest.raises(
                SpecValidationError,
                match="valid parameters: added_delay_us"):
            WorkloadSpec.create("synthetic", addeddelay=5)

    def test_parameter_did_you_mean(self):
        with pytest.raises(SpecValidationError,
                           match="did you mean 'added_delay_us'"):
            WorkloadSpec.create("synthetic", added_delay=5)

    def test_workload_without_params_rejects_any(self):
        with pytest.raises(SpecValidationError,
                           match="unknown parameter 'added_delay_us'"):
            WorkloadSpec.create("memcached", added_delay_us=5.0)

    def test_int_params_normalize_to_float(self):
        a = WorkloadSpec.create("synthetic", added_delay_us=200)
        b = WorkloadSpec.create("synthetic", added_delay_us=200.0)
        assert a == b
        assert a.param_dict() == {"added_delay_us": 200.0}

    def test_type_errors_are_named(self):
        with pytest.raises(SpecValidationError, match="must be float"):
            WorkloadSpec.create("synthetic", added_delay_us="fast")

    def test_minimum_enforced(self):
        with pytest.raises(SpecValidationError, match=">= 0"):
            WorkloadSpec.create("synthetic", added_delay_us=-1.0)


class TestLoadSpec:
    def test_bad_qps_rejected(self):
        with pytest.raises(SpecValidationError):
            LoadSpec(qps=0)

    def test_bad_num_requests_rejected(self):
        with pytest.raises(SpecValidationError):
            LoadSpec(qps=100, num_requests=0)

    def test_bad_warmup_rejected(self):
        with pytest.raises(SpecValidationError):
            LoadSpec(qps=100, warmup_fraction=1.0)

    def test_unknown_generator_rejected_at_plan_level(self):
        with pytest.raises(SpecValidationError,
                           match="drives load with 'mutilate'"):
            experiment("memcached").load(generator="wrk2").build()

    def test_workload_generator_accepted_and_normalized(self):
        """Naming the workload's own generator is the same plan as
        the default -- one content hash, not two."""
        explicit = experiment("memcached").load(generator="mutilate").build()
        implicit = experiment("memcached").build()
        assert explicit == implicit
        assert explicit.content_hash() == implicit.content_hash()


class TestHardwareSpec:
    def test_preset_names_resolve(self):
        spec = HardwareSpec(client="LP", server="baseline")
        assert spec.client == LP_CLIENT
        assert spec.server == SERVER_BASELINE

    def test_labels_default_to_config_names(self):
        spec = HardwareSpec(client=HP_CLIENT)
        assert spec.client_label == "HP"
        assert spec.server_label == SERVER_BASELINE.name


class TestRunPolicy:
    def test_seed_schedule(self):
        assert RunPolicy(runs=3, base_seed=10).seed_schedule() == \
            (10, 11, 12)

    def test_bad_runs_rejected(self):
        with pytest.raises(SpecValidationError):
            RunPolicy(runs=0)


class TestRunPolicyObservability:
    def test_defaults_are_unobserved(self):
        policy = RunPolicy()
        assert policy.sink == "columnar"
        assert policy.trace is False
        assert policy.observed is False
        assert policy.observability() is None

    def test_unknown_sink_did_you_mean(self):
        with pytest.raises(SpecValidationError,
                           match="did you mean 'columnar'"):
            RunPolicy(sink="columner")

    def test_default_to_dict_omits_obs_fields(self):
        # Hash/store-key stability: pre-observability plans must keep
        # their exact serialized form.
        payload = RunPolicy(runs=2, base_seed=3).to_dict()
        assert "sink" not in payload
        assert "trace" not in payload

    def test_non_default_fields_round_trip(self):
        policy = RunPolicy(sink="streaming", trace=True)
        payload = policy.to_dict()
        assert payload["sink"] == "streaming"
        assert payload["trace"] is True
        assert RunPolicy.from_dict(payload) == policy

    def test_observability_builds_fresh_contexts(self):
        policy = RunPolicy(sink="streaming", trace=True)
        first, second = policy.observability(), policy.observability()
        assert first is not second
        assert first.tracing and first.sink_name == "streaming"

    def test_builder_threads_sink_and_trace(self):
        plan = small_plan(sink="streaming", trace=True)
        assert plan.policy.sink == "streaming"
        assert plan.policy.trace is True
        assert plan.policy.observed is True

    def test_obs_fields_do_not_change_default_hash(self):
        # Explicitly passing the defaults serializes identically, so
        # existing content hashes (and store keys) stay byte-stable.
        base = small_plan()
        explicit = small_plan(sink="columnar", trace=False)
        assert explicit.content_hash() == base.content_hash()


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(PLAN_GRID))
    def test_json_round_trip_is_identity(self, name):
        plan = PLAN_GRID[name]()
        assert ExperimentPlan.from_json(plan.to_json()) == plan

    @pytest.mark.parametrize("name", sorted(PLAN_GRID))
    def test_round_trip_preserves_hash(self, name):
        plan = PLAN_GRID[name]()
        rebuilt = ExperimentPlan.from_dict(
            json.loads(json.dumps(plan.to_dict())))
        assert rebuilt.content_hash() == plan.content_hash()

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecValidationError):
            ExperimentPlan.from_json("{not json")

    def test_missing_section_rejected(self):
        with pytest.raises(SpecValidationError, match="missing"):
            ExperimentPlan.from_dict({"workload": {"name": "memcached"}})

    def test_misspelled_section_rejected(self):
        """A hand-edited plan with a misspelled section must fail
        loudly, not silently run with the default policy."""
        data = small_plan().to_dict()
        data["run_policy"] = data.pop("policy")
        with pytest.raises(SpecValidationError,
                           match="unknown key.*run_policy"):
            ExperimentPlan.from_dict(data)

    @pytest.mark.parametrize("section,bad_key", [
        ("workload", "parameters"),
        ("load", "warmup"),
        ("hardware", "clientconfig"),
        ("policy", "seed"),
    ])
    def test_misspelled_field_rejected(self, section, bad_key):
        data = small_plan().to_dict()
        data[section][bad_key] = 1
        with pytest.raises(SpecValidationError, match="unknown key"):
            ExperimentPlan.from_dict(data)

    def test_policy_section_may_be_omitted(self):
        data = small_plan().to_dict()
        del data["policy"]
        plan = ExperimentPlan.from_dict(data)
        assert plan.policy == RunPolicy()

    def test_null_labels_mean_default_not_the_string_none(self):
        """JSON null for a label falls back to the config name /
        empty label, it must never become the literal 'None'."""
        data = small_plan().to_dict()
        data["hardware"]["client_label"] = None
        data["hardware"]["server_label"] = None
        data["policy"]["label"] = None
        data["load"]["generator"] = None
        plan = ExperimentPlan.from_dict(data)
        assert plan.hardware.client_label == "LP"
        assert plan.hardware.server_label == SERVER_BASELINE.name
        assert plan.policy.label == ""
        assert plan.load.generator == "default"
        assert plan == small_plan()


class TestContentHash:
    def test_stable_across_instances(self):
        assert small_plan().content_hash() == small_plan().content_hash()

    @pytest.mark.parametrize("mutate", [
        lambda p: p.with_qps(60_000),
        lambda p: p.with_params(),
        lambda p: p.with_client("HP"),
        lambda p: p.with_server(server_with_smt(True)),
        lambda p: p.with_seed(9),
        lambda p: p.with_label("other"),
        lambda p: p.with_load(num_requests=81),
        lambda p: p.with_policy(runs=3),
    ])
    def test_hash_tracks_every_section(self, mutate):
        plan = small_plan()
        changed = mutate(plan)
        if changed == plan:  # with_params() no-op keeps identity
            assert changed.content_hash() == plan.content_hash()
        else:
            assert changed.content_hash() != plan.content_hash()

    def test_stable_across_processes(self):
        """The hash is a store/cache key: it must not depend on
        PYTHONHASHSEED or anything else process-local."""
        plan = PLAN_GRID["synthetic-delay"]()
        src = str(Path(repro.__file__).resolve().parents[1])
        code = ("import sys\n"
                "from repro.api import ExperimentPlan\n"
                "plan = ExperimentPlan.from_json(sys.stdin.read())\n"
                "print(plan.content_hash())\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = src
        env["PYTHONHASHSEED"] = "12345"
        proc = subprocess.run(
            [sys.executable, "-c", code], input=plan.to_json(),
            capture_output=True, text=True, env=env, check=True)
        assert proc.stdout.strip() == plan.content_hash()


class TestFluentBuilder:
    def test_defaults_come_from_the_registry(self):
        plan = experiment("hdsearch").build()
        assert plan.load.qps == 1_000.0
        assert plan.load.num_requests == 1_000
        assert plan.hardware.client == LP_CLIENT
        assert plan.policy.runs == 50

    def test_chaining_returns_the_builder(self):
        builder = experiment("memcached")
        assert builder.client("HP") is builder
        assert builder.load(qps=10_000) is builder
        assert builder.policy(runs=2) is builder

    def test_params_merge(self):
        plan = (experiment("synthetic", added_delay_us=100)
                .params(added_delay_us=300.0)
                .build())
        assert plan.workload.param_dict() == {"added_delay_us": 300.0}

    def test_invalid_workload_fails_on_entry(self):
        with pytest.raises(SpecValidationError):
            experiment("memchached")

    def test_top_level_reexports(self):
        assert repro.experiment is experiment
        assert repro.ExperimentPlan is ExperimentPlan


class TestVariants:
    def test_qps_axis(self):
        plans = small_plan().variants(qps=[10_000, 20_000])
        assert [p.load.qps for p in plans] == [10_000.0, 20_000.0]

    def test_param_axis_with_qps_innermost(self):
        base = (experiment("synthetic")
                .load(qps=5_000, num_requests=40)
                .policy(runs=1).build())
        plans = base.variants(qps=[5_000, 10_000],
                              added_delay_us=[0.0, 100.0])
        assert [(p.workload.param_dict()["added_delay_us"], p.load.qps)
                for p in plans] == [
                    (0.0, 5_000.0), (0.0, 10_000.0),
                    (100.0, 5_000.0), (100.0, 10_000.0)]

    def test_unknown_axis_rejected(self):
        with pytest.raises(SpecValidationError):
            small_plan().variants(bogus_knob=[1, 2])

    def test_no_axes_is_self(self):
        plans = small_plan().variants()
        assert plans == [small_plan()]
