"""Tests for the network link and the request record."""

import numpy as np
import pytest

from repro.net.link import US_PER_KB_10GBE, NetworkLink
from repro.server.request import Request


class TestNetworkLink:
    def test_deterministic_without_rng(self, params):
        link = NetworkLink(params)
        assert link.sample_latency_us() == pytest.approx(
            params.network_one_way_us)

    def test_mean_matches_configuration(self, params, rng):
        link = NetworkLink(params, rng)
        draws = np.array([link.sample_latency_us() for _ in range(5000)])
        assert draws.mean() == pytest.approx(
            params.network_one_way_us, rel=0.05)

    def test_all_samples_positive(self, params, rng):
        link = NetworkLink(params, rng)
        assert all(link.sample_latency_us() > 0 for _ in range(500))

    def test_payload_adds_serialization(self, params):
        link = NetworkLink(params)
        plain = link.sample_latency_us(0.0)
        heavy = link.sample_latency_us(10.0)
        assert heavy - plain == pytest.approx(10.0 * US_PER_KB_10GBE)

    def test_custom_mean(self, params):
        link = NetworkLink(params, mean_latency_us=50.0)
        assert link.mean_latency_us == 50.0
        assert link.sample_latency_us() == pytest.approx(50.0)

    def test_invalid_mean_rejected(self, params):
        with pytest.raises(ValueError):
            NetworkLink(params, mean_latency_us=0.0)

    def test_negative_payload_ignored(self, params):
        link = NetworkLink(params)
        assert link.sample_latency_us(-5.0) == pytest.approx(
            params.network_one_way_us)


class TestRequest:
    def make_request(self):
        return Request(
            request_id=1, size_kb=0.5,
            intended_send_us=100.0, actual_send_us=110.0,
            server_arrival_us=125.0, server_departure_us=140.0,
            client_nic_us=155.0, measured_complete_us=200.0)

    def test_send_error(self):
        assert self.make_request().send_error_us == pytest.approx(10.0)

    def test_true_latency_is_nic_minus_send(self):
        assert self.make_request().true_latency_us == pytest.approx(45.0)

    def test_measured_latency_is_generator_minus_send(self):
        assert self.make_request().measured_latency_us == pytest.approx(
            90.0)

    def test_client_overhead_is_the_difference(self):
        request = self.make_request()
        assert request.client_overhead_us == pytest.approx(
            request.measured_latency_us - request.true_latency_us)

    def test_validate_accepts_monotone_timeline(self):
        self.make_request().validate()

    def test_validate_rejects_time_travel(self):
        request = self.make_request()
        request.client_nic_us = 130.0  # before server departure
        with pytest.raises(ValueError):
            request.validate()
