"""Golden-value tests: the columnar pipeline is behavior-preserving.

The pinned numbers below were captured from the *seed* (pre-columnar)
implementation -- heap of Event objects, list-of-Request samples,
per-accessor ``sorted()`` -- at commit ``a703f58``, one seed per
workload.  The refactored pipeline (tuple-entry event heap, batch
arrival scheduling, :class:`~repro.telemetry.SampleColumns` telemetry)
must reproduce them **bit-identically**: same event order, same RNG
draw order, same float arithmetic, same stable sort.

If one of these fails after an intentional semantic change, recapture
the constants in the same commit that changes them -- and say so in
the commit message, because every stored campaign result silently
changes meaning at that point.
"""

import pytest

from repro.cluster import ClusterSpec, build_cluster_testbed
from repro.config.presets import LP_CLIENT, SERVER_BASELINE
from repro.graph import build_graph_testbed, graph_preset
from repro.loadgen.interarrival import ArrivalSpec
from repro.workloads.registry import builder_by_name

#: workload -> (qps, num_requests, avg_us, p99_us, true_avg_us,
#:              true_p99_us, measured_requests); root seed 1234.
GOLDEN = {
    "memcached": (
        50_000, 400,
        92.05270124287591, 110.83425088804036,
        40.85396398552536, 53.6832444905004, 360),
    "hdsearch": (
        1_000, 200,
        575.3908164276042, 835.5742187417833,
        424.0981663402566, 681.5484531545002, 180),
    "synthetic": (
        10_000, 400,
        95.93226054954478, 117.42871368345781,
        44.283576243771556, 55.07284266632111, 360),
}

GOLDEN_SEED = 1234


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
@pytest.mark.parametrize("workload", sorted(GOLDEN))
def test_golden_run_metrics_bit_identical(workload, engine):
    qps, num_requests, avg, p99, true_avg, true_p99, requests = \
        GOLDEN[workload]
    testbed = builder_by_name(workload)(
        seed=GOLDEN_SEED,
        client_config=LP_CLIENT,
        server_config=SERVER_BASELINE,
        qps=qps,
        num_requests=num_requests,
        engine=engine)
    metrics = testbed.run()
    # Exact equality on purpose: the acceptance bar is bit-identity
    # with the object-path implementation, not approximate agreement.
    assert metrics.avg_us == avg
    assert metrics.p99_us == p99
    assert metrics.true_avg_us == true_avg
    assert metrics.true_p99_us == true_p99
    assert metrics.requests == requests


@pytest.mark.parametrize("workload", sorted(GOLDEN))
def test_golden_runs_are_reproducible_within_session(workload):
    """Two fresh testbeds with the same seed agree with each other."""
    qps, num_requests = GOLDEN[workload][:2]
    build = builder_by_name(workload)

    def run_once():
        return build(
            seed=GOLDEN_SEED, client_config=LP_CLIENT,
            server_config=SERVER_BASELINE, qps=qps,
            num_requests=num_requests).run()

    first, second = run_once(), run_once()
    assert first == second


# ---------------------------------------------------------------- clusters
#: scenario -> (workload, cluster, qps, num_requests, avg_us, p99_us,
#:              true_avg_us, true_p99_us, measured_requests); captured
#: from the cluster subsystem's introducing commit at root seed 1234.
#: Per-node load matches the single-server goldens above (memcached:
#: 4 x 50K aggregate through a round-robin balancer).
CLUSTER_GOLDEN = {
    "memcached-rr4": (
        "memcached", ClusterSpec(nodes=4, lb_policy="round-robin"),
        200_000, 400,
        92.3049036499047, 109.0987004070108,
        40.50920870319649, 49.35850658198505, 360),
    "hdsearch-shard8": (
        "hdsearch", ClusterSpec(shards=8, fanout=4),
        2_000, 200,
        680.5289735565309, 998.0148660926322,
        518.5472492595583, 767.9451078624642, 180),
}


def _cluster_testbed(scenario, engine=None):
    workload, cluster, qps, num_requests = CLUSTER_GOLDEN[scenario][:4]
    return build_cluster_testbed(
        workload, seed=GOLDEN_SEED,
        client_config=LP_CLIENT, server_config=SERVER_BASELINE,
        qps=qps, num_requests=num_requests, cluster=cluster,
        engine=engine)


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
@pytest.mark.parametrize("scenario", sorted(CLUSTER_GOLDEN))
def test_cluster_golden_run_metrics_bit_identical(scenario, engine):
    (_, cluster, _, _, avg, p99, true_avg, true_p99,
     requests) = CLUSTER_GOLDEN[scenario]
    metrics = _cluster_testbed(scenario, engine).run()
    assert metrics.avg_us == avg
    assert metrics.p99_us == p99
    assert metrics.true_avg_us == true_avg
    assert metrics.true_p99_us == true_p99
    assert metrics.requests == requests
    # Per-node telemetry must be present and non-degenerate: every
    # node actually served traffic.
    assert len(metrics.node_utilizations) == max(
        cluster.nodes, cluster.shards)
    assert all(value > 0 for value in metrics.node_utilizations)


@pytest.mark.parametrize("scenario", sorted(CLUSTER_GOLDEN))
def test_cluster_golden_runs_are_reproducible(scenario):
    """Two fresh cluster testbeds with the same seed agree exactly."""
    first = _cluster_testbed(scenario).run()
    second = _cluster_testbed(scenario).run()
    assert first == second


# ------------------------------------------------------------------ graphs
#: scenario -> (workload, graph preset, arrival, qps, num_requests,
#:              avg_us, p99_us, true_avg_us, true_p99_us,
#:              measured_requests, stations); captured from the
#: service-graph subsystem's introducing commit at root seed 1234.
#: The memcached scenario is the acceptance topology: frontend ->
#: 80%-hit cache -> 8 hedged leaf shards under diurnal load; the
#: hdsearch scenario exercises timeout+retry+hedge on the leaf edge.
GRAPH_GOLDEN = {
    "memcached-cached-diurnal": (
        "memcached", "memcached-cached",
        ArrivalSpec(shape="diurnal", period_us=20_000.0,
                    amplitude=0.5),
        50_000, 400,
        105.56126491750965, 156.5235818847902,
        53.86507972703324, 100.02007720743636, 360, 10),
    "hdsearch-graph": (
        "hdsearch", "hdsearch-graph", None,
        1_000, 200,
        1016.164189830196, 1505.7923993622496,
        865.8561225538912, 1355.7923993622496, 180, 4),
}


def _graph_testbed(scenario, engine=None):
    workload, preset, arrival, qps, num_requests = \
        GRAPH_GOLDEN[scenario][:5]
    return build_graph_testbed(
        workload, seed=GOLDEN_SEED,
        client_config=LP_CLIENT, server_config=SERVER_BASELINE,
        qps=qps, num_requests=num_requests,
        graph=graph_preset(preset), arrival=arrival, engine=engine)


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
@pytest.mark.parametrize("scenario", sorted(GRAPH_GOLDEN))
def test_graph_golden_run_metrics_bit_identical(scenario, engine):
    (avg, p99, true_avg, true_p99, requests,
     stations) = GRAPH_GOLDEN[scenario][5:]
    metrics = _graph_testbed(scenario, engine).run()
    assert metrics.avg_us == avg
    assert metrics.p99_us == p99
    assert metrics.true_avg_us == true_avg
    assert metrics.true_p99_us == true_p99
    assert metrics.requests == requests
    # Per-station telemetry spans every tier of the DAG.
    assert len(metrics.node_utilizations) == stations


@pytest.mark.parametrize("scenario", sorted(GRAPH_GOLDEN))
def test_graph_golden_runs_are_reproducible(scenario):
    """Two fresh graph testbeds with the same seed agree exactly."""
    first = _graph_testbed(scenario).run()
    second = _graph_testbed(scenario).run()
    assert first == second
