"""Tests for normality testing and iid diagnostics."""

import numpy as np
import pytest

from repro.errors import InsufficientSamplesError, StatisticsError
from repro.stats.iid import (
    autocorrelation,
    autocorrelation_profile,
    lag_pairs,
    turning_point_test,
)
from repro.stats.normality import (
    frequency_chart,
    render_frequency_chart,
    shapiro_wilk,
)


class TestShapiroWilk:
    def test_normal_data_passes(self, rng):
        result = shapiro_wilk(rng.normal(100, 10, size=50))
        assert result.normal
        assert result.verdict == "pass"

    def test_heavily_skewed_data_fails(self, rng):
        result = shapiro_wilk(rng.lognormal(0, 1.5, size=50))
        assert not result.normal
        assert result.verdict == "fail"

    def test_constant_data_fails_hard(self):
        result = shapiro_wilk([5.0] * 10)
        assert not result.normal
        assert result.p_value == 0.0

    def test_too_few_samples(self):
        with pytest.raises(InsufficientSamplesError):
            shapiro_wilk([1.0, 2.0])

    def test_invalid_alpha(self, rng):
        with pytest.raises(StatisticsError):
            shapiro_wilk(rng.normal(size=10), alpha=0.0)

    def test_alpha_threshold_respected(self, rng):
        samples = rng.normal(size=50)
        result = shapiro_wilk(samples, alpha=0.05)
        assert result.normal == (result.p_value >= 0.05)


class TestFrequencyChart:
    def test_counts_cover_all_samples(self, rng):
        samples = rng.normal(100, 3, size=50)
        rows = frequency_chart(samples, num_bins=10)
        assert sum(count for _, count, _ in rows) == 50

    def test_median_bin_marked_exactly_once_or_twice(self, rng):
        samples = rng.normal(100, 3, size=50)
        rows = frequency_chart(samples)
        marked = [row for row in rows if row[2]]
        # The median sits on a bin edge at most once; 1-2 marks.
        assert 1 <= len(marked) <= 2

    def test_more_bin_collects_tail(self, rng):
        samples = np.concatenate([
            rng.normal(100, 1, size=48), [500.0, 900.0]])
        rows = frequency_chart(samples)
        assert rows[-1][0] == "More"
        assert rows[-1][1] == 2

    def test_render_contains_median_marker(self, rng):
        text = render_frequency_chart(rng.normal(100, 3, size=50))
        assert "median" in text

    def test_invalid_bins(self, rng):
        with pytest.raises(StatisticsError):
            frequency_chart(rng.normal(size=10), num_bins=1)


class TestAutocorrelation:
    def test_iid_samples_near_zero(self, rng):
        samples = rng.normal(size=2000)
        assert abs(autocorrelation(samples, lag=1)) < 0.1

    def test_trending_samples_positive(self):
        samples = np.arange(100, dtype=float)
        assert autocorrelation(samples, lag=1) > 0.9

    def test_alternating_samples_negative(self):
        samples = np.array([1.0, -1.0] * 50)
        assert autocorrelation(samples, lag=1) < -0.9

    def test_bounds(self, rng):
        for _ in range(10):
            value = autocorrelation(rng.normal(size=100), lag=3)
            assert -1.0 <= value <= 1.0

    def test_constant_series_is_zero(self):
        assert autocorrelation([3.0] * 50, lag=1) == 0.0

    def test_invalid_lag(self, rng):
        with pytest.raises(StatisticsError):
            autocorrelation(rng.normal(size=10), lag=0)
        with pytest.raises(StatisticsError):
            autocorrelation(rng.normal(size=10), lag=10)

    def test_profile_length(self, rng):
        profile = autocorrelation_profile(rng.normal(size=50),
                                          max_lag=5)
        assert len(profile) == 5


class TestLagPairs:
    def test_pair_structure(self):
        pairs = lag_pairs([1.0, 2.0, 3.0, 4.0], lag=1)
        assert pairs == [(1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]

    def test_lag_two(self):
        pairs = lag_pairs([1.0, 2.0, 3.0, 4.0], lag=2)
        assert pairs == [(1.0, 3.0), (2.0, 4.0)]


class TestTurningPoint:
    def test_random_sequence_passes(self, rng):
        looks_random, p_value = turning_point_test(rng.normal(size=500))
        assert looks_random
        assert p_value > 0.05

    def test_monotone_sequence_fails(self):
        looks_random, p_value = turning_point_test(
            np.arange(200, dtype=float))
        assert not looks_random
        assert p_value < 0.01

    def test_alternating_sequence_fails(self):
        samples = np.array([1.0, -1.0] * 100)
        looks_random, _ = turning_point_test(samples)
        assert not looks_random
