"""Property-based tests for the bootstrap CI and remaining helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.bootstrap import bootstrap_ci, bootstrap_median_ci

samples_strategy = st.lists(
    st.floats(min_value=0.1, max_value=1e5, allow_nan=False,
              allow_infinity=False),
    min_size=5, max_size=80)


class TestBootstrapProperties:
    @given(samples_strategy)
    @settings(max_examples=40, deadline=None)
    def test_point_always_inside(self, samples):
        interval = bootstrap_median_ci(samples)
        assert interval.lower <= interval.point <= interval.upper

    @given(samples_strategy)
    @settings(max_examples=40, deadline=None)
    def test_bounds_within_sample_range(self, samples):
        interval = bootstrap_median_ci(samples)
        assert min(samples) <= interval.lower
        assert interval.upper <= max(samples)

    @given(samples_strategy,
           st.floats(min_value=0.5, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_scale_equivariance(self, samples, factor):
        base = bootstrap_median_ci(samples)
        scaled = bootstrap_median_ci([s * factor for s in samples])
        assert scaled.point == pytest.approx(
            base.point * factor, rel=1e-9)
        assert scaled.lower == pytest.approx(
            base.lower * factor, rel=1e-6)
        assert scaled.upper == pytest.approx(
            base.upper * factor, rel=1e-6)

    @given(samples_strategy)
    @settings(max_examples=30, deadline=None)
    def test_mean_statistic_contains_mean(self, samples):
        interval = bootstrap_ci(
            samples, statistic=lambda v: float(np.mean(v)))
        assert interval.contains(float(np.mean(samples)))

    def test_coverage_on_known_distribution(self):
        """~95% of bootstrap CIs must contain the true median."""
        true_median = 10.0 * np.log(2.0)
        rng = np.random.default_rng(1)
        hits = 0
        trials = 120
        for _ in range(trials):
            samples = rng.exponential(10.0, size=60)
            interval = bootstrap_median_ci(
                samples, rng=rng, )
            if interval.contains(true_median):
                hits += 1
        assert hits / trials > 0.85


class TestVectorizedDefaultPath:
    def test_matches_per_resample_loop_exactly(self):
        """The (resamples, n) index-matrix fast path must consume the
        generator identically to the per-resample loop it replaced."""
        samples = list(np.random.default_rng(3).lognormal(4.0, 0.5, 40))
        resamples = 500
        array = np.asarray(samples, dtype=float)
        rng = np.random.default_rng(0)
        n = array.size
        estimates = np.empty(resamples)
        for index in range(resamples):
            estimates[index] = np.median(array[rng.integers(0, n, size=n)])
        lower = float(np.quantile(estimates, 0.025))
        upper = float(np.quantile(estimates, 0.975))
        interval = bootstrap_ci(samples, resamples=resamples)
        assert interval.lower == min(lower, interval.point)
        assert interval.upper == max(upper, interval.point)

    def test_callable_statistic_keeps_loop_fallback(self):
        samples = list(np.random.default_rng(5).exponential(10.0, 50))
        default = bootstrap_ci(samples)
        explicit = bootstrap_ci(
            samples, statistic=lambda v: float(np.median(v)))
        # Same statistic, same seed, same draw order: identical CI.
        assert default.lower == explicit.lower
        assert default.upper == explicit.upper
