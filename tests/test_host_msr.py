"""Tests for MSR access (turbo 0x1A0, uncore 0x620)."""

import pytest

from repro.errors import MsrError
from repro.host.msr import (
    MSR_MISC_ENABLE,
    MSR_UNCORE_RATIO,
    TURBO_DISENGAGE_BIT,
    MsrInterface,
)


@pytest.fixture
def msr(small_fake_fs):
    return MsrInterface(small_fake_fs)


class TestRawAccess:
    def test_read_default_value(self, msr):
        assert msr.read(0, MSR_MISC_ENABLE) == 0x850089

    def test_write_read_roundtrip(self, msr):
        msr.write(1, MSR_MISC_ENABLE, 0xDEADBEEF)
        assert msr.read(1, MSR_MISC_ENABLE) == 0xDEADBEEF

    def test_write_all_covers_online_cpus(self, msr):
        msr.write_all(MSR_UNCORE_RATIO, 0x1818)
        for cpu in range(4):
            assert msr.read(cpu, MSR_UNCORE_RATIO) == 0x1818

    def test_missing_register_raises(self, msr):
        with pytest.raises(MsrError):
            msr.read(0, 0x999)

    def test_out_of_range_value_rejected(self, msr):
        with pytest.raises(MsrError):
            msr.write(0, MSR_MISC_ENABLE, 1 << 64)
        with pytest.raises(MsrError):
            msr.write(0, MSR_MISC_ENABLE, -1)


class TestTurbo:
    def test_enabled_by_default(self, msr):
        assert msr.turbo_enabled()

    def test_disable_sets_bit38(self, msr):
        msr.set_turbo(False)
        assert not msr.turbo_enabled()
        value = msr.read(0, MSR_MISC_ENABLE)
        assert (value >> TURBO_DISENGAGE_BIT) & 1 == 1

    def test_reenable_clears_bit38(self, msr):
        msr.set_turbo(False)
        msr.set_turbo(True)
        assert msr.turbo_enabled()

    def test_disable_preserves_other_bits(self, msr):
        before = msr.read(0, MSR_MISC_ENABLE)
        msr.set_turbo(False)
        after = msr.read(0, MSR_MISC_ENABLE)
        assert after == before | (1 << TURBO_DISENGAGE_BIT)


class TestUncore:
    def test_default_limits(self, msr):
        min_mhz, max_mhz = msr.uncore_ratio_limits()
        assert (min_mhz, max_mhz) == (700, 2900)

    def test_set_fixed(self, msr):
        msr.set_uncore_fixed(2400)
        assert msr.uncore_ratio_limits() == (2400, 2400)

    def test_set_dynamic(self, msr):
        msr.set_uncore_dynamic(1200, 2400)
        assert msr.uncore_ratio_limits() == (1200, 2400)

    def test_fixed_rejects_non_ratio_frequency(self, msr):
        with pytest.raises(MsrError):
            msr.set_uncore_fixed(2450)

    def test_fixed_rejects_zero(self, msr):
        with pytest.raises(MsrError):
            msr.set_uncore_fixed(0)

    def test_dynamic_rejects_inverted_range(self, msr):
        with pytest.raises(MsrError):
            msr.set_uncore_dynamic(2400, 1200)
