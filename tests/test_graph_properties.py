"""Property tests (hypothesis) for service-graph invariants.

The graph subsystem's four laws:

* request conservation -- every request injected into an arbitrary
  composition of cache tiers, resilient edges and fanout joins
  completes exactly once, with stragglers draining and nothing
  double-counted across hit/miss, retry and hedge paths;
* the empirical cache hit rate converges to the configured ratio;
* hedged completion time equals the min of the launched attempts;
* nonhomogeneous arrival trains are bit-identical to their
  scalar-thinning reference (same chunked draw protocol, scalar
  draws).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import FanoutService
from repro.graph import CacheTier, ResilientDispatcher
from repro.graph.spec import ResiliencePolicy
from repro.graph.testbed import GraphStage
from repro.loadgen.interarrival import (
    DiurnalInterarrival,
    FlashCrowdInterarrival,
)
from repro.server.request import Request
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


class CountingBackend:
    """Fixed-delay service that counts attempts and completions."""

    def __init__(self, sim, delay_us):
        self._sim = sim
        self.delay_us = delay_us
        self.served = 0

    def submit(self, request, done_fn, *ctx):
        self.served += 1

        def finish(job):
            job.service_us += self.delay_us
            job.server_departure_us = self._sim.now
            done_fn(job, *ctx)

        self._sim.post(self.delay_us, finish, request)

    def utilization(self):
        return 0.0

    def expected_service_us(self):
        return self.delay_us


#: strategy: one tier blueprint -- (kind, parameters)
tier_blueprints = st.one_of(
    st.tuples(st.just("plain"),
              st.floats(min_value=1.0, max_value=50.0)),
    st.tuples(st.just("cache"),
              st.floats(min_value=0.0, max_value=1.0)),
    st.tuples(st.just("retry"),
              st.floats(min_value=5.0, max_value=40.0)),
    st.tuples(st.just("hedge"),
              st.floats(min_value=5.0, max_value=40.0)),
    st.tuples(st.just("fanout"),
              st.integers(min_value=2, max_value=4)),
)


def build_random_dag(sim, blueprints, seed):
    """Stack the drawn tier blueprints into one DAG front-to-back."""
    streams = RandomStreams(seed)
    service = CountingBackend(sim, 10.0)
    for index, (kind, param) in enumerate(reversed(blueprints)):
        if kind == "plain":
            service = GraphStage(
                CountingBackend(sim, param), service,
                name=f"t{index}")
        elif kind == "cache":
            service = CacheTier(
                sim, service, hit_ratio=param, hit_service_us=2.0,
                fill_penalty_us=3.0,
                rng=(streams.stream(f"cache{index}")
                     if 0.0 < param < 1.0 else None),
                name=f"cache{index}")
        elif kind == "retry":
            service = ResilientDispatcher(
                sim, service,
                ResiliencePolicy(timeout_us=param, max_retries=2,
                                 backoff_us=1.0),
                name=f"retry{index}")
        elif kind == "hedge":
            service = ResilientDispatcher(
                sim, service,
                ResiliencePolicy(hedge_after_us=param, hedges=1),
                name=f"hedge{index}")
        else:  # fanout
            shards = [CountingBackend(sim, 5.0 + 3.0 * i)
                      for i in range(param)]
            fan = FanoutService(sim, shards)
            service = GraphStage(fan, service, name=f"fan{index}")
    return service


class TestRequestConservation:
    @given(st.lists(tier_blueprints, min_size=1, max_size=4),
           st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=60, deadline=None)
    def test_every_request_completes_exactly_once(
            self, blueprints, seed):
        sim = Simulator()
        entry = build_random_dag(sim, blueprints, seed)
        done = []
        count = 25
        for i in range(count):
            request = Request(request_id=i, size_kb=2.0)
            sim.post(float(i), entry.submit, request, done.append)
        sim.run()
        assert len(done) == count
        assert sorted(r.request_id for r in done) == list(range(count))
        # Conservation holds *after* the event queue fully drains:
        # straggler attempts landed without re-completing anyone.
        assert sim.live_pending_events == 0


class TestCacheConvergence:
    @given(st.floats(min_value=0.05, max_value=0.95),
           st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_empirical_hit_rate_converges(self, ratio, seed):
        sim = Simulator()
        cache = CacheTier(
            sim, CountingBackend(sim, 5.0), hit_ratio=ratio,
            rng=RandomStreams(seed).stream("cache"))
        trials = 600
        for i in range(trials):
            cache.submit(Request(request_id=i, size_kb=1.0),
                         lambda _req: None)
            sim.run()
        assert cache.lookups == trials
        # 5-sigma binomial envelope: false-failure odds ~ 1e-6.
        tolerance = 5.0 * math.sqrt(ratio * (1 - ratio) / trials)
        assert abs(cache.hit_rate - ratio) <= tolerance


class TestHedgeCompletion:
    @given(st.floats(min_value=1.0, max_value=100.0),
           st.floats(min_value=1.0, max_value=100.0),
           st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_completion_is_min_of_launched_attempts(
            self, primary_us, hedge_us, hedge_after_us):
        sim = Simulator()
        delays = iter([primary_us, hedge_us])

        class Scheduled(CountingBackend):
            def submit(self, request, done_fn, *ctx):
                self.delay_us = next(delays)
                CountingBackend.submit(self, request, done_fn, *ctx)

        backend = Scheduled(sim, primary_us)
        edge = ResilientDispatcher(
            sim, backend,
            ResiliencePolicy(hedge_after_us=hedge_after_us, hedges=1))
        done = []
        root = Request(request_id=0, size_kb=1.0)
        edge.submit(root, done.append)
        sim.run()
        assert len(done) == 1
        if primary_us <= hedge_after_us:
            expected = primary_us
            assert edge.hedges == 0
        else:
            expected = min(primary_us, hedge_after_us + hedge_us)
            assert edge.hedges == 1
        assert root.server_departure_us == pytest.approx(expected)


def scalar_thinning_reference(process, rng, size):
    """Independent scalar-draw thinning under the chunked protocol:
    each round draws ``remaining`` candidate gaps one by one, then
    ``remaining`` acceptance uniforms one by one, and scans in order
    -- the documented draw discipline of ``sample_train_us``."""
    gaps = []
    t = last = 0.0
    peak = process._peak_qps
    peak_mean = process._peak_mean_us
    while len(gaps) < size:
        need = size - len(gaps)
        candidates = [float(rng.standard_exponential()) * peak_mean
                      for _ in range(need)]
        accepts = [float(rng.random()) for _ in range(need)]
        for gap, u in zip(candidates, accepts):
            t += gap
            if u * peak <= process._rate_qps(t):
                gaps.append(t - last)
                last = t
    return np.array(gaps)


class TestThinningBitIdentity:
    @given(st.floats(min_value=100.0, max_value=50_000.0),
           st.floats(min_value=500.0, max_value=100_000.0),
           st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_diurnal_train_matches_scalar_reference(
            self, qps, period_us, amplitude, seed):
        make = lambda: DiurnalInterarrival(
            qps, period_us=period_us, amplitude=amplitude)
        train = make().sample_train_us(
            RandomStreams(seed).stream("arrival"), 64)
        reference = scalar_thinning_reference(
            make(), RandomStreams(seed).stream("arrival"), 64)
        assert np.array_equal(train, reference)
        assert np.all(train > 0)

    @given(st.floats(min_value=100.0, max_value=50_000.0),
           st.floats(min_value=0.0, max_value=50_000.0),
           st.floats(min_value=100.0, max_value=50_000.0),
           st.floats(min_value=1.0, max_value=10.0),
           st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_flash_crowd_train_matches_scalar_reference(
            self, qps, start_us, duration_us, factor, seed):
        make = lambda: FlashCrowdInterarrival(
            qps, spike_start_us=start_us,
            spike_duration_us=duration_us, spike_factor=factor)
        train = make().sample_train_us(
            RandomStreams(seed).stream("arrival"), 64)
        reference = scalar_thinning_reference(
            make(), RandomStreams(seed).stream("arrival"), 64)
        assert np.array_equal(train, reference)
        assert np.all(train > 0)
