"""Shared fixtures for the test suite, plus the test-health gate."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config.presets import HP_CLIENT, LP_CLIENT, SERVER_BASELINE
from repro.host.filesystem import FakeFilesystem, make_skylake_tree
from repro.parameters import DEFAULT_PARAMETERS
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


# ------------------------------------------------------------ test health
#: Per-test wall-clock budget in seconds; 0/unset disables the gate.
#: CI's test-health job sets REPRO_MAX_TEST_SECONDS=30: any single
#: test exceeding it *fails*, so slow tests can't creep into the
#: suite unnoticed.
_MAX_TEST_SECONDS = float(
    os.environ.get("REPRO_MAX_TEST_SECONDS", "0") or 0)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    # Every phase is budgeted -- slow creep must not hide in fixture
    # setup or teardown.
    outcome = yield
    report = outcome.get_result()
    if (_MAX_TEST_SECONDS
            and report.passed
            and call.duration > _MAX_TEST_SECONDS):
        report.outcome = "failed"
        report.longrepr = (
            f"{item.nodeid} exceeded the {_MAX_TEST_SECONDS:g}s "
            f"per-test budget in its {report.when} phase: took "
            f"{call.duration:.1f}s (REPRO_MAX_TEST_SECONDS gate)")


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    """Deterministic random streams."""
    return RandomStreams(seed=42)


@pytest.fixture
def rng() -> np.random.Generator:
    """One deterministic numpy generator."""
    return np.random.default_rng(7)


@pytest.fixture
def fake_fs() -> FakeFilesystem:
    """A fake Skylake host filesystem (40 CPUs, intel_pstate)."""
    return FakeFilesystem(make_skylake_tree())


@pytest.fixture
def small_fake_fs() -> FakeFilesystem:
    """A fake host with 4 CPUs for cheaper iteration."""
    return FakeFilesystem(make_skylake_tree(num_cpus=4))


@pytest.fixture
def params():
    """The default Skylake parameter set."""
    return DEFAULT_PARAMETERS


@pytest.fixture
def lp_client():
    """The LP (default/low-power) client configuration."""
    return LP_CLIENT


@pytest.fixture
def hp_client():
    """The HP (tuned) client configuration."""
    return HP_CLIENT


@pytest.fixture
def server_baseline():
    """The server baseline configuration."""
    return SERVER_BASELINE
