"""Integration tests: the paper's findings must hold in the simulation.

These are the acceptance tests of the reproduction -- each asserts the
*shape* of a paper claim (who wins, roughly by how much), not absolute
microsecond values.
"""

import pytest

from repro.config.presets import HP_CLIENT, LP_CLIENT
from repro.config.presets import server_with_c1e, server_with_smt
from repro.core.experiment import run_experiment
from repro.workloads.hdsearch import build_hdsearch_testbed
from repro.workloads.memcached import build_memcached_testbed
from repro.workloads.socialnetwork import build_socialnetwork_testbed
from repro.workloads.synthetic import build_synthetic_testbed

RUNS = 8
REQUESTS = 400


def memcached(client, qps, server=None, seed=0):
    kwargs = {"server_config": server} if server is not None else {}
    return run_experiment(
        lambda s: build_memcached_testbed(
            s, client_config=client, qps=qps, num_requests=REQUESTS,
            **kwargs),
        runs=RUNS, base_seed=seed)


class TestFinding1:
    """Client configuration affects end-to-end measurements and the
    measured speedup of a server-side feature."""

    def test_lp_measures_memcached_much_higher_than_hp(self):
        for qps in (10_000, 300_000):
            lp = memcached(LP_CLIENT, qps).avg_samples().mean()
            hp = memcached(HP_CLIENT, qps).avg_samples().mean()
            # Paper: LP 80%-150% above HP.
            assert 1.5 < lp / hp < 2.8, f"qps={qps}: {lp / hp:.2f}"

    def test_ground_truth_is_client_independent(self):
        lp = memcached(LP_CLIENT, 100_000).true_avg_samples().mean()
        hp = memcached(HP_CLIENT, 100_000).true_avg_samples().mean()
        assert lp == pytest.approx(hp, rel=0.1)

    def test_hp_sees_larger_smt_p99_benefit_than_lp(self):
        qps = 400_000
        ratios = {}
        for name, client in (("LP", LP_CLIENT), ("HP", HP_CLIENT)):
            off = memcached(client, qps,
                            server=server_with_smt(False), seed=10)
            on = memcached(client, qps,
                           server=server_with_smt(True), seed=20)
            ratios[name] = (off.p99_samples().mean()
                            / on.p99_samples().mean())
        # Paper: HP measures up to 13% improvement, LP only ~3%.
        assert ratios["HP"] > ratios["LP"]
        assert ratios["HP"] > 1.04


class TestFinding2:
    """The C1E slowdown is visible at low load and its measured size
    depends on the client."""

    def test_c1e_slowdown_visible_at_low_load_for_hp(self):
        off = memcached(HP_CLIENT, 10_000,
                        server=server_with_c1e(False), seed=30)
        on = memcached(HP_CLIENT, 10_000,
                       server=server_with_c1e(True), seed=40)
        slowdown = on.avg_samples().mean() / off.avg_samples().mean()
        # Paper: up to 19% for the HP client.
        assert 1.08 < slowdown < 1.30

    def test_hp_measures_larger_c1e_slowdown_than_lp(self):
        slowdowns = {}
        for name, client in (("LP", LP_CLIENT), ("HP", HP_CLIENT)):
            off = memcached(client, 10_000,
                            server=server_with_c1e(False), seed=50)
            on = memcached(client, 10_000,
                           server=server_with_c1e(True), seed=60)
            slowdowns[name] = (on.avg_samples().mean()
                               / off.avg_samples().mean())
        assert slowdowns["HP"] > slowdowns["LP"]

    def test_c1e_effect_fades_at_high_load(self):
        low_off = memcached(HP_CLIENT, 10_000,
                            server=server_with_c1e(False), seed=70)
        low_on = memcached(HP_CLIENT, 10_000,
                           server=server_with_c1e(True), seed=80)
        high_off = memcached(HP_CLIENT, 500_000,
                             server=server_with_c1e(False), seed=70)
        high_on = memcached(HP_CLIENT, 500_000,
                            server=server_with_c1e(True), seed=80)
        low_slowdown = (low_on.avg_samples().mean()
                        / low_off.avg_samples().mean())
        high_slowdown = (high_on.avg_samples().mean()
                         / high_off.avg_samples().mean())
        assert high_slowdown < low_slowdown


class TestFinding3:
    """Client configuration barely matters for slow services."""

    def test_hdsearch_gap_much_smaller_than_memcached(self):
        memcached_gap = (
            memcached(LP_CLIENT, 100_000).avg_samples().mean()
            / memcached(HP_CLIENT, 100_000).avg_samples().mean())
        hdsearch_lp = run_experiment(
            lambda s: build_hdsearch_testbed(
                s, client_config=LP_CLIENT, qps=1_000,
                num_requests=200),
            runs=RUNS, base_seed=0).avg_samples().mean()
        hdsearch_hp = run_experiment(
            lambda s: build_hdsearch_testbed(
                s, client_config=HP_CLIENT, qps=1_000,
                num_requests=200),
            runs=RUNS, base_seed=0).avg_samples().mean()
        hdsearch_gap = hdsearch_lp / hdsearch_hp
        # Paper: 7-17% for HDSearch vs 80-150% for Memcached.
        assert hdsearch_gap < 1.25
        assert memcached_gap > hdsearch_gap + 0.3

    def test_socialnetwork_gap_is_smallest(self):
        lp = run_experiment(
            lambda s: build_socialnetwork_testbed(
                s, client_config=LP_CLIENT, qps=300, num_requests=200),
            runs=6, base_seed=0).avg_samples().mean()
        hp = run_experiment(
            lambda s: build_socialnetwork_testbed(
                s, client_config=HP_CLIENT, qps=300, num_requests=200),
            runs=6, base_seed=0).avg_samples().mean()
        assert lp / hp < 1.12  # paper: ~5%

    def test_synthetic_gap_decays_with_added_delay(self):
        gaps = []
        for delay in (0.0, 200.0, 400.0):
            lp = run_experiment(
                lambda s, d=delay: build_synthetic_testbed(
                    s, client_config=LP_CLIENT, qps=10_000,
                    added_delay_us=d, num_requests=300),
                runs=6, base_seed=0).avg_samples().mean()
            hp = run_experiment(
                lambda s, d=delay: build_synthetic_testbed(
                    s, client_config=HP_CLIENT, qps=10_000,
                    added_delay_us=d, num_requests=300),
                runs=6, base_seed=0).avg_samples().mean()
            gaps.append(lp / hp)
        assert gaps[0] > gaps[1] > gaps[2]
        assert gaps[0] > 1.5       # paper: up to 2.8x at zero delay
        assert gaps[2] < 1.15      # paper: ~1.02x at 400 us


class TestFinding4:
    """Different client configurations need different repetition
    counts for statistical confidence."""

    def test_lp_needs_more_runs_than_hp_at_low_load(self):
        from repro.stats.repetitions import parametric_repetitions
        lp = memcached(LP_CLIENT, 10_000, seed=90)
        hp = memcached(HP_CLIENT, 10_000, seed=90)
        lp_runs = parametric_repetitions(lp.avg_samples())
        hp_runs = parametric_repetitions(hp.avg_samples())
        # Paper Table IV: LP needs hundreds, HP needs ~1.
        assert lp_runs > 5 * hp_runs

    def test_hp_needs_more_runs_at_high_load_than_low(self):
        from repro.stats.repetitions import parametric_repetitions
        low = memcached(HP_CLIENT, 10_000,
                        server=server_with_smt(False), seed=91)
        high = memcached(HP_CLIENT, 500_000,
                         server=server_with_smt(False), seed=91)
        assert (parametric_repetitions(high.avg_samples())
                > parametric_repetitions(low.avg_samples()))
