"""Batched-vs-scalar bit-identity for the draw-ahead sampling layer.

Every distribution used anywhere in the tree must come out of a
:class:`~repro.sim.sampling.BatchedStream` with the *exact* float
sequence the raw scalar ``numpy.random.Generator`` calls would have
produced -- across refill boundaries, across primitive switches
(reconciliation), and for degenerate block sizes.
"""

import math

import numpy as np
import pytest

from repro.config.presets import LP_CLIENT, SERVER_BASELINE
from repro.hardware.core import SimCore
from repro.parameters import DEFAULT_PARAMETERS
from repro.server.service import (
    BimodalService,
    ExponentialService,
    LognormalService,
)
from repro.sim.random import RandomStreams
from repro.sim.sampling import BatchedStream, as_stream

SEED = 20240917
#: Enough draws to cross an 8192 block boundary.
LONG = 20_000


def fresh():
    return np.random.default_rng(SEED)


def stream(block_size=8192, promote_after=1):
    return BatchedStream(fresh(), block_size=block_size,
                         promote_after=promote_after)


# --------------------------------------------------------------------------
# Per-distribution identity, every block size, across refill boundaries.
@pytest.mark.parametrize("block_size", [1, 2, 8192])
@pytest.mark.parametrize("method,args", [
    ("random", ()),
    ("standard_normal", ()),
    ("standard_exponential", ()),
    ("exponential", (7.25,)),
    ("lognormal", (1.7917594692280558, 0.35)),
    ("normal", (1.0, 0.25)),
    ("uniform", (0.0, 30.0)),
    ("pareto", (1.5,)),
])
def test_distribution_bit_identity(block_size, method, args):
    count = 3 * 8192 + 17 if block_size == 8192 else 300
    scalar_gen = fresh()
    batched = stream(block_size=block_size)
    scalar = [float(getattr(scalar_gen, method)(*args))
              for _ in range(count)]
    served = [getattr(batched, method)(*args) for _ in range(count)]
    assert scalar == served
    # The draws really were served from blocks, not forwarded.
    assert batched.batched_served > 0
    # (the first draw of a run is a scalar forward by design)
    assert batched.blocks_drawn >= count // block_size - 1


def test_bimodal_mixture_bit_identity():
    """The bimodal service model's uniform mixture selector."""
    model = BimodalService(fast_us=4.0, slow_us=40.0, slow_fraction=0.1)
    scalar_gen = fresh()
    batched = stream()
    scalar = [model.sample_service_us(scalar_gen) for _ in range(LONG)]
    served = [model.sample_service_us(batched) for _ in range(LONG)]
    assert scalar == served
    assert batched.batched_served > 0


@pytest.mark.parametrize("model", [
    ExponentialService(6.0),
    LognormalService(6.0, 0.35),
])
def test_service_models_bit_identity(model):
    scalar_gen = fresh()
    batched = stream()
    scalar = [model.sample_service_us(scalar_gen) for _ in range(LONG)]
    served = [model.sample_service_us(batched) for _ in range(LONG)]
    assert scalar == served


# --------------------------------------------------------------------------
# Primitive switches: reconciliation must leave the bit stream exactly
# where scalar consumption would have.
@pytest.mark.parametrize("block_size,promote_after", [
    (1, 1), (2, 1), (16, 1), (8192, 2), (8192, 64),
])
def test_interleaved_primitives_reconcile(block_size, promote_after):
    ops = [
        ("lognormal", (1.5, 0.3)),
        ("random", ()),
        ("exponential", (9.0,)),
        ("normal", (1.0, 0.25)),
        ("pareto", (1.5,)),
        ("uniform", (0.0, 12.0)),
    ]
    # A deterministic but irregular interleaving with runs of every
    # length: op index = floor(i / (1 + i % 7)) % len(ops).
    schedule = [ops[(i * (1 + i % 7)) % len(ops)] for i in range(4_000)]
    scalar_gen = fresh()
    batched = BatchedStream(fresh(), block_size=block_size,
                            promote_after=promote_after)
    scalar = [float(getattr(scalar_gen, m)(*args)) for m, args in schedule]
    served = [getattr(batched, m)(*args) for m, args in schedule]
    assert scalar == served


def test_reconcile_backs_off_on_mixed_streams():
    """A thrashing stream stops promoting after a few reconciles."""
    batched = BatchedStream(fresh(), block_size=8192, promote_after=1)
    for _ in range(5_000):
        batched.standard_normal()
        batched.random()
    assert batched.reconciles <= 12
    # Long after backoff, draws are plain scalar forwards.
    before = batched.scalar_served
    batched.standard_normal()
    batched.random()
    assert batched.scalar_served == before + 2


# --------------------------------------------------------------------------
# Vector trains and the draws_remaining / refill API.
def test_exponential_train_bit_identity():
    scalar_gen = fresh()
    batched = stream(promote_after=1)
    scalar = [float(scalar_gen.exponential(5.0)) for _ in range(100)]
    scalar += list(scalar_gen.standard_exponential(5_000) * 5.0)
    scalar += [float(scalar_gen.exponential(5.0)) for _ in range(100)]
    served = [batched.exponential(5.0) for _ in range(100)]
    served += list(batched.exponential_train(5.0, 5_000))
    served += [batched.exponential(5.0) for _ in range(100)]
    assert scalar == served


def test_lognormal_train_bit_identity():
    scalar_gen = fresh()
    batched = stream(promote_after=1)
    scalar = list(scalar_gen.lognormal(2.0, 0.4, 1_000))
    scalar += [float(scalar_gen.lognormal(2.0, 0.4)) for _ in range(10)]
    served = list(batched.lognormal_train(2.0, 0.4, 1_000))
    served += [batched.lognormal(2.0, 0.4) for _ in range(10)]
    assert scalar == served


def test_draws_remaining_and_refill():
    batched = stream(block_size=64, promote_after=1)
    assert batched.draws_remaining == 0
    available = batched.refill("exponential")
    assert available == 64
    assert batched.draws_remaining == 64
    # refill is idempotent and consumes nothing.
    assert batched.refill("exponential") == 64
    scalar_gen = fresh()
    scalar = [float(scalar_gen.exponential(3.0)) for _ in range(64)]
    served = [batched.next_exponential(3.0) for _ in range(64)]
    assert scalar == served
    assert batched.draws_remaining == 0
    with pytest.raises(ValueError):
        batched.refill("weibull")


def test_next_aliases_match_generator():
    scalar_gen = fresh()
    batched = stream()
    scalar = []
    for _ in range(500):
        scalar.append(float(scalar_gen.exponential(11.0)))
    served = [batched.next_exponential(11.0) for _ in range(500)]
    assert scalar == served
    scalar_gen, batched = fresh(), stream()
    scalar = [float(scalar_gen.lognormal(0.5, 0.2)) for _ in range(500)]
    served = [batched.next_lognormal(0.5, 0.2) for _ in range(500)]
    assert scalar == served
    scalar_gen, batched = fresh(), stream()
    scalar = [float(scalar_gen.random()) for _ in range(500)]
    served = [batched.next_uniform() for _ in range(500)]
    assert scalar == served
    scalar_gen, batched = fresh(), stream()
    scalar = [float(scalar_gen.normal(1.0, 0.25)) for _ in range(500)]
    served = [batched.next_normal(1.0, 0.25) for _ in range(500)]
    assert scalar == served


# --------------------------------------------------------------------------
# Escape hatches.
def test_delegation_flushes_and_stays_in_sync():
    scalar_gen = fresh()
    batched = stream(promote_after=1)
    scalar = [float(scalar_gen.lognormal(1.0, 0.2)) for _ in range(10)]
    scalar.append(float(scalar_gen.integers(0, 1000)))
    scalar += [float(scalar_gen.lognormal(1.0, 0.2)) for _ in range(10)]
    served = [batched.lognormal(1.0, 0.2) for _ in range(10)]
    served.append(float(batched.integers(0, 1000)))
    served += [batched.lognormal(1.0, 0.2) for _ in range(10)]
    assert scalar == served


def test_flush_repositions_the_raw_generator():
    batched = stream(promote_after=1)
    mirror = fresh()
    first = [batched.standard_normal() for _ in range(7)]
    assert first == [float(mirror.standard_normal()) for _ in range(7)]
    batched.flush()
    # After a flush the *raw* generator continues the scalar sequence.
    assert float(batched.generator.standard_normal()) \
        == float(mirror.standard_normal())


def test_as_stream_passthrough():
    assert as_stream(None) is None
    wrapped = as_stream(fresh())
    assert isinstance(wrapped, BatchedStream)
    assert as_stream(wrapped) is wrapped


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        BatchedStream(fresh(), block_size=0)
    with pytest.raises(ValueError):
        BatchedStream(fresh(), promote_after=0)


def test_random_streams_stream_facade_shares_generator():
    streams = RandomStreams(SEED)
    facade = streams.stream("network")
    assert streams.stream("network") is facade
    assert facade.generator is streams.get("network")
    mirror = RandomStreams(SEED).get("network")
    draws = [facade.lognormal(2.7, 0.25) for _ in range(200)]
    assert draws == [float(mirror.lognormal(2.7, 0.25))
                     for _ in range(200)]


# --------------------------------------------------------------------------
# The hot-path twins must stay in lockstep.
def test_handle_event_twins_identical():
    def drive(use_fast):
        core = SimCore(DEFAULT_PARAMETERS, LP_CLIENT,
                       rng=np.random.default_rng(SEED))
        finishes = []
        at = 0.0
        for index in range(300):
            at += 23.0 + (index % 7) * 11.0
            if use_fast:
                finishes.append(core.handle_event_finish_us(
                    at, 1.2, wakes_thread=bool(index % 2)))
            else:
                finishes.append(core.handle_event(
                    at, 1.2, wakes_thread=bool(index % 2)).finish_us)
        return finishes, core.total_busy_us, core.total_wake_us

    assert drive(True) == drive(False)


def test_handle_event_twins_identical_polling():
    def drive(use_fast):
        core = SimCore(DEFAULT_PARAMETERS, SERVER_BASELINE,
                       rng=np.random.default_rng(SEED), polling=True)
        at, finishes = 0.0, []
        for index in range(200):
            at += 5.0 + (index % 11) * 40.0
            if use_fast:
                finishes.append(core.handle_event_finish_us(at, 2.0))
            else:
                finishes.append(core.handle_event(at, 2.0).finish_us)
        return finishes, core.total_busy_us

    assert drive(True) == drive(False)


# --------------------------------------------------------------------------
# Lognormal math.exp equivalence is platform-critical; pin it directly.
def test_lognormal_exp_matches_libm():
    gen_a, gen_b = fresh(), fresh()
    for _ in range(100_000):
        mu, sigma = 1.7917594692280558, 0.35
        assert float(gen_a.lognormal(mu, sigma)) \
            == math.exp(mu + sigma * float(gen_b.standard_normal()))


def test_batched_stats_accessor():
    streams = RandomStreams(SEED)
    facade = streams.stream("network")
    for _ in range(200):
        facade.lognormal(2.7, 0.25)
    stats = streams.batched_stats()
    assert set(stats) == {"network"}
    counters = stats["network"]
    assert counters["batched_served"] + counters["scalar_served"] == 200
    assert counters["blocks_drawn"] >= 1


def test_core_occupancy_value_equality():
    def occupancy():
        core = SimCore(DEFAULT_PARAMETERS, LP_CLIENT,
                       rng=np.random.default_rng(SEED))
        return core.handle_event(10.0, 1.2)

    assert occupancy() == occupancy()
    assert occupancy() != object()


class TestNextIndex:
    """The cluster layer's bounded-index draw (LB picks, shard
    shuffles): one uniform per draw, block-served, exact scalar
    replay."""

    def test_matches_scalar_uniform_formula(self):
        import numpy as np
        from repro.sim.sampling import BatchedStream

        batched = BatchedStream(np.random.default_rng(SEED))
        scalar = np.random.default_rng(SEED)
        for n in (2, 3, 7, 1000):
            for _ in range(50):
                expected = min(int(scalar.random() * n), n - 1)
                assert batched.next_index(n) == expected

    def test_in_range_and_full_coverage(self):
        import numpy as np
        from repro.sim.sampling import BatchedStream

        stream = BatchedStream(np.random.default_rng(SEED))
        seen = {stream.next_index(4) for _ in range(300)}
        assert seen == {0, 1, 2, 3}

    def test_degenerate_sizes_consume_no_draw(self):
        import numpy as np
        from repro.sim.sampling import BatchedStream

        stream = BatchedStream(np.random.default_rng(SEED))
        assert stream.next_index(1) == 0
        assert stream.next_index(0) == 0
        assert stream.batched_served + stream.scalar_served == 0
