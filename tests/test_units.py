"""Tests for repro.units."""


import pytest

from repro import units


class TestTimeHelpers:
    def test_us_is_identity(self):
        assert units.us(3.5) == 3.5

    def test_ms_scales_by_thousand(self):
        assert units.ms(2) == 2000.0

    def test_seconds_scale(self):
        assert units.seconds(1) == 1_000_000.0

    def test_to_ms_roundtrip(self):
        assert units.to_ms(units.ms(7.25)) == pytest.approx(7.25)

    def test_to_seconds_roundtrip(self):
        assert units.to_seconds(units.seconds(0.5)) == pytest.approx(0.5)


class TestRates:
    def test_qps_to_interarrival(self):
        assert units.qps_to_interarrival_us(1_000_000) == pytest.approx(1.0)

    def test_interarrival_to_qps(self):
        assert units.interarrival_us_to_qps(10.0) == pytest.approx(100_000)

    def test_roundtrip(self):
        qps = 123_456.0
        assert units.interarrival_us_to_qps(
            units.qps_to_interarrival_us(qps)) == pytest.approx(qps)

    def test_zero_qps_rejected(self):
        with pytest.raises(ValueError):
            units.qps_to_interarrival_us(0)

    def test_negative_interarrival_rejected(self):
        with pytest.raises(ValueError):
            units.interarrival_us_to_qps(-1.0)


class TestWorkScaling:
    def test_same_frequency_is_identity(self):
        assert units.work_cycles_us(10.0, 2.2, 2.2) == pytest.approx(10.0)

    def test_lower_frequency_takes_longer(self):
        slow = units.work_cycles_us(10.0, 2.2, 0.8)
        assert slow == pytest.approx(27.5)

    def test_higher_frequency_is_faster(self):
        fast = units.work_cycles_us(10.0, 2.2, 3.0)
        assert fast < 10.0

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            units.work_cycles_us(10.0, 2.2, 0.0)

    def test_work_scales_linearly(self):
        one = units.work_cycles_us(1.0, 2.2, 1.1)
        ten = units.work_cycles_us(10.0, 2.2, 1.1)
        assert ten == pytest.approx(10 * one)
