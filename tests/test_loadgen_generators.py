"""Tests for client machines and open/closed-loop generators."""

import pytest

from repro.config.presets import HP_CLIENT, LP_CLIENT, SERVER_BASELINE
from repro.errors import ConfigurationError
from repro.loadgen.base import GeneratorDesign
from repro.loadgen.client_machine import ClientMachine
from repro.loadgen.closed_loop import ClosedLoopGenerator
from repro.loadgen.interarrival import ExponentialInterarrival
from repro.loadgen.open_loop import OpenLoopGenerator
from repro.net.link import NetworkLink
from repro.parameters import DEFAULT_PARAMETERS
from repro.server.service import FixedService
from repro.server.station import ServiceStation


def make_setup(sim, streams, client_config=HP_CLIENT,
               time_sensitive=True, machines=1):
    station = ServiceStation(
        sim, SERVER_BASELINE, FixedService(10.0), workers=4,
        rng=streams.get("service"))
    clients = [
        ClientMachine(sim, client_config, time_sensitive=time_sensitive,
                      rng=streams.get(f"client-{index}"),
                      name=f"client-{index}")
        for index in range(machines)
    ]
    link = NetworkLink(DEFAULT_PARAMETERS, streams.get("network"))
    return station, clients, link


class TestGeneratorDesign:
    def test_describe_matches_paper_wording(self):
        design = GeneratorDesign(loop="open", time_sensitive=True)
        assert design.describe() == "open-loop time-sensitive"
        assert design.interarrival_impl == "block-wait"

    def test_busy_wait_wording(self):
        design = GeneratorDesign(loop="open", time_sensitive=False)
        assert design.describe() == "open-loop time-insensitive"
        assert design.interarrival_impl == "busy-wait"

    def test_invalid_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneratorDesign(loop="weird", time_sensitive=True)


class TestOpenLoop:
    def test_all_requests_complete(self, sim, streams):
        station, clients, link = make_setup(sim, streams)
        generator = OpenLoopGenerator(
            sim, clients, station, link, link,
            ExponentialInterarrival(10_000), streams.get("arrivals"),
            time_sensitive=True, num_requests=50)
        generator.start()
        sim.run()
        assert generator.completed == 50
        assert len(generator.samples) == 50

    def test_timestamps_monotone_per_request(self, sim, streams):
        station, clients, link = make_setup(sim, streams)
        generator = OpenLoopGenerator(
            sim, clients, station, link, link,
            ExponentialInterarrival(10_000), streams.get("arrivals"),
            time_sensitive=True, num_requests=30)
        generator.start()
        sim.run()
        for request in generator.samples.measured_requests():
            request.validate()

    def test_measured_latency_exceeds_true_latency(self, sim, streams):
        station, clients, link = make_setup(sim, streams)
        generator = OpenLoopGenerator(
            sim, clients, station, link, link,
            ExponentialInterarrival(10_000), streams.get("arrivals"),
            time_sensitive=True, num_requests=30)
        generator.start()
        sim.run()
        overheads = generator.samples.client_overheads_us()
        assert (overheads >= 0).all()
        assert overheads.mean() > 0

    def test_round_robin_over_machines(self, sim, streams):
        station, clients, link = make_setup(sim, streams, machines=3)
        generator = OpenLoopGenerator(
            sim, clients, station, link, link,
            ExponentialInterarrival(10_000), streams.get("arrivals"),
            time_sensitive=True, num_requests=30)
        generator.start()
        sim.run()
        assert all(c.requests_sent == 10 for c in clients)

    def test_design_mismatch_rejected(self, sim, streams):
        station, clients, link = make_setup(sim, streams,
                                            time_sensitive=True)
        with pytest.raises(ConfigurationError):
            OpenLoopGenerator(
                sim, clients, station, link, link,
                ExponentialInterarrival(10_000), streams.get("arrivals"),
                time_sensitive=False, num_requests=10)

    def test_on_all_done_fires(self, sim, streams):
        station, clients, link = make_setup(sim, streams)
        generator = OpenLoopGenerator(
            sim, clients, station, link, link,
            ExponentialInterarrival(10_000), streams.get("arrivals"),
            time_sensitive=True, num_requests=5)
        fired = []
        generator.on_all_done(lambda: fired.append(sim.now))
        generator.start()
        sim.run()
        assert len(fired) == 1

    def test_zero_requests_rejected(self, sim, streams):
        station, clients, link = make_setup(sim, streams)
        with pytest.raises(ConfigurationError):
            OpenLoopGenerator(
                sim, clients, station, link, link,
                ExponentialInterarrival(10_000), streams.get("arrivals"),
                time_sensitive=True, num_requests=0)

    def test_busy_wait_sends_exactly_on_time(self, sim, streams):
        """A time-insensitive generator's sends track the schedule
        modulo only the (deterministic-rate) send processing."""
        station, clients, link = make_setup(
            sim, streams, time_sensitive=False)
        generator = OpenLoopGenerator(
            sim, clients, station, link, link,
            ExponentialInterarrival(5_000), streams.get("arrivals"),
            time_sensitive=False, num_requests=20)
        generator.start()
        sim.run()
        errors = generator.samples.send_errors_us()
        # Only the send-path work itself (a few us at most).
        assert errors.max() < 5.0

    def test_block_wait_sends_late(self, sim, streams):
        station, clients, link = make_setup(
            sim, streams, client_config=LP_CLIENT, time_sensitive=True)
        generator = OpenLoopGenerator(
            sim, clients, station, link, link,
            ExponentialInterarrival(5_000), streams.get("arrivals"),
            time_sensitive=True, num_requests=20)
        generator.start()
        sim.run()
        errors = generator.samples.send_errors_us()
        assert errors.mean() > 5.0  # slack + wake + slow work


class TestClosedLoop:
    def test_all_requests_complete(self, sim, streams):
        station, clients, link = make_setup(sim, streams)
        generator = ClosedLoopGenerator(
            sim, clients, station, link, link,
            connections=4, think_time_us=100.0,
            think_rng=streams.get("think"),
            time_sensitive=True, num_requests=40)
        generator.start()
        sim.run()
        assert generator.completed == 40

    def test_outstanding_bounded_by_connections(self, sim, streams):
        """With 1 connection, requests are strictly sequential."""
        station, clients, link = make_setup(sim, streams)
        generator = ClosedLoopGenerator(
            sim, clients, station, link, link,
            connections=1, think_time_us=0.0, think_rng=None,
            time_sensitive=True, num_requests=10)
        generator.start()
        sim.run()
        requests = sorted(generator.samples.measured_requests(),
                          key=lambda r: r.intended_send_us)
        for earlier, later in zip(requests, requests[1:]):
            assert (later.actual_send_us
                    >= earlier.measured_complete_us - 1e-9)

    def test_invalid_connections_rejected(self, sim, streams):
        station, clients, link = make_setup(sim, streams)
        with pytest.raises(ConfigurationError):
            ClosedLoopGenerator(
                sim, clients, station, link, link,
                connections=0, think_time_us=0.0, think_rng=None,
                time_sensitive=True, num_requests=10)

    def test_negative_think_time_rejected(self, sim, streams):
        station, clients, link = make_setup(sim, streams)
        with pytest.raises(ConfigurationError):
            ClosedLoopGenerator(
                sim, clients, station, link, link,
                connections=1, think_time_us=-1.0, think_rng=None,
                time_sensitive=True, num_requests=10)

    def test_design_is_closed_loop(self, sim, streams):
        station, clients, link = make_setup(sim, streams)
        generator = ClosedLoopGenerator(
            sim, clients, station, link, link,
            connections=2, think_time_us=0.0, think_rng=None,
            time_sensitive=True, num_requests=4)
        assert generator.design.loop == "closed"
