"""FanoutService: shard selection, quorum completion, conservation."""

import pytest

from repro.cluster import FanoutService
from repro.errors import ConfigurationError
from repro.net.link import NetworkLink
from repro.server.request import Request
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


class StubShard:
    """A shard with a fixed service delay and full accounting."""

    def __init__(self, sim, delay_us):
        self._sim = sim
        self.delay_us = delay_us
        self.served = 0

    def submit(self, request, done_fn):
        self.served += 1

        def finish(job):
            job.service_us += self.delay_us
            job.server_departure_us = self._sim.now
            done_fn(job)

        self._sim.post(self.delay_us, finish, request)

    def utilization(self):
        return 0.25

    def expected_service_us(self):
        return self.delay_us


def make_fanout(sim, delays, fanout=0, quorum=0, seed=0):
    shards = [StubShard(sim, delay) for delay in delays]
    rng = RandomStreams(seed).stream("fanout")
    service = FanoutService(sim, shards, fanout=fanout,
                            quorum=quorum, rng=rng)
    return service, shards


def run_one(sim, service):
    done = []
    root = Request(request_id=0, size_kb=2.0)
    service.submit(root, done.append)
    sim.run()
    return root, done


class TestConstruction:
    def test_needs_shards(self, sim):
        with pytest.raises(ConfigurationError, match="shard"):
            FanoutService(sim, [])

    def test_fanout_bounds(self, sim):
        with pytest.raises(ConfigurationError, match="fanout"):
            FanoutService(sim, [StubShard(sim, 1.0)], fanout=2)

    def test_quorum_bounds(self, sim):
        shards = [StubShard(sim, 1.0) for _ in range(4)]
        with pytest.raises(ConfigurationError, match="quorum"):
            FanoutService(sim, shards, fanout=2, quorum=3)

    def test_link_count_must_match(self, sim):
        with pytest.raises(ConfigurationError, match="links"):
            FanoutService(sim, [StubShard(sim, 1.0)], links=[None, None])

    def test_partial_fanout_needs_rng(self, sim):
        shards = [StubShard(sim, 1.0) for _ in range(4)]
        with pytest.raises(ConfigurationError, match="rng"):
            FanoutService(sim, shards, fanout=2)


class TestCompletionSemantics:
    def test_all_shard_barrier_completes_on_slowest(self, sim):
        service, _ = make_fanout(sim, [10.0, 50.0, 30.0])
        root, done = run_one(sim, service)
        assert len(done) == 1
        assert root.server_departure_us == 50.0
        assert root.service_us == 50.0

    def test_quorum_completes_at_qth_order_statistic(self, sim):
        service, _ = make_fanout(sim, [40.0, 10.0, 30.0, 20.0],
                                 quorum=2)
        root, done = run_one(sim, service)
        assert len(done) == 1
        # 2nd-fastest shard: sorted latencies [10, 20, 30, 40][1].
        assert root.server_departure_us == 20.0
        assert root.service_us == 20.0

    def test_stragglers_drain_without_double_completion(self, sim):
        service, shards = make_fanout(sim, [5.0, 100.0, 200.0],
                                      quorum=1)
        root, done = run_one(sim, service)
        # sim.run() drained everything: stragglers finished serving
        # but the root completed exactly once, at the fastest shard.
        assert len(done) == 1
        assert service.roots_completed == 1
        assert service.subs_completed == 3
        assert all(shard.served == 1 for shard in shards)
        assert root.server_departure_us == 5.0

    def test_aggregates_max_over_counted_responses_only(self, sim):
        service, _ = make_fanout(sim, [10.0, 20.0, 1_000.0], quorum=2)
        root, _ = run_one(sim, service)
        # The 1000us straggler arrives after the quorum and must not
        # inflate the root's service accounting.
        assert root.service_us == 20.0

    def test_per_shard_links_delay_both_directions(self, sim):
        shards = [StubShard(sim, 10.0)]
        link = NetworkLink(rng=None, mean_latency_us=7.0)
        service = FanoutService(sim, shards, links=[link])
        root, done = run_one(sim, service)
        # rng=None => deterministic mean latency each way, plus the
        # 2.0 KB payload's serialization cost (0.8 us/KB at 10 GbE).
        assert len(done) == 1
        assert root.server_departure_us == pytest.approx(
            10.0 + 2 * (7.0 + 2.0 * 0.8))

    def test_sub_requests_split_payload(self, sim):
        service, shards = make_fanout(sim, [1.0, 1.0, 1.0, 1.0])
        sizes = []
        original = StubShard.submit

        def spy(self, request, done_fn):
            sizes.append(request.size_kb)
            original(self, request, done_fn)

        StubShard.submit = spy
        try:
            run_one(sim, service)
        finally:
            StubShard.submit = original
        assert sizes == [0.5, 0.5, 0.5, 0.5]


class TestShardSelection:
    def test_full_fanout_touches_every_shard_in_order(self, sim):
        service, _ = make_fanout(sim, [1.0] * 5)
        assert service.select_shards() == [0, 1, 2, 3, 4]

    def test_partial_fanout_is_distinct_and_in_range(self, sim):
        service, _ = make_fanout(sim, [1.0] * 8, fanout=3, seed=5)
        for _ in range(50):
            chosen = service.select_shards()
            assert len(chosen) == 3
            assert len(set(chosen)) == 3
            assert all(0 <= index < 8 for index in chosen)

    def test_selection_is_seed_deterministic(self):
        first = make_fanout(Simulator(), [1.0] * 8, fanout=4,
                            seed=9)[0]
        second = make_fanout(Simulator(), [1.0] * 8, fanout=4,
                             seed=9)[0]
        assert ([first.select_shards() for _ in range(20)]
                == [second.select_shards() for _ in range(20)])

    def test_dispatch_counters_conserve_subrequests(self, sim):
        service, shards = make_fanout(sim, [1.0] * 6, fanout=2,
                                      quorum=1, seed=2)
        done = []
        for index in range(30):
            service.submit(Request(request_id=index), done.append)
        sim.run()
        assert len(done) == 30
        assert service.roots_completed == 30
        assert service.subs_issued == 60
        assert service.subs_completed == 60
        assert sum(service.shard_dispatched) == 60
        assert sum(shard.served for shard in shards) == 60


class TestMetrics:
    def test_node_utilizations_per_shard(self, sim):
        service, _ = make_fanout(sim, [1.0, 2.0, 3.0])
        assert service.node_utilizations() == (0.25, 0.25, 0.25)
        assert service.utilization() == pytest.approx(0.25)

    def test_expected_service_us(self, sim):
        service, _ = make_fanout(sim, [10.0, 30.0])
        assert service.expected_service_us() == pytest.approx(20.0)
