"""Tests for the high-level host tuner, cpupower shim and snapshots."""

import pytest

from repro.config.presets import HP_CLIENT, LP_CLIENT, SERVER_BASELINE
from repro.errors import HostToolingError
from repro.host.cpupower import CpupowerShim
from repro.host.filesystem import FakeFilesystem, make_skylake_tree
from repro.host.msr import MsrInterface
from repro.host.snapshot import capture_snapshot
from repro.host.sysfs import CpuSysfs
from repro.host.tuner import FIXED_UNCORE_MHZ, HostTuner


class TestCpupowerShim:
    def test_set_governor_logs_command(self, small_fake_fs):
        shim = CpupowerShim(small_fake_fs)
        shim.frequency_set_governor("performance")
        assert shim.command_log == [
            "cpupower frequency-set -g performance"]
        assert CpuSysfs(small_fake_fs).scaling_governor() == "performance"

    def test_set_fixed_frequency(self, small_fake_fs):
        shim = CpupowerShim(small_fake_fs)
        shim.frequency_set_fixed(2_200_000)
        assert CpuSysfs(small_fake_fs).freq_range_khz() == (
            2_200_000, 2_200_000)

    def test_idle_set_disable(self, small_fake_fs):
        shim = CpupowerShim(small_fake_fs)
        shim.idle_set_disable(3, True)
        assert CpuSysfs(small_fake_fs).cstate_disabled(0, "state3")

    def test_frequency_info(self, small_fake_fs):
        info = CpupowerShim(small_fake_fs).frequency_info()
        assert info["driver"] == "intel_pstate"
        assert info["governor"] == "powersave"


class TestSnapshot:
    def test_capture_reflects_current_state(self, small_fake_fs):
        snapshot = capture_snapshot(small_fake_fs)
        assert snapshot.governor == "powersave"
        assert snapshot.smt_active
        assert snapshot.turbo_enabled
        assert "C6" in snapshot.enabled_cstates

    def test_restore_reverts_runtime_changes(self, small_fake_fs):
        snapshot = capture_snapshot(small_fake_fs)
        sysfs = CpuSysfs(small_fake_fs)
        msr = MsrInterface(small_fake_fs)
        sysfs.set_smt(False)
        sysfs.set_enabled_cstates({"C1"})
        msr.set_turbo(False)
        actions = snapshot.restore(small_fake_fs)
        assert sysfs.smt_active()
        assert msr.turbo_enabled()
        assert "C6" in sysfs.enabled_cstates()
        assert actions


class TestHostTuner:
    def test_hp_plan_covers_all_seven_knobs(self, small_fake_fs):
        # 8 actions: the C-states knob needs both a runtime (cpuidle)
        # and a boot-time (grub ceiling) action.
        plan = HostTuner(small_fake_fs).plan(HP_CLIENT)
        assert len(plan.actions) == 8
        assert plan.needs_reboot  # driver/grub changes are boot-time

    def test_plan_render_mentions_config_name(self, small_fake_fs):
        text = HostTuner(small_fake_fs).plan(HP_CLIENT).render()
        assert "'HP'" in text
        assert "boot-time" in text and "runtime" in text

    def test_apply_hp_disables_cstates(self, small_fake_fs):
        tuner = HostTuner(small_fake_fs)
        result = tuner.apply_config(HP_CLIENT)
        sysfs = CpuSysfs(small_fake_fs)
        assert sysfs.enabled_cstates(0) == ["POLL"]
        assert result.needs_reboot

    def test_apply_hp_pins_uncore(self, small_fake_fs):
        HostTuner(small_fake_fs).apply_config(HP_CLIENT)
        msr = MsrInterface(small_fake_fs)
        assert msr.uncore_ratio_limits() == (
            FIXED_UNCORE_MHZ, FIXED_UNCORE_MHZ)

    def test_apply_hp_sets_idle_poll_in_grub(self, small_fake_fs):
        from repro.host.grub import GrubConfig
        HostTuner(small_fake_fs).apply_config(HP_CLIENT)
        assert GrubConfig(small_fake_fs).cmdline_flags().get(
            "idle") == "poll"

    def test_apply_returns_snapshot(self, small_fake_fs):
        result = HostTuner(small_fake_fs).apply_config(HP_CLIENT)
        assert result.snapshot is not None
        assert result.snapshot.governor == "powersave"

    def test_apply_hp_governor_fails_under_pstate_powersave_only(self):
        """HP wants 'performance'; if the running driver doesn't offer
        it, the tuner must fail loudly rather than half-apply."""
        files = make_skylake_tree(num_cpus=2)
        fs = FakeFilesystem(files)
        for cpu in range(2):
            fs.files[
                f"/sys/devices/system/cpu/cpu{cpu}/cpufreq/"
                f"scaling_available_governors"] = "powersave"
        with pytest.raises(HostToolingError):
            HostTuner(fs).apply_config(HP_CLIENT)

    def test_apply_lp_restores_dynamic_uncore(self, small_fake_fs):
        tuner = HostTuner(small_fake_fs)
        tuner.apply_config(HP_CLIENT)
        tuner.apply_config(LP_CLIENT)
        min_mhz, max_mhz = MsrInterface(
            small_fake_fs).uncore_ratio_limits()
        assert min_mhz < max_mhz

    def test_server_baseline_turbo_off(self, small_fake_fs):
        files = dict(small_fake_fs.files)
        fs = FakeFilesystem(files)
        # The server baseline runs acpi-cpufreq; fake the driver.
        for cpu in range(4):
            base = f"/sys/devices/system/cpu/cpu{cpu}/cpufreq"
            fs.files[f"{base}/scaling_driver"] = "acpi-cpufreq"
        HostTuner(fs).apply_config(SERVER_BASELINE)
        assert not MsrInterface(fs).turbo_enabled()

    def test_snapshot_roundtrip_through_tuner(self, small_fake_fs):
        tuner = HostTuner(small_fake_fs)
        before = capture_snapshot(small_fake_fs)
        result = tuner.apply_config(HP_CLIENT)
        result.snapshot.restore(small_fake_fs)
        after = capture_snapshot(small_fake_fs)
        assert after.enabled_cstates == before.enabled_cstates
        assert after.smt_active == before.smt_active
        assert after.turbo_enabled == before.turbo_enabled
