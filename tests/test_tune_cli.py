"""Tests for the ``repro autotune`` verb and its CLI glue."""

import json

import pytest

from repro.cli import _build_parser, main
from repro.errors import SpecValidationError
from repro.tune import (
    BoolTunable,
    CategoricalTunable,
    FloatRangeTunable,
    IntRangeTunable,
)
from repro.tune.cli import parse_tunable_option, space_from_tunable_args


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestTunableOptionParsing:
    def test_bool_shorthand(self):
        tunable = parse_tunable_option("hardware.server.smt=bool")
        assert isinstance(tunable, BoolTunable)
        assert tunable.field == "hardware.server.smt"

    def test_categorical_list(self):
        tunable = parse_tunable_option(
            "cluster.lb_policy=round-robin,least-loaded")
        assert isinstance(tunable, CategoricalTunable)
        assert tunable.values == ("round-robin", "least-loaded")

    def test_categorical_atoms_are_typed(self):
        tunable = parse_tunable_option("cluster.quorum=1,2,3")
        assert tunable.values == (1, 2, 3)
        cstates = parse_tunable_option(
            "hardware.server.cstates=C1,C1+C1E")
        assert cstates.values == ("C1", ("C1", "C1E"))

    def test_int_range_with_stride(self):
        tunable = parse_tunable_option("cluster.nodes=1..8..2")
        assert isinstance(tunable, IntRangeTunable)
        assert tunable.grid_values() == (1, 3, 5, 7)

    def test_float_range_with_points(self):
        tunable = parse_tunable_option(
            "workload.added_delay_us=0.0..100.0..3")
        assert isinstance(tunable, FloatRangeTunable)
        assert tunable.grid_values() == (0.0, 50.0, 100.0)

    def test_malformed_option_rejected(self):
        with pytest.raises(SpecValidationError, match="FIELD=SPEC"):
            parse_tunable_option("no-equals-sign")
        with pytest.raises(SpecValidationError, match="FIELD=SPEC"):
            parse_tunable_option("=bool")
        with pytest.raises(SpecValidationError, match="range"):
            parse_tunable_option("cluster.nodes=1..2..3..4")

    def test_field_typo_fails_with_did_you_mean(self):
        with pytest.raises(SpecValidationError,
                           match="did you mean 'hardware.server.smt'"):
            parse_tunable_option("hardware.server.smtX=bool")

    def test_empty_option_list_rejected(self):
        with pytest.raises(SpecValidationError, match="--tunable"):
            space_from_tunable_args([])


class TestVerbCoexistence:
    def test_tune_and_autotune_both_registered(self):
        parser = _build_parser()
        tune = parser.parse_args(["tune"])
        assert tune.command == "tune"
        autotune = parser.parse_args(
            ["autotune", "--tunable", "hardware.server.smt=bool"])
        assert autotune.command == "autotune"
        assert autotune.tunable == ["hardware.server.smt=bool"]

    def test_help_texts_cross_reference(self, capsys):
        with pytest.raises(SystemExit):
            main(["tune", "--help"])
        tune_help = capsys.readouterr().out
        assert "repro autotune" in tune_help
        with pytest.raises(SystemExit):
            main(["autotune", "--help"])
        autotune_help = capsys.readouterr().out
        assert "repro tune" in autotune_help


class TestPlanTunableValidation:
    def test_typo_rejected_before_anything_executes(self, capsys):
        code, out, err = run_cli(
            capsys, "plan", "--workload", "memcached",
            "--qps", "50000",
            "--tunable", "hardware.server.smtX=bool")
        assert code == 1
        assert "did you mean 'hardware.server.smt'" in err
        # Validation failed before campaign expansion printed anything.
        assert "campaign" not in out

    def test_valid_space_summarized_in_dry_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "plan", "--workload", "memcached",
            "--qps", "50000",
            "--tunable", "hardware.server.smt=bool",
            "--tunable",
            "hardware.server.frequency_governor=powersave,performance")
        assert code == 0
        assert "tunable space (4 candidates)" in out
        assert "nothing executed" in out

    def test_reserved_field_rejected_with_reason(self, capsys):
        code, _, err = run_cli(
            capsys, "plan", "--workload", "memcached",
            "--qps", "50000", "--tunable", "load.qps=1..2")
        assert code == 1
        assert "sweeps load.qps itself" in err


class TestAutotuneEndToEnd:
    def autotune(self, capsys, tmp_path, *extra):
        return run_cli(
            capsys, "autotune",
            "--tunable", "hardware.server.smt=bool",
            "--tunable",
            "hardware.server.frequency_governor=powersave,performance",
            "--qps", "400000", "800000", "1200000",
            "--requests", "120", "--runs", "2", "--seed", "7",
            "--store", str(tmp_path / "tune.sqlite"), "--quiet",
            *extra)

    def test_grid_finds_performance_governor(self, capsys, tmp_path):
        code, out, _ = self.autotune(capsys, tmp_path)
        assert code == 0
        assert "best:" in out
        assert "frequency_governor = performance" in out
        assert "sensitivity" in out
        assert "store:" in out

    def test_rerun_is_pure_cache_hits(self, capsys, tmp_path):
        self.autotune(capsys, tmp_path)
        code, out, _ = self.autotune(capsys, tmp_path)
        assert code == 0
        assert "12 cached, 0 executed" in out

    def test_json_report_written(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        code, out, _ = self.autotune(capsys, tmp_path,
                                     "--json", str(report))
        assert code == 0
        data = json.loads(report.read_text())
        assert data["driver"] == "grid"
        assert data["best"]["assignment"][
            "hardware.server.frequency_governor"] == "performance"
        assert len(data["trials"]) == 4
        assert data["charged_requests"] <= data["declared_budget"]
        assert "sensitivity" in data

    def test_halving_driver_runs(self, capsys, tmp_path):
        code, out, _ = self.autotune(capsys, tmp_path,
                                     "--search", "halving",
                                     "--budget0", "60")
        assert code == 0
        assert "autotune [halving]" in out
        assert "rung" in out

    def test_no_store_disables_memoization(self, capsys, tmp_path):
        code, out, _ = self.autotune(capsys, tmp_path, "--no-store")
        assert code == 0
        assert "store:" not in out
        assert "0 cached, 12 executed" in out

    def test_space_file_round_trip(self, capsys, tmp_path):
        from repro.tune import SearchSpace

        space = SearchSpace(tunables=(
            BoolTunable(name="smt", field="hardware.server.smt"),))
        space_file = tmp_path / "space.json"
        space_file.write_text(space.to_json())
        code, out, _ = run_cli(
            capsys, "autotune", "--space", str(space_file),
            "--qps", "400000", "--requests", "60", "--runs", "1",
            "--store", str(tmp_path / "s.sqlite"), "--quiet")
        assert code == 0
        assert "best:" in out

    def test_bad_tunable_fails_cleanly(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "autotune", "--tunable", "nonsense=bool",
            "--store", str(tmp_path / "x.sqlite"))
        assert code == 1
        assert "unknown tunable field" in err

    def test_progress_lines_unless_quiet(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "autotune",
            "--tunable", "hardware.server.smt=bool",
            "--qps", "400000", "--requests", "60", "--runs", "1",
            "--store", str(tmp_path / "p.sqlite"))
        assert code == 0
        assert "[1/2]" in out and "[2/2]" in out
