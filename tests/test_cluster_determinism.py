"""Determinism/replay sweep: every workload x topology, full metrics.

Extends the PR-3 cross-process *plan-hash* test to full result
payloads: the same :class:`~repro.api.ExperimentPlan` executed twice
in-process, and once in a subprocess (with a hostile
``PYTHONHASHSEED``), must produce bit-identical metrics -- every
latency float, every per-node utilization -- for every registered
workload on both the single-server and a composed cluster topology
(load balancing + sharding + quorum in one spec).
"""

import json
import os
import subprocess
import sys
from functools import lru_cache
from pathlib import Path

import pytest

import repro
from repro.api import ClusterSpec, experiment
from repro.campaign.serialize import (
    content_hash,
    experiment_result_to_dict,
)
from repro.workloads.registry import registered_workloads

#: The paper's registered workloads.  Named explicitly rather than
#: snapshotting ``registered_workloads()`` at import time: other test
#: modules register throwaway builders (e.g. the executor's
#: ``broken-test``) whose import-order-dependent presence would make
#: this sweep flaky.
WORKLOADS = ("hdsearch", "memcached", "socialnetwork", "synthetic")


def test_sweep_covers_every_paper_workload():
    assert set(WORKLOADS) <= set(registered_workloads())

TOPOLOGIES = {
    "single": ClusterSpec(),
    "cluster": ClusterSpec(nodes=2, shards=2, fanout=2, quorum=1,
                           lb_policy="power-of-two"),
}

#: Per-workload load points small enough for a sweep, busy enough to
#: queue (so the metrics exercise every stochastic component).
QPS = {
    "memcached": 100_000.0,
    "hdsearch": 1_000.0,
    "socialnetwork": 300.0,
    "synthetic": 10_000.0,
}


def make_plan(workload, topology):
    return (experiment(workload)
            .client("LP")
            .load(qps=QPS.get(workload, 1_000.0), num_requests=60)
            .policy(runs=2, base_seed=7)
            .cluster(TOPOLOGIES[topology])
            .build())


#: One service-graph topology rides the same sweep: the acceptance
#: 3-tier memcached graph (frontend -> cache -> hedged shards) on
#: both engines.  The vectorized kernel takes its scalar fallback at
#: graph fronts, so its full payload hash must match the reference
#: engine bit-for-bit.
GRAPH_PRESET = "memcached-cached"
ENGINES = ("reference", "vectorized")


def make_graph_plan(engine):
    return (experiment("memcached")
            .client("LP")
            .load(qps=QPS["memcached"], num_requests=60)
            .policy(runs=2, base_seed=7, engine=engine)
            .graph(GRAPH_PRESET)
            .build())


def result_hash(result):
    """Content hash of the complete serialized result payload."""
    return content_hash(experiment_result_to_dict(result))


@lru_cache(maxsize=None)
def reference_hash(workload, topology):
    return result_hash(make_plan(workload, topology).run())


@lru_cache(maxsize=None)
def graph_reference_hash(engine):
    return result_hash(make_graph_plan(engine).run())


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_replay_in_process_is_bit_identical(workload, topology):
    plan = make_plan(workload, topology)
    replay = plan.run()
    assert result_hash(replay) == reference_hash(workload, topology)
    # The runs really simulated something.
    assert all(run.avg_us > 0 for run in replay.runs)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_cluster_runs_differ_from_single_server(workload):
    """The topology must actually change the simulation -- identical
    hashes would mean the cluster spec is silently ignored."""
    assert (reference_hash(workload, "single")
            != reference_hash(workload, "cluster"))


@pytest.mark.parametrize("engine", ENGINES)
def test_graph_replay_in_process_is_bit_identical(engine):
    plan = make_graph_plan(engine)
    replay = plan.run()
    assert result_hash(replay) == graph_reference_hash(engine)
    assert all(run.avg_us > 0 for run in replay.runs)


def test_graph_engines_agree_bit_for_bit():
    """Vectorized and reference engines must produce identical full
    payloads on the graph topology (scalar fallback at the front)."""
    assert (graph_reference_hash("vectorized")
            == graph_reference_hash("reference"))


def test_graph_runs_differ_from_single_server():
    """The graph must actually change the simulation -- an identical
    hash would mean the graph spec is silently ignored."""
    assert (graph_reference_hash("reference")
            != reference_hash("memcached", "single"))


def test_replay_in_subprocess_is_bit_identical():
    """One child process re-executes every (workload, topology) plan
    -- plus the graph topology on both engines -- and must reproduce
    the parent's full-metrics hashes exactly."""
    combos = [(workload, topology)
              for workload in WORKLOADS
              for topology in sorted(TOPOLOGIES)]
    plans = [make_plan(w, t).to_json() for w, t in combos]
    expected = [reference_hash(w, t) for w, t in combos]
    plans += [make_graph_plan(engine).to_json() for engine in ENGINES]
    expected += [graph_reference_hash(engine) for engine in ENGINES]

    code = (
        "import json, sys\n"
        "from repro.api import ExperimentPlan\n"
        "from repro.campaign.serialize import (\n"
        "    content_hash, experiment_result_to_dict)\n"
        "for text in json.load(sys.stdin):\n"
        "    plan = ExperimentPlan.from_json(text)\n"
        "    payload = experiment_result_to_dict(plan.run())\n"
        "    print(content_hash(payload))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(repro.__file__).resolve().parents[1])
    env["PYTHONHASHSEED"] = "4321"
    proc = subprocess.run(
        [sys.executable, "-c", code], input=json.dumps(plans),
        capture_output=True, text=True, env=env, check=True)
    assert proc.stdout.split() == expected
