"""Failure-injection tests: the library must fail loudly, not drift."""

import pytest

from repro.config.presets import HP_CLIENT, LP_CLIENT
from repro.errors import ExperimentError
from repro.hardware.machine import Machine
from repro.workloads.memcached import build_memcached_testbed


def drop_one_request(testbed, victim_id=3):
    """Inject a lost response: the victim request never completes."""
    original = testbed.generator._measured

    def lossy(machine, request, timestamp_us):
        if request.request_id == victim_id:
            return
        original(machine, request, timestamp_us)

    testbed.generator._measured = lossy


class TestTestbedFailures:
    def test_incomplete_run_detected(self):
        """If a request goes missing (lost packet, wiring bug), run()
        must raise rather than return statistics over a partial
        sample."""
        testbed = build_memcached_testbed(
            seed=1, client_config=HP_CLIENT, qps=50_000,
            num_requests=50)
        drop_one_request(testbed)
        with pytest.raises(ExperimentError):
            testbed.run()

    def test_single_use_enforced_even_after_failure(self):
        testbed = build_memcached_testbed(
            seed=1, client_config=HP_CLIENT, qps=50_000,
            num_requests=50)
        drop_one_request(testbed)
        with pytest.raises(ExperimentError):
            testbed.run()
        with pytest.raises(ExperimentError):
            testbed.run()


class TestMachineFailures:
    def test_core_exhaustion(self):
        machine = Machine("tiny", LP_CLIENT, physical_cores=2)
        machine.new_core()
        machine.new_core()
        with pytest.raises(ValueError):
            machine.new_core()

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            Machine("broken", LP_CLIENT, physical_cores=0)

    def test_describe_mentions_topology(self):
        machine = Machine("box", LP_CLIENT, physical_cores=20)
        text = machine.describe()
        assert "20C/40T" in text  # SMT on -> 40 threads

    def test_smt_off_halves_threads(self):
        machine = Machine("box", LP_CLIENT.with_smt(False),
                          physical_cores=20)
        assert machine.logical_cpus == 20


class TestExperimentFailures:
    def test_builder_exception_propagates(self):
        from repro.core.experiment import run_experiment

        def broken_builder(seed):
            raise RuntimeError("testbed assembly failed")

        with pytest.raises(RuntimeError):
            run_experiment(broken_builder, runs=2)
