"""Tests for run ordering, the report writer and the CLI."""

import pytest

from repro.analysis.figures import memcached_study
from repro.analysis.report import study_report, write_report
from repro.cli import main as cli_main
from repro.config.presets import HP_CLIENT, LP_CLIENT
from repro.core.ordering import build_schedule, run_ordered
from repro.errors import ExperimentError
from repro.workloads.memcached import build_memcached_testbed


class TestSchedule:
    def test_grouped_runs_conditions_back_to_back(self):
        schedule = build_schedule(["A", "B"], runs=3,
                                  strategy="grouped")
        assert schedule == [("A", 0), ("A", 1), ("A", 2),
                            ("B", 0), ("B", 1), ("B", 2)]

    def test_interleaved_alternates(self):
        schedule = build_schedule(["A", "B"], runs=2,
                                  strategy="interleaved")
        assert schedule == [("A", 0), ("B", 0), ("A", 1), ("B", 1)]

    def test_shuffled_is_permutation(self):
        grouped = build_schedule(["A", "B"], runs=5, strategy="grouped")
        shuffled = build_schedule(["A", "B"], runs=5,
                                  strategy="shuffled", seed=1)
        assert sorted(shuffled) == sorted(grouped)
        assert shuffled != grouped

    def test_shuffle_deterministic_by_seed(self):
        a = build_schedule(["A", "B"], runs=5, strategy="shuffled",
                           seed=2)
        b = build_schedule(["A", "B"], runs=5, strategy="shuffled",
                           seed=2)
        assert a == b

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ExperimentError):
            build_schedule(["A"], runs=1, strategy="sorted")

    def test_empty_conditions_rejected(self):
        with pytest.raises(ExperimentError):
            build_schedule([], runs=1)


class TestRunOrdered:
    def builders(self):
        return {
            "LP": lambda seed: build_memcached_testbed(
                seed, client_config=LP_CLIENT, qps=50_000,
                num_requests=100),
            "HP": lambda seed: build_memcached_testbed(
                seed, client_config=HP_CLIENT, qps=50_000,
                num_requests=100),
        }

    def test_all_conditions_get_all_runs(self):
        results = run_ordered(self.builders(), runs=3,
                              strategy="shuffled")
        assert set(results) == {"LP", "HP"}
        assert all(len(runs) == 3 for runs in results.values())

    def test_order_invariance_in_simulation(self):
        """Same seeds, different wall-clock order: identical results
        (the simulator has no cross-run state, unlike real hardware)."""
        grouped = run_ordered(self.builders(), runs=3,
                              strategy="grouped")
        shuffled = run_ordered(self.builders(), runs=3,
                               strategy="shuffled", order_seed=9)
        for condition in ("LP", "HP"):
            a = [m.avg_us for m in grouped[condition]]
            b = [m.avg_us for m in shuffled[condition]]
            assert a == b


class TestReport:
    @pytest.fixture(scope="class")
    def grid(self):
        # 10 runs: enough for the CIs (>= 8) and CONFIRM (>= 10).
        return memcached_study(knob="smt", qps_list=(50_000,),
                               runs=10, num_requests=100)

    def test_report_contains_all_sections(self, grid):
        text = study_report(grid, "SMT study", "SMToff", "SMTon")
        assert "# SMT study" in text
        assert "## Conditions" in text
        assert "## Results" in text
        assert "## Conclusions" in text
        assert "LP-SMToff" in text
        assert "Shapiro-Wilk" in text

    def test_report_without_comparison(self, grid):
        text = study_report(grid, "plain")
        assert "## Conclusions" not in text

    def test_write_report(self, grid, tmp_path):
        path = tmp_path / "report.md"
        write_report(str(path), study_report(grid, "t"))
        assert path.read_text().startswith("# t")


class TestCli:
    def test_recommend(self, capsys):
        assert cli_main(["recommend", "--loop", "open",
                         "--interarrival", "block-wait"]) == 0
        output = capsys.readouterr().out
        assert "Recommendation" in output
        assert "HP" in output

    def test_tune_dry_run(self, capsys):
        assert cli_main(["tune", "--config", "LP"]) == 0
        output = capsys.readouterr().out
        assert "Tuning plan" in output
        assert "dry run" in output

    def test_tune_apply_on_fake_host(self, capsys):
        assert cli_main(["tune", "--config", "HP", "--apply"]) == 0
        assert "applied" in capsys.readouterr().out

    def test_study_small(self, capsys):
        assert cli_main([
            "study", "--workload", "memcached", "--knob", "smt",
            "--qps", "50000", "--runs", "3", "--requests", "80",
        ]) == 0
        output = capsys.readouterr().out
        assert "LP-SMToff" in output
