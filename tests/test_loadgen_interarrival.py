"""Tests for inter-arrival processes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.loadgen.interarrival import (
    DeterministicInterarrival,
    ExponentialInterarrival,
    LognormalInterarrival,
)


class TestExponential:
    def test_mean_matches_rate(self, rng):
        process = ExponentialInterarrival(qps=100_000)
        draws = [process.sample_us(rng) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(10.0, rel=0.05)

    def test_deterministic_without_rng(self):
        assert ExponentialInterarrival(1_000_000).sample_us(None) == 1.0

    def test_qps_exposed(self):
        assert ExponentialInterarrival(5000).qps == 5000

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ExponentialInterarrival(0)


class TestDeterministic:
    def test_constant_gaps(self, rng):
        process = DeterministicInterarrival(qps=10_000)
        draws = {process.sample_us(rng) for _ in range(10)}
        assert draws == {100.0}


class TestLognormal:
    def test_mean_preserved(self, rng):
        process = LognormalInterarrival(qps=10_000, sigma=1.0)
        draws = [process.sample_us(rng) for _ in range(50_000)]
        assert np.mean(draws) == pytest.approx(100.0, rel=0.1)

    def test_burstier_than_exponential(self, rng):
        exp_process = ExponentialInterarrival(10_000)
        log_process = LognormalInterarrival(10_000, sigma=1.5)
        exp_draws = [exp_process.sample_us(rng) for _ in range(20_000)]
        log_draws = [log_process.sample_us(rng) for _ in range(20_000)]
        assert np.std(log_draws) > np.std(exp_draws)

    def test_zero_sigma_deterministic(self, rng):
        process = LognormalInterarrival(10_000, sigma=0.0)
        assert process.sample_us(rng) == pytest.approx(100.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            LognormalInterarrival(10_000, sigma=-1.0)
