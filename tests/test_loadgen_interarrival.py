"""Tests for inter-arrival processes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SpecValidationError
from repro.loadgen.interarrival import (
    ArrivalSpec,
    DeterministicInterarrival,
    DiurnalInterarrival,
    ExponentialInterarrival,
    FlashCrowdInterarrival,
    LognormalInterarrival,
    TraceReplayInterarrival,
    arrival_process,
    as_arrival_spec,
)


class TestExponential:
    def test_mean_matches_rate(self, rng):
        process = ExponentialInterarrival(qps=100_000)
        draws = [process.sample_us(rng) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(10.0, rel=0.05)

    def test_deterministic_without_rng(self):
        assert ExponentialInterarrival(1_000_000).sample_us(None) == 1.0

    def test_qps_exposed(self):
        assert ExponentialInterarrival(5000).qps == 5000

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ExponentialInterarrival(0)


class TestDeterministic:
    def test_constant_gaps(self, rng):
        process = DeterministicInterarrival(qps=10_000)
        draws = {process.sample_us(rng) for _ in range(10)}
        assert draws == {100.0}


class TestLognormal:
    def test_mean_preserved(self, rng):
        process = LognormalInterarrival(qps=10_000, sigma=1.0)
        draws = [process.sample_us(rng) for _ in range(50_000)]
        assert np.mean(draws) == pytest.approx(100.0, rel=0.1)

    def test_burstier_than_exponential(self, rng):
        exp_process = ExponentialInterarrival(10_000)
        log_process = LognormalInterarrival(10_000, sigma=1.5)
        exp_draws = [exp_process.sample_us(rng) for _ in range(20_000)]
        log_draws = [log_process.sample_us(rng) for _ in range(20_000)]
        assert np.std(log_draws) > np.std(exp_draws)

    def test_zero_sigma_deterministic(self, rng):
        process = LognormalInterarrival(10_000, sigma=0.0)
        assert process.sample_us(rng) == pytest.approx(100.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            LognormalInterarrival(10_000, sigma=-1.0)


class TestDiurnal:
    def test_mean_rate_preserved_over_full_cycles(self, rng):
        process = DiurnalInterarrival(10_000, period_us=1_000.0,
                                      amplitude=0.8)
        train = process.sample_train_us(rng, 50_000)
        # Averaged over many cycles the rate integrates back to qps.
        assert np.mean(train) == pytest.approx(100.0, rel=0.1)

    def test_rate_oscillates(self):
        process = DiurnalInterarrival(1_000, period_us=4_000.0,
                                      amplitude=0.5)
        assert process._rate_qps(1_000.0) == pytest.approx(1_500.0)
        assert process._rate_qps(3_000.0) == pytest.approx(500.0)

    def test_invalid_period_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalInterarrival(1_000, period_us=0.0)

    def test_invalid_amplitude_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalInterarrival(1_000, period_us=100.0, amplitude=1.5)

    def test_scalar_path_advances_internal_clock(self, rng):
        process = DiurnalInterarrival(1_000, period_us=5_000.0)
        first = process.sample_us(rng)
        second = process.sample_us(rng)
        assert first > 0 and second > 0
        assert process._clock_us == pytest.approx(first + second)

    def test_no_rng_degenerates_to_mean(self):
        process = DiurnalInterarrival(10_000, period_us=1_000.0)
        assert process.sample_us(None) == 100.0
        assert np.all(process.sample_train_us(None, 4) == 100.0)


class TestFlashCrowd:
    def test_spike_compresses_gaps(self, rng):
        process = FlashCrowdInterarrival(
            1_000, spike_start_us=0.0, spike_duration_us=1e9,
            spike_factor=10.0)
        train = process.sample_train_us(rng, 20_000)
        # Inside an (effectively infinite) spike the rate is 10x.
        assert np.mean(train) == pytest.approx(100.0, rel=0.1)

    def test_piecewise_rate(self):
        process = FlashCrowdInterarrival(
            1_000, spike_start_us=500.0, spike_duration_us=100.0,
            spike_factor=4.0)
        assert process._rate_qps(499.0) == 1_000.0
        assert process._rate_qps(550.0) == 4_000.0
        assert process._rate_qps(600.0) == 1_000.0

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            FlashCrowdInterarrival(1_000, spike_start_us=0.0,
                                   spike_duration_us=10.0,
                                   spike_factor=0.5)


class TestTraceReplay:
    def test_replays_gaps_from_timestamps(self):
        process = TraceReplayInterarrival([0.0, 10.0, 25.0, 45.0])
        gaps = [process.sample_us(None) for _ in range(4)]
        assert gaps == [0.0, 10.0, 15.0, 20.0]

    def test_exhaustion_raises(self):
        process = TraceReplayInterarrival([0.0, 5.0])
        process.sample_us(None)
        process.sample_us(None)
        with pytest.raises(ConfigurationError):
            process.sample_us(None)

    def test_train_matches_scalar_replay(self):
        timestamps = [0.0, 3.0, 9.0, 10.0, 30.0]
        vector = TraceReplayInterarrival(timestamps)
        scalar = TraceReplayInterarrival(timestamps)
        train = vector.sample_train_us(None, 5)
        gaps = [scalar.sample_us(None) for _ in range(5)]
        assert np.array_equal(train, np.array(gaps))

    def test_from_file_skips_comments(self, tmp_path):
        path = tmp_path / "arrivals.txt"
        path.write_text("# header\n0.0\n\n10.0\n20.0\n")
        process = TraceReplayInterarrival.from_file(path)
        assert len(process) == 3


class TestArrivalSpec:
    def test_default_poisson_canonicalizes_to_none(self):
        assert as_arrival_spec(None) is None
        assert as_arrival_spec(ArrivalSpec()) is None
        assert as_arrival_spec("poisson") is None

    def test_unknown_shape_did_you_mean(self):
        with pytest.raises(SpecValidationError, match="diurnal"):
            ArrivalSpec(shape="diurnl")

    def test_foreign_shape_fields_rejected(self):
        with pytest.raises(SpecValidationError):
            ArrivalSpec(shape="diurnal", period_us=100.0,
                        spike_factor=4.0)

    def test_round_trip_omits_defaults(self):
        spec = ArrivalSpec(shape="diurnal", period_us=20_000.0,
                           amplitude=0.5)
        payload = spec.to_dict()
        assert payload == {"shape": "diurnal",
                           "period_us": 20_000.0, "amplitude": 0.5}
        assert ArrivalSpec.from_dict(payload) == spec

    def test_make_process_builds_the_right_class(self):
        diurnal = ArrivalSpec(shape="diurnal", period_us=100.0)
        flash = ArrivalSpec(shape="flash-crowd",
                            spike_start_us=0.0,
                            spike_duration_us=10.0,
                            spike_factor=2.0)
        assert isinstance(diurnal.make_process(1_000),
                          DiurnalInterarrival)
        assert isinstance(flash.make_process(1_000),
                          FlashCrowdInterarrival)
        assert arrival_process(None, 1_000) is None
        assert isinstance(arrival_process(diurnal, 1_000),
                          DiurnalInterarrival)
