"""Tests for the client power model."""

import pytest

from repro.config.presets import HP_CLIENT, LP_CLIENT
from repro.errors import ConfigurationError
from repro.hardware.power import (
    ACTIVE_WATTS_AT_NOMINAL,
    PowerModel,
    compare_client_energy,
)


class TestActivePower:
    def test_nominal_frequency_is_reference(self, params):
        model = PowerModel(params, LP_CLIENT)
        assert model.active_watts(params.nominal_freq_ghz) == \
            pytest.approx(ACTIVE_WATTS_AT_NOMINAL)

    def test_superlinear_in_frequency(self, params):
        model = PowerModel(params, LP_CLIENT)
        low = model.active_watts(params.min_freq_ghz)
        high = model.active_watts(params.turbo_freq_ghz)
        freq_ratio = params.turbo_freq_ghz / params.min_freq_ghz
        assert high / low > freq_ratio  # more than linear

    def test_invalid_frequency_rejected(self, params):
        with pytest.raises(ConfigurationError):
            PowerModel(params, LP_CLIENT).active_watts(0.0)


class TestIdlePower:
    def test_lp_idles_in_deep_sleep(self, params):
        model = PowerModel(params, LP_CLIENT)
        # C6 residency power: 5% of active.
        assert model.idle_watts() == pytest.approx(
            0.05 * ACTIVE_WATTS_AT_NOMINAL)

    def test_hp_poll_idle_burns_near_active(self, params):
        model = PowerModel(params, HP_CLIENT)
        assert model.idle_watts() > 0.5 * ACTIVE_WATTS_AT_NOMINAL

    def test_hp_idle_far_above_lp_idle(self, params):
        lp = PowerModel(params, LP_CLIENT).idle_watts()
        hp = PowerModel(params, HP_CLIENT).idle_watts()
        assert hp > 10 * lp


class TestRunEnergy:
    def test_breakdown_sums(self, params):
        model = PowerModel(params, LP_CLIENT)
        energy = model.run_energy(
            busy_us=1e6, idle_us=1e6,
            busy_freq_ghz=params.nominal_freq_ghz)
        assert energy.total_joules == pytest.approx(
            energy.busy_joules + energy.idle_joules)
        assert energy.average_watts > 0

    def test_negative_time_rejected(self, params):
        with pytest.raises(ConfigurationError):
            PowerModel(params, LP_CLIENT).run_energy(-1, 0, 2.2)

    def test_empty_interval_zero_watts(self, params):
        energy = PowerModel(params, LP_CLIENT).run_energy(0, 0, 2.2)
        assert energy.average_watts == 0.0


class TestComparison:
    def test_hp_costs_more_energy_when_mostly_idle(self, params):
        """A mostly-idle client (the common case between requests):
        the tuned configuration burns several times more energy."""
        ratio = compare_client_energy(
            params, LP_CLIENT, HP_CLIENT,
            busy_us=50_000, horizon_us=1_000_000,
            lp_freq_ghz=params.min_freq_ghz,
            hp_freq_ghz=params.turbo_freq_ghz)
        assert ratio > 3.0

    def test_horizon_validation(self, params):
        with pytest.raises(ConfigurationError):
            compare_client_energy(
                params, LP_CLIENT, HP_CLIENT,
                busy_us=10, horizon_us=5,
                lp_freq_ghz=1.0, hp_freq_ghz=3.0)
