"""Tests for campaign specs: expansion, hashing, dict/JSON loading."""

import json

import pytest

from repro.campaign.serialize import (
    experiment_result_from_dict,
    experiment_result_to_dict,
    hardware_config_from_dict,
    hardware_config_to_dict,
    run_metrics_from_dict,
    run_metrics_to_dict,
)
from repro.campaign.spec import CampaignSpec, ConditionSpec, cell_seed
from repro.config.presets import (
    HP_CLIENT,
    LP_CLIENT,
    SERVER_BASELINE,
    server_with_smt,
)
from repro.core.experiment import run_experiment
from repro.core.testbed import RunMetrics
from repro.errors import ExperimentError
from repro.workloads.memcached import build_memcached_testbed


def small_spec(**overrides):
    defaults = dict(
        name="test-campaign",
        workload="memcached",
        conditions={"SMToff": server_with_smt(False),
                    "SMTon": server_with_smt(True)},
        qps_list=(10_000, 50_000),
        clients={"LP": LP_CLIENT, "HP": HP_CLIENT},
        runs=3,
        num_requests=80,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestHardwareConfigSerialization:
    def test_round_trip(self):
        for config in (LP_CLIENT, HP_CLIENT, SERVER_BASELINE,
                       server_with_smt(True)):
            data = hardware_config_to_dict(config)
            assert hardware_config_from_dict(data) == config

    def test_round_trip_survives_json(self):
        data = json.loads(json.dumps(hardware_config_to_dict(HP_CLIENT)))
        assert hardware_config_from_dict(data) == HP_CLIENT

    def test_preset_names(self):
        assert hardware_config_from_dict("LP") == LP_CLIENT
        assert hardware_config_from_dict("HP") == HP_CLIENT
        assert hardware_config_from_dict("baseline") == SERVER_BASELINE

    def test_unknown_preset_rejected(self):
        with pytest.raises(ExperimentError):
            hardware_config_from_dict("XP")

    def test_invalid_dict_rejected(self):
        with pytest.raises(ExperimentError):
            hardware_config_from_dict({"name": "broken"})


class TestResultSerialization:
    def metrics(self):
        return RunMetrics(avg_us=91.25, p99_us=210.5, true_avg_us=88.0,
                          true_p99_us=205.125, requests=72, seed=17,
                          server_utilization=0.23)

    def test_run_metrics_round_trip(self):
        metrics = self.metrics()
        assert run_metrics_from_dict(
            run_metrics_to_dict(metrics)) == metrics

    def test_experiment_result_round_trip_is_exact(self):
        result = run_experiment(
            lambda seed: build_memcached_testbed(
                seed, client_config=LP_CLIENT, qps=50_000,
                num_requests=60),
            runs=3, base_seed=5, label="LP-test")
        data = json.loads(json.dumps(experiment_result_to_dict(result)))
        rebuilt = experiment_result_from_dict(data)
        assert rebuilt.label == result.label
        assert rebuilt.workload == result.workload
        assert rebuilt.qps == result.qps
        # JSON floats round-trip IEEE doubles exactly.
        assert rebuilt.runs == result.runs


class TestExpansion:
    def test_cartesian_size_and_order(self):
        spec = small_spec()
        conditions = spec.expand()
        assert len(conditions) == spec.size() == 2 * 2 * 2
        # Clients x conditions x qps, in declaration order.
        assert [(c.client_label, c.condition_label, c.qps)
                for c in conditions[:3]] == [
                    ("LP", "SMToff", 10_000.0),
                    ("LP", "SMToff", 50_000.0),
                    ("LP", "SMTon", 10_000.0)]

    def test_seeds_match_the_figure_studies(self):
        """Campaign seeds must equal the legacy grid seeds, or store
        hits would not be interchangeable with study cells."""
        for condition in small_spec().expand():
            assert condition.base_seed == cell_seed(
                0, condition.client_label, condition.condition_label,
                condition.qps)

    def test_seed_depends_on_identity_not_position(self):
        wide = {c.content_hash(): c for c in small_spec().expand()}
        narrow = small_spec(qps_list=(50_000,)).expand()
        for condition in narrow:
            assert condition.content_hash() in wide

    def test_base_seed_shifts_all_conditions(self):
        base0 = small_spec().expand()
        base9 = small_spec(base_seed=9).expand()
        for a, b in zip(base0, base9):
            assert b.base_seed == a.base_seed + 9
            assert a.content_hash() != b.content_hash()

    def test_extra_kwargs_flow_into_conditions(self):
        spec = small_spec(workload="synthetic",
                          extra={"added_delay_us": 100.0})
        condition = spec.expand()[0]
        assert condition.extra_kwargs() == {"added_delay_us": 100.0}

    def test_label(self):
        condition = small_spec().expand()[0]
        assert condition.label == "LP-SMToff"


class TestContentHash:
    def test_stable_across_instances(self):
        a = small_spec().expand()[0]
        b = small_spec().expand()[0]
        assert a.content_hash() == b.content_hash()

    def test_round_trip_preserves_hash(self):
        condition = small_spec().expand()[0]
        rebuilt = ConditionSpec.from_dict(
            json.loads(json.dumps(condition.to_dict())))
        assert rebuilt == condition
        assert rebuilt.content_hash() == condition.content_hash()

    @pytest.mark.parametrize("override", [
        {"runs": 4}, {"num_requests": 81}, {"base_seed": 1},
        {"workload": "synthetic"},
        # A universal param valid for memcached: proves `extra` alone
        # perturbs the hash, with no other knob changing.
        {"extra": {"warmup_fraction": 0.2}},
        {"workload": "synthetic", "extra": {"added_delay_us": 10.0}},
    ])
    def test_hash_tracks_every_knob(self, override):
        baseline = {c.content_hash() for c in small_spec().expand()}
        changed = small_spec(**override).expand()
        assert all(c.content_hash() not in baseline for c in changed)

    def test_shared_qps_points_share_hashes(self):
        """A different sweep still hits the store for overlapping
        points -- condition identity ignores sweep membership."""
        baseline = {c.content_hash() for c in small_spec().expand()}
        changed = small_spec(qps_list=(10_000, 60_000)).expand()
        shared = [c for c in changed if c.qps == 10_000]
        fresh = [c for c in changed if c.qps == 60_000]
        assert all(c.content_hash() in baseline for c in shared)
        assert all(c.content_hash() not in baseline for c in fresh)

    def test_campaign_hash_stable(self):
        assert (small_spec().content_hash()
                == small_spec().content_hash())

    def test_int_and_float_extras_are_the_same_condition(self):
        """JSON has one number type: a spec file with integer extras
        must hit the store rows a float-built campaign produced."""
        as_int = small_spec(workload="synthetic",
                            extra={"added_delay_us": 200})
        as_float = small_spec(workload="synthetic",
                              extra={"added_delay_us": 200.0})
        assert ([c.content_hash() for c in as_int.expand()]
                == [c.content_hash() for c in as_float.expand()])


class TestFromDict:
    def spec_dict(self):
        return {
            "name": "file-campaign",
            "workload": "memcached",
            "clients": ["LP", "HP"],
            "conditions": {
                "SMToff": {"knob": "smt", "enabled": False},
                "SMTon": {"knob": "smt", "enabled": True},
            },
            "qps": [10_000, 50_000],
            "runs": 3,
            "num_requests": 80,
        }

    def test_shorthand_equals_programmatic(self):
        from_file = CampaignSpec.from_dict(self.spec_dict())
        programmatic = small_spec(name="file-campaign")
        assert ([c.content_hash() for c in from_file.expand()]
                == [c.content_hash() for c in programmatic.expand()])

    def test_json_round_trip(self):
        spec = small_spec()
        rebuilt = CampaignSpec.from_json(spec.to_json())
        assert rebuilt.content_hash() == spec.content_hash()

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(self.spec_dict()))
        spec = CampaignSpec.load(str(path))
        assert spec.name == "file-campaign"
        assert spec.size() == 8

    def test_clients_default_to_lp_hp(self):
        data = self.spec_dict()
        del data["clients"]
        spec = CampaignSpec.from_dict(data)
        assert list(spec.clients) == ["LP", "HP"]

    def test_c1e_shorthand(self):
        data = self.spec_dict()
        data["conditions"] = {"C1Eon": {"knob": "c1e", "enabled": True}}
        spec = CampaignSpec.from_dict(data)
        assert "C1E" in spec.conditions["C1Eon"].enabled_cstates

    def test_baseline_shorthand(self):
        data = self.spec_dict()
        data["conditions"] = {"baseline": "baseline"}
        spec = CampaignSpec.from_dict(data)
        assert spec.conditions["baseline"] == SERVER_BASELINE

    def test_unknown_knob_rejected(self):
        data = self.spec_dict()
        data["conditions"] = {"x": {"knob": "turbo"}}
        with pytest.raises(ExperimentError):
            CampaignSpec.from_dict(data)

    def test_missing_fields_rejected(self):
        with pytest.raises(ExperimentError):
            CampaignSpec.from_dict({"name": "x", "workload": "memcached"})

    def test_invalid_json_rejected(self):
        with pytest.raises(ExperimentError):
            CampaignSpec.from_json("{not json")


class TestValidation:
    @pytest.mark.parametrize("override", [
        {"runs": 0}, {"num_requests": 0}, {"qps_list": ()},
        {"conditions": {}}, {"clients": {}}, {"name": ""},
    ])
    def test_bad_specs_rejected(self, override):
        with pytest.raises(ExperimentError):
            small_spec(**override)

    def test_with_overrides(self):
        spec = small_spec().with_overrides(runs=7, base_seed=3)
        assert spec.runs == 7 and spec.base_seed == 3
        assert small_spec().runs == 3  # original untouched


def test_cell_seed_scheme_is_pinned():
    """The seed derivation is a compatibility contract: changing it
    would orphan every stored result.  Pin it to the formula the seed
    repo's figure grids used."""
    from repro.sim.random import _stable_name_key

    key = _stable_name_key("LP/SMToff/10000")
    assert cell_seed(0, "LP", "SMToff", 10_000) == (key % 1_000_003) * 10_000
    assert cell_seed(7, "LP", "SMToff", 10_000) == (
        7 + (key % 1_000_003) * 10_000)
