"""Tests for the repro.obs metrics registry and run-level harvest."""

import pytest

from repro.api import experiment
from repro.campaign.serialize import (
    run_metrics_from_dict,
    run_metrics_to_dict,
)
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("events")
        assert counter.value == 0.0
        counter.add()
        counter.add(41)
        assert counter.value == 42.0

    def test_rejects_negative_increments(self):
        counter = Counter("events")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.add(-1)


class TestGauge:
    def test_last_write_wins_either_direction(self):
        gauge = Gauge("depth")
        gauge.set(7)
        gauge.set(3.5)
        assert gauge.value == 3.5


class TestHistogram:
    def test_observe_tracks_count_total_extremes(self):
        hist = Histogram("service")
        for value in (1.0, 10.0, 100.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 111.0
        assert hist.min == 1.0
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(37.0)

    def test_bucketing_is_inclusive_with_overflow(self):
        hist = Histogram("h", bounds=(10.0, 100.0))
        hist.observe(10.0)   # inclusive upper bound -> first bucket
        hist.observe(50.0)
        hist.observe(1e9)    # past the last bound -> overflow bucket
        assert hist.counts == [1, 1, 1]

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(10.0, 10.0))


class TestMetricsRegistry:
    def test_get_or_create_shares_instances(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1
        assert "a" in reg

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a")

    def test_flatten_is_sorted_scalars(self):
        reg = MetricsRegistry()
        reg.counter("z.count").add(2)
        reg.gauge("a.depth").set(5)
        hist = reg.histogram("m.latency")
        hist.observe(10.0)
        pairs = reg.flatten()
        assert pairs == (
            ("a.depth", 5.0),
            ("m.latency.count", 1.0),
            ("m.latency.mean", 10.0),
            ("z.count", 2.0),
        )

    def test_snapshot_histogram_summary(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(10.0,)).observe(3.0)
        snap = reg.snapshot()
        assert snap["h"]["count"] == 1
        assert snap["h"]["counts"] == [1, 0]


class TestRunHarvest:
    @pytest.fixture(scope="class")
    def traced_metrics(self):
        plan = (experiment("memcached").client("LP")
                .load(qps=50_000, num_requests=300)
                .policy(runs=1, base_seed=11, trace=True)
                .build())
        testbed = plan.testbed(11)
        return testbed.run()

    def test_obs_metrics_surface_engine_counters(self, traced_metrics):
        names = dict(traced_metrics.obs_metrics)
        assert names["engine.events_dispatched"] > 0
        assert names["sink.recorded"] == 300.0
        assert names["trace.spans"] > 0
        assert "station.memcached.completed" in names
        assert "net.client->server.messages" in names

    def test_obs_metrics_round_trip_serialization(self, traced_metrics):
        restored = run_metrics_from_dict(
            run_metrics_to_dict(traced_metrics))
        assert restored.obs_metrics == traced_metrics.obs_metrics
        assert restored == traced_metrics

    def test_unobserved_run_has_empty_obs_metrics(self):
        plan = (experiment("memcached").client("LP")
                .load(qps=50_000, num_requests=300)
                .policy(runs=1, base_seed=11)
                .build())
        metrics = plan.testbed(11).run()
        assert metrics.obs_metrics == ()
        payload = run_metrics_to_dict(metrics)
        assert "obs_metrics" not in payload
