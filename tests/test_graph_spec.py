"""Service-graph spec layer: validation, round-trip, hash stability.

Covers :mod:`repro.graph.spec` (tiers, cache fields, resilience
policies, DAG validation with did-you-mean), the graph presets, the
plan/builder plumbing, and the byte-stability contract: every plan,
condition and store key that existed *before* the graph subsystem
must serialize and hash exactly as it did then (new fields are
omitted when default).
"""

import pytest

from repro.api import (
    ArrivalSpec,
    ClusterSpec,
    GraphTierSpec,
    ResiliencePolicy,
    ServiceGraphSpec,
    SpecValidationError,
    experiment,
)
from repro.errors import ExperimentError
from repro.graph import (
    NO_RESILIENCE,
    as_graph_spec,
    as_resilience_policy,
    graph_preset,
    graph_preset_names,
)


def three_tier():
    return ServiceGraphSpec(tiers=(
        GraphTierSpec(name="frontend", downstream=("cache",)),
        GraphTierSpec(name="cache", kind="cache",
                      downstream=("leaf",), hit_ratio=0.8,
                      hit_service_us=4.0, fill_penalty_us=6.0),
        GraphTierSpec(name="leaf", shape=ClusterSpec(shards=4),
                      policy=ResiliencePolicy(hedge_after_us=100.0,
                                              hedges=1)),
    ))


class TestResiliencePolicy:
    def test_noop_default(self):
        assert ResiliencePolicy().is_noop
        assert NO_RESILIENCE.is_noop

    def test_retry_needs_timeout(self):
        with pytest.raises(SpecValidationError):
            ResiliencePolicy(max_retries=1)
        with pytest.raises(SpecValidationError):
            ResiliencePolicy(timeout_us=100.0)

    def test_hedge_needs_trigger(self):
        with pytest.raises(SpecValidationError):
            ResiliencePolicy(hedges=1)
        with pytest.raises(SpecValidationError):
            ResiliencePolicy(hedge_after_us=100.0)

    def test_backoff_needs_retries(self):
        with pytest.raises(SpecValidationError):
            ResiliencePolicy(backoff_us=10.0)

    def test_round_trip_omits_defaults(self):
        policy = ResiliencePolicy(timeout_us=500.0, max_retries=2)
        payload = policy.to_dict()
        assert payload == {"timeout_us": 500.0, "max_retries": 2}
        assert ResiliencePolicy.from_dict(payload) == policy
        assert as_resilience_policy(payload) == policy
        assert as_resilience_policy(None) == NO_RESILIENCE

    def test_unknown_field_did_you_mean(self):
        with pytest.raises(SpecValidationError, match="timeout_us"):
            ResiliencePolicy.from_dict({"timout_us": 500.0})


class TestGraphTierSpec:
    def test_unknown_kind_did_you_mean(self):
        with pytest.raises(SpecValidationError, match="cache"):
            GraphTierSpec(name="t", kind="cachee")

    def test_bad_name_rejected(self):
        with pytest.raises(SpecValidationError):
            GraphTierSpec(name="no spaces allowed")

    def test_cache_needs_downstream(self):
        with pytest.raises(SpecValidationError):
            GraphTierSpec(name="c", kind="cache", hit_ratio=0.5)

    def test_cache_hit_ratio_bounds(self):
        with pytest.raises(SpecValidationError):
            GraphTierSpec(name="c", kind="cache",
                          downstream=("leaf",), hit_ratio=1.5)

    def test_service_tier_rejects_cache_fields(self):
        with pytest.raises(SpecValidationError):
            GraphTierSpec(name="s", hit_ratio=0.5)

    def test_round_trip_omits_defaults(self):
        tier = GraphTierSpec(name="frontend", downstream=("leaf",))
        assert tier.to_dict() == {"name": "frontend",
                                  "downstream": ["leaf"]}
        assert GraphTierSpec.from_dict(tier.to_dict()) == tier


class TestServiceGraphSpec:
    def test_needs_a_tier(self):
        with pytest.raises(SpecValidationError):
            ServiceGraphSpec(tiers=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecValidationError):
            ServiceGraphSpec(tiers=(
                GraphTierSpec(name="a", downstream=("a",)),
                GraphTierSpec(name="a")))

    def test_unknown_downstream_did_you_mean(self):
        with pytest.raises(SpecValidationError, match="leaf"):
            ServiceGraphSpec(tiers=(
                GraphTierSpec(name="front", downstream=("laef",)),
                GraphTierSpec(name="leaf")))

    def test_back_edges_rejected(self):
        # Downstream must point at later-declared tiers: declaration
        # order is the topological order, so cycles cannot exist.
        with pytest.raises(SpecValidationError,
                           match="topological order"):
            ServiceGraphSpec(tiers=(
                GraphTierSpec(name="a", downstream=("b",)),
                GraphTierSpec(name="b", downstream=("a",))))

    def test_unreachable_tier_rejected(self):
        with pytest.raises(SpecValidationError, match="unreachable"):
            ServiceGraphSpec(tiers=(
                GraphTierSpec(name="a"),
                GraphTierSpec(name="orphan")))

    def test_round_trip_is_exact(self):
        spec = three_tier()
        assert ServiceGraphSpec.from_dict(spec.to_dict()) == spec
        assert as_graph_spec(spec.to_dict()) == spec
        assert as_graph_spec(None) is None

    def test_describe_names_every_tier(self):
        text = three_tier().describe()
        for name in ("frontend", "cache", "leaf"):
            assert name in text

    def test_content_hash_distinguishes_topologies(self):
        assert (three_tier().content_hash()
                != graph_preset("memcached-cached").content_hash())


class TestGraphPresets:
    def test_registry_lists_both(self):
        assert graph_preset_names() == ("hdsearch-graph",
                                        "memcached-cached")

    def test_presets_validate_and_round_trip(self):
        for name in graph_preset_names():
            spec = graph_preset(name)
            assert ServiceGraphSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_preset_did_you_mean(self):
        with pytest.raises(ExperimentError,
                           match="memcached-cached"):
            graph_preset("memcached-cachd")


class TestPlanPlumbing:
    def test_builder_graph_round_trips(self):
        plan = (experiment("memcached")
                .graph("memcached-cached")
                .load(arrival=ArrivalSpec(shape="diurnal",
                                          period_us=20_000.0))
                .policy(metrics=True)
                .build())
        from repro.api import ExperimentPlan
        clone = ExperimentPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.graph == graph_preset("memcached-cached")
        assert clone.load.arrival.shape == "diurnal"
        assert clone.policy.metrics

    def test_graph_resets_cluster_and_vice_versa(self):
        plan = (experiment("memcached")
                .cluster(nodes=4, lb_policy="round-robin")
                .graph("memcached-cached")
                .build())
        assert plan.cluster == ClusterSpec()
        back = plan.with_cluster(nodes=2)
        assert back.graph is None

    def test_builder_last_topology_call_wins(self):
        plan = (experiment("memcached")
                .graph("memcached-cached")
                .cluster(nodes=4, lb_policy="round-robin")
                .build())
        assert plan.graph is None
        assert plan.cluster.nodes == 4

    def test_graph_conflicts_with_cluster_topology(self):
        from dataclasses import replace

        plan = (experiment("memcached")
                .graph("memcached-cached")
                .build())
        with pytest.raises(SpecValidationError):
            replace(plan, cluster=ClusterSpec(
                nodes=4, lb_policy="round-robin"))


class TestPreGraphByteStability:
    """Every pre-graph plan hash and store key is frozen.

    The literals below were captured from the commit *before* the
    graph subsystem landed.  If one changes, a default-valued new
    field leaked into serialization and every stored campaign result
    silently changed identity -- omit the field instead.
    """

    def test_plan_hashes_are_byte_stable(self):
        default = experiment("memcached").build()
        tuned = (experiment("hdsearch").client("HP")
                 .load(qps=2_000, num_requests=500)
                 .policy(runs=5, base_seed=9, trace=True)
                 .build())
        clustered = (experiment("memcached")
                     .cluster(nodes=4, lb_policy="power-of-two")
                     .load(qps=400_000).build())
        assert default.content_hash() == (
            "a602ff4701e1ccafb623406c44bba718"
            "c4c15f19ed18da96fbfcc2a29b96e281")
        assert tuned.content_hash() == (
            "d346cc0eede083afdb4cd38ee5e2e66e"
            "2c11124757e1610e50ffac11b06baf10")
        assert clustered.content_hash() == (
            "26066b59a7b6f28658a2eb507e070b99"
            "35480bf94b5c43309c27fcea15527099")

    def test_condition_store_key_is_byte_stable(self):
        from repro.campaign.spec import CampaignSpec
        from repro.config.presets import SERVER_BASELINE

        spec = CampaignSpec(
            name="s", workload="memcached",
            conditions={"baseline": SERVER_BASELINE},
            qps_list=(50_000.0,), runs=2, num_requests=100)
        assert spec.expand()[0].content_hash() == (
            "ff21ff72b22dbfe1d8b0942cd3bfb192"
            "6beeabff1987959bba9152f63d88b540")

    def test_serialized_forms_omit_graph_era_fields(self):
        plan = experiment("memcached").build()
        payload = plan.to_dict()
        assert "graph" not in payload
        assert "arrival" not in payload["load"]
        assert "metrics" not in payload["policy"]

        from repro.campaign.spec import CampaignSpec
        from repro.config.presets import SERVER_BASELINE

        spec = CampaignSpec(
            name="s", workload="memcached",
            conditions={"baseline": SERVER_BASELINE},
            qps_list=(50_000.0,), runs=1, num_requests=10)
        assert "graph" not in spec.to_dict()
        assert "arrival" not in spec.to_dict()
        condition = spec.expand()[0]
        assert "graph" not in condition.to_dict()
        assert "arrival" not in condition.to_dict()
