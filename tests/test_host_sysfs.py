"""Tests for the sysfs accessors."""

import pytest

from repro.errors import SysfsError
from repro.host.sysfs import CpuSysfs


@pytest.fixture
def sysfs(small_fake_fs):
    return CpuSysfs(small_fake_fs)


class TestCpus:
    def test_online_cpus(self, sysfs):
        assert sysfs.online_cpus() == [0, 1, 2, 3]


class TestCstates:
    def test_cstate_dirs_sorted(self, sysfs):
        assert sysfs.cstate_dirs(0) == [
            "state0", "state1", "state2", "state3"]

    def test_cstate_names(self, sysfs):
        names = [sysfs.cstate_name(0, d) for d in sysfs.cstate_dirs(0)]
        assert names == ["POLL", "C1", "C1E", "C6"]

    def test_cstate_latency(self, sysfs):
        assert sysfs.cstate_latency_us(0, "state3") == 133

    def test_disable_one_state(self, sysfs):
        sysfs.set_cstate_disabled(1, "state3", True)
        assert sysfs.cstate_disabled(1, "state3")
        assert not sysfs.cstate_disabled(0, "state3")

    def test_set_enabled_cstates_disables_others(self, sysfs):
        sysfs.set_enabled_cstates({"C1"})
        assert sysfs.enabled_cstates(0) == ["POLL", "C1"]
        assert sysfs.cstate_disabled(3, "state2")
        assert sysfs.cstate_disabled(3, "state3")

    def test_set_enabled_cstates_poll_always_on(self, sysfs):
        sysfs.set_enabled_cstates(set())
        assert "POLL" in sysfs.enabled_cstates(0)

    def test_reenabling_states(self, sysfs):
        sysfs.set_enabled_cstates({"C1"})
        sysfs.set_enabled_cstates({"C1", "C1E", "C6"})
        assert sysfs.enabled_cstates(2) == ["POLL", "C1", "C1E", "C6"]


class TestCpufreq:
    def test_driver_and_governor(self, sysfs):
        assert sysfs.scaling_driver() == "intel_pstate"
        assert sysfs.scaling_governor() == "powersave"

    def test_available_governors(self, sysfs):
        assert sysfs.available_governors() == ["performance", "powersave"]

    def test_set_governor_all_cpus(self, sysfs):
        sysfs.set_governor("performance")
        for cpu in sysfs.online_cpus():
            assert sysfs.scaling_governor(cpu) == "performance"

    def test_set_unknown_governor_raises(self, sysfs):
        with pytest.raises(SysfsError):
            sysfs.set_governor("ondemand")

    def test_freq_range(self, sysfs):
        assert sysfs.freq_range_khz() == (800_000, 3_000_000)

    def test_pin_frequency(self, sysfs):
        sysfs.pin_frequency_khz(2_200_000)
        assert sysfs.freq_range_khz(3) == (2_200_000, 2_200_000)

    def test_pin_frequency_out_of_range(self, sysfs):
        with pytest.raises(SysfsError):
            sysfs.pin_frequency_khz(5_000_000)


class TestSmt:
    def test_smt_active_by_default(self, sysfs):
        assert sysfs.smt_active()

    def test_set_smt_off(self, sysfs):
        sysfs.set_smt(False)
        assert not sysfs.smt_active()

    def test_set_smt_roundtrip(self, sysfs):
        sysfs.set_smt(False)
        sysfs.set_smt(True)
        assert sysfs.smt_active()


class TestPstate:
    def test_no_turbo_default_off(self, sysfs):
        assert not sysfs.pstate_no_turbo()

    def test_set_no_turbo(self, sysfs):
        sysfs.set_pstate_no_turbo(True)
        assert sysfs.pstate_no_turbo()
