"""Tests for the Lancet-style hygiene checks."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.stats.lancet_checks import (
    anderson_darling_exponential,
    dickey_fuller_stationarity,
    run_all_checks,
    spearman_independence,
)


class TestAndersonDarling:
    def test_exponential_gaps_pass(self, rng):
        gaps = rng.exponential(10.0, size=500)
        result = anderson_darling_exponential(gaps)
        assert result.passed
        assert "A2=" in result.detail

    def test_constant_gaps_fail(self):
        gaps = np.full(200, 10.0)
        gaps[0] = 10.5  # avoid a degenerate fit
        result = anderson_darling_exponential(gaps)
        assert not result.passed

    def test_uniform_gaps_fail(self, rng):
        gaps = rng.uniform(9.0, 11.0, size=500)
        result = anderson_darling_exponential(gaps)
        assert not result.passed

    def test_negative_gaps_rejected(self):
        with pytest.raises(StatisticsError):
            anderson_darling_exponential([-1.0] * 20)

    def test_unknown_significance_rejected(self, rng):
        with pytest.raises(StatisticsError):
            anderson_darling_exponential(
                rng.exponential(1.0, size=50), significance_pct=3.0)


class TestDickeyFuller:
    def test_stationary_noise_passes(self, rng):
        samples = rng.normal(100, 5, size=200)
        result = dickey_fuller_stationarity(samples)
        assert result.passed

    def test_random_walk_fails(self, rng):
        samples = 100.0 + np.cumsum(rng.normal(0, 1, size=300))
        result = dickey_fuller_stationarity(samples)
        assert not result.passed

    def test_constant_series_passes(self):
        result = dickey_fuller_stationarity([5.0] * 50)
        assert result.passed
        assert result.detail == "constant series"


class TestSpearman:
    def test_iid_samples_pass(self, rng):
        result = spearman_independence(rng.normal(size=300))
        assert result.passed
        assert abs(result.statistic) < 0.2

    def test_trending_samples_fail(self):
        result = spearman_independence(np.arange(100, dtype=float))
        assert not result.passed
        assert result.statistic == pytest.approx(1.0)

    def test_invalid_lag(self, rng):
        with pytest.raises(StatisticsError):
            spearman_independence(rng.normal(size=20), lag=0)


class TestBattery:
    def test_run_all_checks_returns_three(self, rng):
        gaps = rng.exponential(10.0, size=200)
        samples = rng.normal(100, 2, size=50)
        results = run_all_checks(gaps, samples)
        assert len(results) == 3
        assert all(r.format_row() for r in results)

    def test_healthy_experiment_passes_everything(self, rng):
        gaps = rng.exponential(10.0, size=500)
        samples = rng.normal(100, 2, size=100)
        results = run_all_checks(gaps, samples)
        assert all(r.passed for r in results)
