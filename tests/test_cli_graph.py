"""The ``repro graph`` subcommand and graph plan printing."""

from repro.cli import main as cli_main


class TestGraphCommand:
    def test_runs_and_reports_tier_counters(self, capsys):
        exit_code = cli_main([
            "graph", "--workload", "memcached",
            "--graph", "memcached-cached",
            "--runs", "2", "--requests", "150",
            "--qps", "50000", "--seed", "3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "service graph 'memcached-cached'" in out
        assert "frontend: single-server -> cache" in out
        assert "median p99 latency" in out
        assert "cache.cache.hit_rate" in out
        assert "resilience.leaf.hedges" in out

    def test_diurnal_arrival_is_reported(self, capsys):
        exit_code = cli_main([
            "graph", "--graph", "memcached-cached",
            "--arrival", "diurnal",
            "--runs", "1", "--requests", "80", "--qps", "50000"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "diurnal (period 20000us" in out

    def test_hdsearch_graph_preset_runs(self, capsys):
        exit_code = cli_main([
            "graph", "--workload", "hdsearch",
            "--graph", "hdsearch-graph",
            "--runs", "1", "--requests", "60", "--qps", "1000"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "resilience.leaf.retries" in out

    def test_unknown_preset_fails_with_did_you_mean(self, capsys):
        exit_code = cli_main([
            "graph", "--graph", "memcached-cachd",
            "--runs", "1", "--requests", "30"])
        err = capsys.readouterr().err
        assert exit_code == 1
        assert "did you mean 'memcached-cached'" in err

    def test_vectorized_engine_accepted(self, capsys):
        exit_code = cli_main([
            "graph", "--graph", "memcached-cached",
            "--engine", "vectorized",
            "--runs", "1", "--requests", "80", "--qps", "50000"])
        assert exit_code == 0


class TestPlanPrintsGraphTopology:
    def test_ad_hoc_graph_plan_prints_tiers(self, capsys):
        exit_code = cli_main([
            "plan", "--workload", "memcached",
            "--graph", "memcached-cached",
            "--qps", "50000", "--runs", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "service graph:" in out
        assert "cache: cache (hit 80%" in out
        assert "[policy: hedge x1" in out
        assert "dry run" in out

    def test_preset_campaign_prints_graph_and_arrival(self, capsys):
        exit_code = cli_main([
            "plan", "--preset", "memcached-cached"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "service graph:" in out
        assert "arrival process: diurnal" in out

    def test_unknown_graph_fails_before_expansion(self, capsys):
        exit_code = cli_main([
            "plan", "--workload", "memcached",
            "--graph", "memcached-cachd"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "did you mean 'memcached-cached'" in captured.err
        # Validation happened before any expansion output.
        assert "campaign" not in captured.out

    def test_graph_flag_rejected_with_preset(self, capsys):
        exit_code = cli_main([
            "plan", "--preset", "memcached-smt",
            "--graph", "memcached-cached"])
        err = capsys.readouterr().err
        assert exit_code == 1
        assert "--graph" in err

    def test_flat_plan_prints_no_graph(self, capsys):
        exit_code = cli_main([
            "plan", "--workload", "memcached", "--qps", "50000"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "service graph:" not in out
