"""Tests for the autotune search drivers: budgets, determinism, resume."""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.api import experiment
from repro.campaign.store import ResultStore
from repro.errors import ExperimentError, SpecValidationError
from repro.tune import (
    BoolTunable,
    CandidateEvaluator,
    CapacityObjective,
    CategoricalTunable,
    GridSearch,
    IntRangeTunable,
    RandomSearch,
    SearchSpace,
    SuccessiveHalving,
    assignment_label,
    make_driver,
)
from repro.tune.search import TrialEval

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def two_knob_space():
    return SearchSpace(tunables=(
        BoolTunable(name="smt", field="hardware.server.smt"),
        CategoricalTunable(
            name="gov", field="hardware.server.frequency_governor",
            values=("powersave", "performance")),
    ))


def base_plan():
    return experiment("memcached").client("LP").build()


def objective(*qps):
    return CapacityObjective(qps_list=qps or (400_000.0, 800_000.0),
                             qos_target_us=400.0)


class _FakePlan:
    def content_hash(self):
        return "fake"


class FakeEvaluator:
    """Evaluator double: scores from a lookup, counts simulated work.

    Mirrors the CandidateEvaluator protocol the drivers use so budget
    and promotion properties can be checked without simulating.
    """

    def __init__(self, space, scores=None, failing=(), runs=2,
                 sweep_points=3):
        self.space = space
        self.objective = objective(*(
            10_000.0 * (i + 1) for i in range(sweep_points)))
        self.plan = _FakePlan()
        self.runs = runs
        self.base_seed = 0
        self.scores = scores or {}
        self.failing = set(failing)
        self.simulated_requests = 0

    def cost_per_trial(self, num_requests):
        return (self.runs * int(num_requests)
                * len(self.objective.qps_list))

    def evaluate_many(self, assignments, num_requests, rung=0,
                      progress=None):
        trials = []
        for assignment in assignments:
            label = assignment_label(assignment)
            charged = self.cost_per_trial(num_requests)
            self.simulated_requests += charged
            trial = TrialEval(
                assignment=dict(assignment), label=label,
                num_requests=int(num_requests), rung=int(rung),
                executed=len(self.objective.qps_list),
                charged_requests=charged)
            if label in self.failing:
                trial.failed = trial.executed
                trial.executed = 0
                trial.error = "boom"
            else:
                trial.score = float(self.scores.get(label, 0.0))
            trials.append(trial)
        return trials


class TestBudgetAccounting:
    """Total simulated requests never exceed the declared budget."""

    @pytest.mark.parametrize("size,budget0,eta,initial", [
        (8, 20, 2, None),
        (8, 20, 2, 3),
        (12, 10, 3, None),
        (5, 7, 2, None),
        (1, 50, 2, None),
        (16, 25, 4, 9),
    ])
    def test_halving_within_declared_budget(self, size, budget0, eta,
                                            initial):
        space = SearchSpace(tunables=(
            IntRangeTunable(name="n", field="cluster.nodes",
                            low=1, high=size),))
        evaluator = FakeEvaluator(
            space, scores={assignment_label({"n": i}): float(i)
                           for i in range(1, size + 1)})
        driver = SuccessiveHalving(budget0=budget0, eta=eta,
                                   initial=initial)
        result = driver.run(evaluator)
        assert evaluator.simulated_requests <= result.declared_budget
        assert result.charged_requests == evaluator.simulated_requests
        assert result.declared_budget == driver.declared_budget(evaluator)

    def test_rung_schedule_shrinks_to_one(self):
        driver = SuccessiveHalving(budget0=10, eta=2)
        assert driver.rungs(8) == [(8, 10), (4, 20), (2, 40), (1, 80)]
        assert driver.rungs(1) == [(1, 10)]
        assert driver.rungs(5) == [(5, 10), (3, 20), (2, 40), (1, 80)]

    def test_grid_and_random_budgets_are_exact(self):
        space = two_knob_space()
        evaluator = FakeEvaluator(space)
        grid = GridSearch(num_requests=40)
        result = grid.run(evaluator)
        assert evaluator.simulated_requests == result.declared_budget
        evaluator = FakeEvaluator(space)
        rnd = RandomSearch(samples=3, seed=1, num_requests=40)
        result = rnd.run(evaluator)
        assert evaluator.simulated_requests <= result.declared_budget

    def test_cache_hits_still_charge_budget(self):
        """The bound covers worst-case work, so hits are not free."""
        space = two_knob_space()
        plan = base_plan()
        with ResultStore(":memory:") as store:
            first = GridSearch(num_requests=30).run(CandidateEvaluator(
                plan, space, objective(), runs=1, store=store))
            again = GridSearch(num_requests=30).run(CandidateEvaluator(
                plan, space, objective(), runs=1, store=store))
        assert again.executed == 0
        assert again.charged_requests == first.charged_requests


class TestHalvingPromotion:
    def scores(self):
        # gov=performance,smt=off is the unique winner.
        return {
            "gov=powersave,smt=off": 100.0,
            "gov=performance,smt=off": 400.0,
            "gov=powersave,smt=on": 200.0,
            "gov=performance,smt=on": 300.0,
        }

    def test_winner_survives_to_final_rung(self):
        evaluator = FakeEvaluator(two_knob_space(),
                                  scores=self.scores())
        result = SuccessiveHalving(budget0=10, eta=2).run(evaluator)
        final_rung = max(t.rung for t in result.trials)
        finalists = [t for t in result.trials if t.rung == final_rung]
        assert [t.label for t in finalists] == \
            ["gov=performance,smt=off"]
        assert result.best.label == "gov=performance,smt=off"
        # Budgets doubled every promotion.
        assert sorted({t.num_requests for t in result.trials}) == \
            [10, 20, 40]

    def test_failed_trials_never_promote(self):
        evaluator = FakeEvaluator(
            two_knob_space(), scores=self.scores(),
            failing={"gov=performance,smt=off"})
        result = SuccessiveHalving(budget0=10, eta=2).run(evaluator)
        promoted = {t.label for t in result.trials if t.rung > 0}
        assert "gov=performance,smt=off" not in promoted
        assert result.best.label == "gov=performance,smt=on"

    def test_all_failed_stops_search(self):
        labels = {assignment_label(a)
                  for a in two_knob_space().grid()}
        evaluator = FakeEvaluator(two_knob_space(), failing=labels)
        result = SuccessiveHalving(budget0=10, eta=2).run(evaluator)
        assert result.best is None
        assert max(t.rung for t in result.trials) == 0

    def test_driver_parameter_validation(self):
        with pytest.raises(SpecValidationError):
            SuccessiveHalving(budget0=0)
        with pytest.raises(SpecValidationError):
            SuccessiveHalving(eta=1)
        with pytest.raises(SpecValidationError):
            SuccessiveHalving(initial=0)
        with pytest.raises(SpecValidationError):
            RandomSearch(samples=0)

    def test_make_driver_did_you_mean(self):
        assert isinstance(make_driver("grid"), GridSearch)
        with pytest.raises(ExperimentError,
                           match="did you mean 'halving'"):
            make_driver("halvng")


class TestSearchOnRealSimulator:
    def test_grid_finds_max_capacity_config(self):
        """The acceptance scenario: smt x governor over memcached."""
        evaluator = CandidateEvaluator(
            base_plan(), two_knob_space(),
            objective(400_000.0, 800_000.0, 1_200_000.0),
            runs=2, base_seed=7)
        result = GridSearch(num_requests=300).run(evaluator)
        assert len(result.trials) == 4
        assert all(t.ok for t in result.trials)
        best = result.best
        assert best.assignment["gov"] == "performance"
        # powersave violates 400us inside the sweep; performance wins.
        worst = min(result.trials, key=lambda t: t.score)
        assert worst.assignment["gov"] == "powersave"
        assert best.score > worst.score

    def test_interpolated_crossing_feeds_score(self):
        evaluator = CandidateEvaluator(
            base_plan(), two_knob_space(),
            objective(400_000.0, 800_000.0, 1_200_000.0),
            runs=2, base_seed=7)
        result = GridSearch(num_requests=300).run(evaluator)
        crossing = [t for t in result.trials
                    if t.capacity.interpolated_capacity_qps is not None]
        assert crossing, "expected at least one interpolated crossing"
        for trial in crossing:
            assert trial.score == \
                trial.capacity.interpolated_capacity_qps
            assert trial.capacity.capacity_qps < trial.score

    def test_evaluation_order_does_not_change_scores(self):
        """Seeds derive from candidate identity, not trial order."""
        space = two_knob_space()
        obj = objective(400_000.0)

        def scores_for(assignments):
            evaluator = CandidateEvaluator(
                base_plan(), space, obj, runs=2, base_seed=7)
            return {t.label: t.score for t in evaluator.evaluate_many(
                assignments, num_requests=100)}

        forward = scores_for(space.grid())
        backward = scores_for(list(reversed(space.grid())))
        assert forward == backward


DETERMINISM_SCRIPT = textwrap.dedent("""\
    import json, sys
    from repro.api import experiment
    from repro.tune import (BoolTunable, CandidateEvaluator,
                            CapacityObjective, CategoricalTunable,
                            RandomSearch, SearchSpace,
                            SuccessiveHalving)
    space = SearchSpace(tunables=(
        BoolTunable(name="smt", field="hardware.server.smt"),
        CategoricalTunable(
            name="gov", field="hardware.server.frequency_governor",
            values=("powersave", "performance")),
    ))
    plan = experiment("memcached").client("LP").build()
    obj = CapacityObjective(qps_list=(400000.0, 800000.0),
                            qos_target_us=400.0)
    out = {}
    res = RandomSearch(samples=3, seed=11, num_requests=60).run(
        CandidateEvaluator(plan, space, obj, runs=1, base_seed=5))
    out["random"] = [(t.label, t.score) for t in res.trials]
    res = SuccessiveHalving(budget0=30, eta=2, seed=11).run(
        CandidateEvaluator(plan, space, obj, runs=1, base_seed=5))
    out["halving"] = [(t.label, t.rung, t.num_requests, t.score)
                      for t in res.trials]
    out["best"] = res.best.label
    json.dump(out, sys.stdout, sort_keys=True)
""")


class TestCrossProcessDeterminism:
    def run_child(self, hashseed):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC
        env["PYTHONHASHSEED"] = str(hashseed)
        proc = subprocess.run(
            [sys.executable, "-c", DETERMINISM_SCRIPT],
            capture_output=True, text=True, env=env, timeout=120)
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout)

    def test_hostile_hash_seeds_agree(self):
        """Trial order, scores, and the winner survive hash
        randomization -- nothing leans on dict/set iteration order."""
        assert self.run_child(0) == self.run_child(424242)


RESUME_SCRIPT = textwrap.dedent("""\
    import os, signal, sys
    from repro.api import experiment
    from repro.campaign.store import ResultStore
    from repro.tune import (BoolTunable, CandidateEvaluator,
                            CapacityObjective, CategoricalTunable,
                            GridSearch, SearchSpace)
    space = SearchSpace(tunables=(
        BoolTunable(name="smt", field="hardware.server.smt"),
        CategoricalTunable(
            name="gov", field="hardware.server.frequency_governor",
            values=("powersave", "performance")),
    ))
    plan = experiment("memcached").client("LP").build()
    obj = CapacityObjective(qps_list=(400000.0, 800000.0),
                            qos_target_us=400.0)
    kill_after = int(sys.argv[2])
    done = 0
    def progress(outcome, completed, total):
        global done
        done += 1
        if done >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
    with ResultStore(sys.argv[1]) as store:
        evaluator = CandidateEvaluator(plan, space, obj, runs=1,
                                       base_seed=5, store=store)
        GridSearch(num_requests=60).run(evaluator, progress=progress)
""")


class TestKillAndResume:
    def test_sigkilled_search_resumes_from_store(self, tmp_path):
        """A killed search re-executes only the missing conditions."""
        store_path = str(tmp_path / "resume.sqlite")
        kill_after = 3
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC
        proc = subprocess.run(
            [sys.executable, "-c", RESUME_SCRIPT, store_path,
             str(kill_after)],
            capture_output=True, text=True, env=env, timeout=120)
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        space = two_knob_space()
        obj = objective(400_000.0, 800_000.0)
        total = space.size() * len(obj.qps_list)
        with ResultStore(store_path) as store:
            survived = store.count()
            # persist_batch=1: everything finished before the kill
            # is on disk.
            assert 1 <= survived < total
            evaluator = CandidateEvaluator(
                base_plan(), space, obj, runs=1, base_seed=5,
                store=store)
            result = GridSearch(num_requests=60).run(evaluator)
            assert result.cache_hits == survived
            assert result.executed == total - survived
            assert result.failed == 0
            # And the store is now complete: one more run is all hits.
            evaluator = CandidateEvaluator(
                base_plan(), space, obj, runs=1, base_seed=5,
                store=store)
            rerun = GridSearch(num_requests=60).run(evaluator)
        assert rerun.executed == 0
        assert rerun.cache_hits == total
        assert rerun.best.label == result.best.label
        assert rerun.best.score == result.best.score

    def test_identical_rerun_is_all_cache_hits(self, tmp_path):
        store_path = str(tmp_path / "memo.sqlite")
        space = two_knob_space()
        obj = objective(400_000.0)
        with ResultStore(store_path) as store:
            cold = GridSearch(num_requests=50).run(CandidateEvaluator(
                base_plan(), space, obj, runs=1, base_seed=5,
                store=store))
            warm = GridSearch(num_requests=50).run(CandidateEvaluator(
                base_plan(), space, obj, runs=1, base_seed=5,
                store=store))
        assert cold.executed == space.size()
        assert cold.cache_hits == 0
        assert warm.executed == 0
        assert warm.cache_hits == space.size()
        assert [t.score for t in warm.trials] == \
            [t.score for t in cold.trials]
