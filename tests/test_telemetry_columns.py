"""Tests for the struct-of-arrays sample buffer."""

import numpy as np
import pytest

from repro.server.request import Request
from repro.telemetry import COLUMN_FIELDS, SampleColumns


def make_request(index):
    return Request(
        request_id=index, size_kb=0.5,
        intended_send_us=10.0 * index,
        actual_send_us=10.0 * index + 1.0,
        server_arrival_us=10.0 * index + 2.0,
        queue_wait_us=0.5, service_us=3.0,
        server_departure_us=10.0 * index + 5.0,
        client_nic_us=10.0 * index + 6.0,
        measured_complete_us=10.0 * index + 8.0)


class TestSampleColumns:
    def test_starts_empty(self):
        assert len(SampleColumns()) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SampleColumns(capacity=0)

    def test_append_stores_every_field(self):
        columns = SampleColumns()
        request = make_request(3)
        columns.append(request)
        for name in COLUMN_FIELDS:
            assert columns.column(name)[0] == getattr(request, name)

    def test_column_is_trimmed_to_size(self):
        columns = SampleColumns(capacity=16)
        for index in range(5):
            columns.append(make_request(index))
        assert columns.column("intended_send_us").shape == (5,)

    def test_grows_by_doubling(self):
        columns = SampleColumns(capacity=2)
        for index in range(9):
            columns.append(make_request(index))
        assert len(columns) == 9
        assert columns.capacity == 16
        np.testing.assert_array_equal(
            columns.column("request_id"), np.arange(9.0))

    def test_growth_preserves_recorded_values(self):
        columns = SampleColumns(capacity=1)
        requests = [make_request(index) for index in range(7)]
        for request in requests:
            columns.append(request)
        sends = columns.column("intended_send_us")
        assert list(sends) == [r.intended_send_us for r in requests]

    def test_row_materializes_a_request(self):
        columns = SampleColumns()
        original = make_request(4)
        columns.append(original)
        rebuilt = columns.row(0)
        for name in COLUMN_FIELDS:
            assert getattr(rebuilt, name) == getattr(original, name)
        rebuilt.validate()

    def test_row_out_of_range(self):
        columns = SampleColumns()
        columns.append(make_request(0))
        with pytest.raises(IndexError):
            columns.row(1)
        with pytest.raises(IndexError):
            columns.row(-1)

    def test_rows_iterates_in_record_order(self):
        columns = SampleColumns()
        for index in (2, 0, 1):
            columns.append(make_request(index))
        assert [r.request_id for r in columns.rows()] == [2, 0, 1]

    def test_unknown_column_rejected(self):
        with pytest.raises(KeyError):
            SampleColumns().column("no_such_field")
