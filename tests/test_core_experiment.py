"""Tests for the experiment runner and result summaries."""

import pytest

from repro.config.presets import HP_CLIENT
from repro.core.experiment import Experiment, run_experiment
from repro.errors import ExperimentError
from repro.workloads.memcached import build_memcached_testbed


def builder(seed):
    return build_memcached_testbed(
        seed=seed, client_config=HP_CLIENT, qps=50_000,
        num_requests=120)


class TestExperiment:
    def test_collects_one_sample_per_run(self):
        result = run_experiment(builder, runs=6, base_seed=0)
        assert len(result.runs) == 6
        assert result.avg_samples().shape == (6,)
        assert result.p99_samples().shape == (6,)

    def test_runs_use_distinct_seeds(self):
        result = run_experiment(builder, runs=5, base_seed=100)
        assert [run.seed for run in result.runs] == [
            100, 101, 102, 103, 104]

    def test_samples_are_reproducible(self):
        a = run_experiment(builder, runs=4, base_seed=7)
        b = run_experiment(builder, runs=4, base_seed=7)
        assert (a.avg_samples() == b.avg_samples()).all()

    def test_label_defaults_to_workload(self):
        result = run_experiment(builder, runs=2)
        assert result.label == "memcached"
        assert result.workload == "memcached"
        assert result.qps == 50_000

    def test_custom_label(self):
        result = run_experiment(builder, runs=2, label="HP-SMToff")
        assert result.label == "HP-SMToff"

    def test_median_cis_computed(self):
        result = run_experiment(builder, runs=10)
        ci = result.median_avg_ci()
        assert ci.lower <= ci.point <= ci.upper
        p99_ci = result.median_p99_ci()
        assert p99_ci.point > ci.point

    def test_stats_and_stdev(self):
        result = run_experiment(builder, runs=8)
        stats = result.avg_stats()
        assert stats.count == 8
        assert result.stdev_avg_us() == pytest.approx(stats.std)

    def test_true_samples_below_measured(self):
        result = run_experiment(builder, runs=5)
        assert (result.true_avg_samples()
                <= result.avg_samples() + 1e-9).all()

    def test_zero_runs_rejected(self):
        with pytest.raises(ExperimentError):
            Experiment(builder, runs=0)

    def test_utilization_averaged(self):
        result = run_experiment(builder, runs=3)
        assert 0.0 < result.mean_server_utilization() < 1.0
