"""Tests for FIFO queues and server pools."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import FifoQueue, ServerPool


class TestFifoQueue:
    def test_fifo_order(self, sim):
        queue = FifoQueue(sim)
        queue.push("a")
        queue.push("b")
        assert queue.pop()[1] == "a"
        assert queue.pop()[1] == "b"

    def test_pop_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            FifoQueue(sim).pop()

    def test_wait_time_accounting(self, sim):
        queue = FifoQueue(sim)
        queue.push("a")
        sim.schedule(5.0, lambda: None)
        sim.run()
        waited, item = queue.pop()
        assert waited == pytest.approx(5.0)
        assert item == "a"

    def test_capacity_drops(self, sim):
        queue = FifoQueue(sim, capacity=1)
        assert queue.push("a") is True
        assert queue.push("b") is False
        assert queue.dropped == 1
        assert len(queue) == 1

    def test_negative_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            FifoQueue(sim, capacity=-1)

    def test_peek_wait_empty_is_zero(self, sim):
        assert FifoQueue(sim).peek_wait_us() == 0.0

    def test_total_enqueued_counts_accepted_only(self, sim):
        queue = FifoQueue(sim, capacity=1)
        queue.push("a")
        queue.push("b")
        assert queue.total_enqueued == 1


class TestServerPool:
    @staticmethod
    def fixed_service(duration):
        return lambda job, server, idle_gap: duration

    def test_single_job_completes(self, sim):
        pool = ServerPool(sim, num_servers=1)
        done = []
        pool.submit("job", self.fixed_service(10.0),
                    lambda job, waited: done.append((job, waited, sim.now)))
        sim.run()
        assert done == [("job", 0.0, 10.0)]

    def test_parallel_servers_no_queueing(self, sim):
        pool = ServerPool(sim, num_servers=2)
        finish_times = []
        for index in range(2):
            pool.submit(index, self.fixed_service(10.0),
                        lambda job, waited: finish_times.append(sim.now))
        sim.run()
        assert finish_times == [10.0, 10.0]

    def test_queueing_when_saturated(self, sim):
        pool = ServerPool(sim, num_servers=1)
        waits = []
        for index in range(3):
            pool.submit(index, self.fixed_service(10.0),
                        lambda job, waited: waits.append(waited))
        sim.run()
        assert waits == [0.0, 10.0, 20.0]

    def test_busy_time_and_utilization(self, sim):
        pool = ServerPool(sim, num_servers=2)
        pool.submit("x", self.fixed_service(10.0), lambda j, w: None)
        sim.run()
        assert pool.busy_time_us == pytest.approx(10.0)
        # 10 us busy over 10 us elapsed on 2 servers = 50%.
        assert pool.utilization() == pytest.approx(0.5)

    def test_idle_gap_passed_to_service_fn(self, sim):
        pool = ServerPool(sim, num_servers=1)
        gaps = []

        def service(job, server, idle_gap):
            gaps.append(idle_gap)
            return 1.0

        pool.submit("a", service, lambda j, w: None)
        sim.run()
        sim.schedule(9.0, lambda: pool.submit("b", service,
                                              lambda j, w: None))
        sim.run()
        assert gaps[0] == pytest.approx(0.0)
        # Second job arrives at t=10; the worker went idle at t=1.
        assert gaps[1] == pytest.approx(9.0)

    def test_negative_service_time_rejected(self, sim):
        pool = ServerPool(sim, num_servers=1)
        # The idle-server fast path dispatches immediately, so the
        # invalid service time surfaces at submit time.
        with pytest.raises(SimulationError):
            pool.submit("bad", self.fixed_service(-1.0),
                        lambda j, w: None)

    def test_zero_servers_rejected(self, sim):
        with pytest.raises(SimulationError):
            ServerPool(sim, num_servers=0)

    def test_jobs_completed_counter(self, sim):
        pool = ServerPool(sim, num_servers=4)
        for index in range(7):
            pool.submit(index, self.fixed_service(1.0), lambda j, w: None)
        sim.run()
        assert pool.jobs_completed == 7

    def test_lifo_server_reuse_keeps_hot_worker(self, sim):
        """The most recently freed server picks up the next job."""
        pool = ServerPool(sim, num_servers=3)
        pool.submit("a", self.fixed_service(5.0), lambda j, w: None)
        sim.run()
        gaps = []

        def service(job, server, idle_gap):
            gaps.append(idle_gap)
            return 1.0

        sim.schedule(1.0, lambda: pool.submit("b", service,
                                              lambda j, w: None))
        sim.run()
        # The worker that finished "a" at t=5 serves "b" at t=6.
        assert gaps == [pytest.approx(1.0)]
