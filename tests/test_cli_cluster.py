"""The ``repro cluster`` subcommand and cluster campaign plumbing."""

import pytest

from repro.cli import main as cli_main


class TestClusterCommand:
    def test_runs_and_reports_per_node_utilization(self, capsys):
        exit_code = cli_main([
            "cluster", "--workload", "memcached",
            "--nodes", "4", "--policy", "power-of-two",
            "--runs", "2", "--requests", "120",
            "--qps", "200000", "--seed", "3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "4 nodes, power-of-two" in out
        assert "median p99 latency" in out
        assert "per-node utilization" in out
        for node in range(4):
            assert f"node {node}:" in out

    def test_default_qps_scales_with_nodes(self, capsys):
        exit_code = cli_main([
            "cluster", "--workload", "synthetic",
            "--nodes", "2", "--policy", "round-robin",
            "--runs", "1", "--requests", "60"])
        out = capsys.readouterr().out
        assert exit_code == 0
        # synthetic default_qps is 10K; two nodes double the offer.
        assert "@ 20000 QPS" in out

    def test_sharded_topology_runs(self, capsys):
        exit_code = cli_main([
            "cluster", "--workload", "hdsearch",
            "--nodes", "1", "--shards", "4", "--fanout", "2",
            "--quorum", "1", "--runs", "1", "--requests", "60",
            "--qps", "1000"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "4 shards (fanout 2, quorum 1)" in out

    def test_unknown_workload_fails_cleanly(self, capsys):
        exit_code = cli_main([
            "cluster", "--workload", "memcachex",
            "--runs", "1", "--requests", "30"])
        err = capsys.readouterr().err
        assert exit_code == 1
        assert "unknown workload" in err

    def test_invalid_topology_fails_cleanly(self, capsys):
        exit_code = cli_main([
            "cluster", "--workload", "memcached",
            "--shards", "2", "--fanout", "3",
            "--runs", "1", "--requests", "30"])
        err = capsys.readouterr().err
        assert exit_code == 1
        assert "fanout" in err

    def test_deterministic_across_invocations(self, capsys):
        argv = ["cluster", "--workload", "memcached", "--nodes", "2",
                "--policy", "random", "--runs", "1",
                "--requests", "80", "--qps", "100000"]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert cli_main(argv) == 0
        assert capsys.readouterr().out == first


class TestClusterCampaignCli:
    def test_cluster_preset_runs_and_resumes(self, tmp_path, capsys):
        store = str(tmp_path / "cluster.sqlite")
        argv = ["campaign", "run", "--preset", "memcached-cluster",
                "--store", store, "--qps", "200000",
                "--runs", "1", "--requests", "60", "--serial"]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert "2 conditions" in first
        assert cli_main(argv) == 0
        rerun = capsys.readouterr().out
        assert "2 cached, 0 executed" in rerun

    def test_plan_dry_run_shows_cluster_topology(self, capsys):
        exit_code = cli_main([
            "plan", "--preset", "hdsearch-cluster",
            "--runs", "2", "--qps", "1000"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "cluster topology:" in out
        assert "8 shards (fanout 4, quorum 4)" in out
        assert "nothing executed" in out


class TestClusterStudyFigures:
    def test_cluster_study_grid_and_rendering(self):
        from repro.analysis.figures import (
            cluster_study,
            render_cluster_series,
        )

        grid = cluster_study(
            workload="synthetic",
            nodes_list=(2, 3),
            policies=("round-robin", "least-outstanding"),
            qps_list=(10_000,),
            runs=1, num_requests=60)
        assert grid.qps_list == (10_000.0,)
        for nodes in (2, 3):
            for policy in ("round-robin", "least-outstanding"):
                value = grid.series(nodes, policy, "p99")[0][1]
                assert value > 0
                low, high = grid.node_utilization_spread(
                    nodes, policy, 10_000.0)
                assert 0 < low <= high < 1
        text = render_cluster_series(grid, "p99")
        assert "2n-round-robin" in text
        assert "3n-least-outstanding" in text

    def test_cluster_study_rejects_multiple_clients(self):
        from repro.analysis.figures import cluster_study
        from repro.config.presets import HP_CLIENT, LP_CLIENT
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="exactly one"):
            cluster_study(
                workload="synthetic", nodes_list=(2,),
                policies=("round-robin",), qps_list=(10_000,),
                runs=1, num_requests=40,
                clients={"LP": LP_CLIENT, "HP": HP_CLIENT})

    def test_cluster_study_unknown_cell_raises(self):
        from repro.analysis.figures import ClusterStudyGrid
        from repro.errors import ExperimentError

        grid = ClusterStudyGrid(
            workload="memcached", nodes_list=(2,),
            policies=("random",))
        with pytest.raises(ExperimentError, match="no result"):
            grid.result(2, "random", 1_000.0)
