"""Tests for repetition-count methods (equation 3 and CONFIRM)."""

import numpy as np
import pytest

from repro.errors import InsufficientSamplesError, StatisticsError
from repro.stats.littles_law import (
    concurrency,
    feasible_qps,
    max_qps_for_concurrency,
)
from repro.stats.repetitions import (
    confirm_repetitions,
    parametric_repetitions,
)


class TestParametricRepetitions:
    def test_textbook_example(self):
        """Jain's formula: n = (100*z*s / (r*x))^2."""
        samples = [98.0, 100.0, 102.0]  # mean 100, std 2
        n = parametric_repetitions(samples, error_pct=1.0)
        expected = (100 * 1.96 * 2.0 / (1.0 * 100.0)) ** 2
        assert n == int(np.ceil(expected))

    def test_tight_data_needs_one_run(self):
        samples = [100.0, 100.001, 99.999, 100.0]
        assert parametric_repetitions(samples) == 1

    def test_noisier_data_needs_more(self, rng):
        quiet = rng.normal(100, 0.5, size=50)
        noisy = rng.normal(100, 10, size=50)
        assert (parametric_repetitions(noisy)
                > parametric_repetitions(quiet))

    def test_smaller_error_needs_more(self, rng):
        samples = rng.normal(100, 5, size=50)
        assert (parametric_repetitions(samples, error_pct=0.5)
                > parametric_repetitions(samples, error_pct=5.0))

    def test_invalid_error_rejected(self):
        with pytest.raises(StatisticsError):
            parametric_repetitions([1.0, 2.0], error_pct=0.0)

    def test_zero_mean_rejected(self):
        with pytest.raises(StatisticsError):
            parametric_repetitions([-1.0, 1.0])


class TestConfirm:
    def test_tight_data_converges_at_minimum(self, rng):
        samples = rng.normal(100, 0.1, size=50)
        n = confirm_repetitions(samples, rng=rng, draws=50)
        assert n == 10  # the method's floor

    def test_noisy_data_needs_more_or_fails(self, rng):
        samples = rng.lognormal(4.6, 0.5, size=50)
        n = confirm_repetitions(samples, rng=rng, draws=50)
        assert n is None or n > 10

    def test_none_when_never_converging(self, rng):
        samples = rng.lognormal(0.0, 2.0, size=30)
        n = confirm_repetitions(samples, error=0.001, rng=rng, draws=30)
        assert n is None

    def test_result_bounded_by_sample_count(self, rng):
        samples = rng.normal(100, 3, size=40)
        n = confirm_repetitions(samples, rng=rng, draws=30)
        assert n is None or 10 <= n <= 40

    def test_deterministic_with_seeded_rng(self):
        samples = np.random.default_rng(3).normal(100, 2, size=50)
        a = confirm_repetitions(
            samples, rng=np.random.default_rng(1), draws=50)
        b = confirm_repetitions(
            samples, rng=np.random.default_rng(1), draws=50)
        assert a == b

    def test_too_few_samples_rejected(self):
        with pytest.raises(InsufficientSamplesError):
            confirm_repetitions([1.0] * 5)

    def test_invalid_error_rejected(self, rng):
        with pytest.raises(StatisticsError):
            confirm_repetitions(rng.normal(size=20), error=0.0)


class TestLittlesLaw:
    def test_concurrency(self):
        # 10K QPS at 1 ms latency: 10 requests in flight.
        assert concurrency(10_000, 1_000.0) == pytest.approx(10.0)

    def test_max_qps(self):
        # 10 workers at 100 us: up to 100K QPS.
        assert max_qps_for_concurrency(100.0, 10) == pytest.approx(
            100_000.0)

    def test_feasible_filter_matches_paper_method(self):
        """The paper examines only QPS with concurrency < cores (10)
        for all delay values; at 410 us the cap is ~24.4K."""
        candidates = [5_000, 10_000, 15_000, 20_000, 25_000]
        kept = feasible_qps(candidates, service_us=410.0, workers=10)
        assert kept == [5_000, 10_000, 15_000, 20_000]

    def test_invalid_inputs(self):
        with pytest.raises(StatisticsError):
            concurrency(-1, 10)
        with pytest.raises(StatisticsError):
            max_qps_for_concurrency(0.0, 10)
        with pytest.raises(StatisticsError):
            max_qps_for_concurrency(10.0, 0)
