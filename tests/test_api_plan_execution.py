"""Execution parity for the plan layer.

Golden-value tests prove plan-built memcached/hdsearch/synthetic runs
are bit-identical to the pre-redesign ``build_*_testbed`` path at
seed 1234; deprecation tests prove the legacy shims still behave
identically while warning.
"""

import pytest

from repro.api import experiment
from repro.campaign.spec import CampaignSpec
from repro.config.presets import LP_CLIENT, SERVER_BASELINE
from repro.core.experiment import run_experiment
from repro.workloads.hdsearch import build_hdsearch_testbed
from repro.workloads.memcached import build_memcached_testbed
from repro.workloads.socialnetwork import build_socialnetwork_testbed
from repro.workloads.synthetic import build_synthetic_testbed

from test_golden_values import GOLDEN, GOLDEN_SEED

LEGACY_BUILDERS = {
    "memcached": build_memcached_testbed,
    "hdsearch": build_hdsearch_testbed,
    "socialnetwork": build_socialnetwork_testbed,
    "synthetic": build_synthetic_testbed,
}


def golden_plan(workload):
    qps, num_requests = GOLDEN[workload][:2]
    return (experiment(workload)
            .client(LP_CLIENT)
            .server(SERVER_BASELINE)
            .load(qps=qps, num_requests=num_requests)
            .policy(runs=1, base_seed=GOLDEN_SEED)
            .build())


@pytest.mark.parametrize("workload", sorted(GOLDEN))
def test_plan_run_matches_golden_values(workload):
    """Plan-built runs reproduce the pinned seed-1234 metrics."""
    _, _, avg, p99, true_avg, true_p99, requests = GOLDEN[workload]
    result = golden_plan(workload).run()
    metrics = result.runs[0]
    assert metrics.avg_us == avg
    assert metrics.p99_us == p99
    assert metrics.true_avg_us == true_avg
    assert metrics.true_p99_us == true_p99
    assert metrics.requests == requests


@pytest.mark.parametrize("workload", sorted(GOLDEN))
def test_plan_testbed_matches_legacy_builder(workload):
    """plan.testbed(seed) == build_*_testbed(seed, ...), bit for bit."""
    qps, num_requests = GOLDEN[workload][:2]
    with pytest.warns(DeprecationWarning):
        legacy = LEGACY_BUILDERS[workload](
            seed=GOLDEN_SEED, client_config=LP_CLIENT,
            server_config=SERVER_BASELINE, qps=qps,
            num_requests=num_requests).run()
    via_plan = golden_plan(workload).testbed(GOLDEN_SEED).run()
    assert via_plan == legacy


def test_condition_to_plan_matches_direct_plan_execution():
    """Campaign conditions compile to plans that produce the same
    samples as hand-built plans with the same knobs."""
    spec = CampaignSpec(
        name="parity", workload="synthetic",
        conditions={"baseline": SERVER_BASELINE},
        qps_list=(5_000,), clients={"LP": LP_CLIENT},
        runs=2, num_requests=50, extra={"added_delay_us": 100.0})
    condition = spec.expand()[0]
    plan = condition.to_plan()
    assert plan.workload.param_dict() == {"added_delay_us": 100.0}
    assert plan.policy.base_seed == condition.base_seed
    assert plan.label == condition.label

    direct = (experiment("synthetic", added_delay_us=100.0)
              .client(LP_CLIENT, label="LP")
              .server(SERVER_BASELINE, label="baseline")
              .load(qps=5_000, num_requests=50)
              .policy(runs=2, base_seed=condition.base_seed,
                      label=condition.label)
              .build())
    assert direct == plan
    a, b = plan.run(), direct.run()
    assert a.avg_samples().tolist() == b.avg_samples().tolist()


def test_warmup_fraction_in_extra_routes_to_load_spec():
    spec = CampaignSpec(
        name="warmup", workload="memcached",
        conditions={"baseline": SERVER_BASELINE},
        qps_list=(50_000,), clients={"LP": LP_CLIENT},
        runs=1, num_requests=50, extra={"warmup_fraction": 0.2})
    plan = spec.expand()[0].to_plan()
    assert plan.load.warmup_fraction == 0.2
    assert plan.workload.param_dict() == {}


class TestCampaignExtraValidation:
    def base(self, **overrides):
        defaults = dict(
            name="v", workload="memcached",
            conditions={"baseline": SERVER_BASELINE},
            qps_list=(50_000,), clients={"LP": LP_CLIENT},
            runs=1, num_requests=50)
        defaults.update(overrides)
        return defaults

    def test_unknown_extra_key_fails_at_construction(self):
        from repro.errors import SpecValidationError

        with pytest.raises(SpecValidationError,
                           match="unknown parameter 'added_delay_us'"):
            CampaignSpec(**self.base(extra={"added_delay_us": 10.0}))

    def test_valid_extra_key_accepted(self):
        spec = CampaignSpec(**self.base(
            workload="synthetic", extra={"added_delay_us": 10}))
        assert spec.extra == {"added_delay_us": 10.0}

    def test_out_of_range_warmup_fails_at_construction(self):
        """warmup_fraction bounds match LoadSpec's [0, 1): the spec
        must fail at construction, not at plan-build time in a
        worker."""
        from repro.errors import SpecValidationError

        with pytest.raises(SpecValidationError, match="warmup_fraction"):
            CampaignSpec(**self.base(extra={"warmup_fraction": 1.0}))

    def test_int_params_survive_extra_normalization(self):
        """Campaign extra canonicalizes ints to floats for hashing;
        int-kind schema parameters must still validate and come back
        as ints."""
        from repro.workloads.registry import (
            ParamSpec,
            WorkloadDefinition,
            register_workload,
            workload_by_name,
        )

        register_workload(WorkloadDefinition(
            name="int-param-test",
            builder=workload_by_name("memcached").builder,
            params=(ParamSpec("fanout", int, 4, minimum=1),),
        ), replace=True)
        spec = CampaignSpec(**self.base(
            workload="int-param-test", extra={"fanout": 4}))
        assert spec.extra == {"fanout": 4}
        assert isinstance(spec.extra["fanout"], int)
        from repro.errors import SpecValidationError

        with pytest.raises(SpecValidationError, match="must be int"):
            CampaignSpec(**self.base(
                workload="int-param-test", extra={"fanout": 4.5}))

    def test_unregistered_workload_defers_validation(self):
        """A workload only the executing process registers must still
        construct -- validation then happens at plan-build time."""
        spec = CampaignSpec(**self.base(
            workload="not-imported-here", extra={"anything": 1}))
        with pytest.raises(Exception, match="unknown workload"):
            spec.expand()[0].to_plan()


class TestDeprecatedShims:
    def test_run_experiment_warns_and_behaves(self):
        plan = golden_plan("memcached").with_policy(runs=2)
        via_plan = plan.run()
        with pytest.warns(DeprecationWarning,
                          match="run_experiment.*deprecated"):
            legacy = run_experiment(
                plan.builder(), runs=2, base_seed=GOLDEN_SEED)
        assert legacy.runs == via_plan.runs
        assert legacy.label == via_plan.label

    @pytest.mark.parametrize("workload", sorted(LEGACY_BUILDERS))
    def test_builder_shims_warn(self, workload):
        qps = {"memcached": 50_000, "hdsearch": 1_000,
               "socialnetwork": 200, "synthetic": 5_000}[workload]
        with pytest.warns(DeprecationWarning,
                          match=f"build_{workload}_testbed.*deprecated"):
            testbed = LEGACY_BUILDERS[workload](
                seed=1, client_config=LP_CLIENT, qps=qps,
                num_requests=30)
        assert testbed.workload == workload
