"""Tests for the DVFS frequency model."""


import pytest

from repro.config.knobs import (
    FrequencyDriver,
    FrequencyGovernor,
    HardwareConfig,
    UncorePolicy,
)
from repro.config.presets import HP_CLIENT, LP_CLIENT
from repro.errors import ConfigurationError
from repro.hardware.frequency import FrequencyModel


def make_config(driver, governor, turbo=True):
    return HardwareConfig(
        name="test",
        enabled_cstates=frozenset({"C0", "C1"}),
        frequency_driver=driver,
        frequency_governor=governor,
        turbo=turbo,
        smt=True,
        uncore=UncorePolicy.FIXED,
        tickless=True,
    )


class TestInitialFrequency:
    def test_performance_starts_at_max(self, params):
        model = FrequencyModel(params, HP_CLIENT)
        assert model.current_freq_ghz == pytest.approx(
            params.turbo_freq_ghz)

    def test_performance_without_turbo_caps_at_nominal(self, params):
        config = make_config(FrequencyDriver.ACPI_CPUFREQ,
                             FrequencyGovernor.PERFORMANCE, turbo=False)
        model = FrequencyModel(params, config)
        assert model.current_freq_ghz == pytest.approx(
            params.nominal_freq_ghz)

    def test_powersave_starts_at_min(self, params):
        model = FrequencyModel(params, LP_CLIENT)
        assert model.current_freq_ghz == pytest.approx(
            params.min_freq_ghz)


class TestGovernorEvaluation:
    def test_no_reevaluation_within_interval(self, params):
        model = FrequencyModel(params, LP_CLIENT)
        model.account_busy(5_000.0)
        decision = model.evaluate(params.governor_interval_us / 2)
        assert decision.transition_stall_us == 0.0
        assert decision.freq_ghz == pytest.approx(params.min_freq_ghz)

    def test_pstate_powersave_ramps_with_utilization(self, params):
        model = FrequencyModel(params, LP_CLIENT)
        interval = params.governor_interval_us
        model.account_busy(interval)  # 100% utilization
        decision = model.evaluate(interval)
        # intel_pstate powersave caps at nominal, not turbo.
        assert decision.freq_ghz == pytest.approx(
            params.nominal_freq_ghz)
        assert decision.transition_stall_us == pytest.approx(
            params.dvfs_transition_us)

    def test_idle_powersave_stays_at_min(self, params):
        model = FrequencyModel(params, LP_CLIENT)
        decision = model.evaluate(params.governor_interval_us)
        assert decision.freq_ghz == pytest.approx(params.min_freq_ghz)
        assert decision.transition_stall_us == 0.0

    def test_acpi_powersave_pins_minimum(self, params):
        config = make_config(FrequencyDriver.ACPI_CPUFREQ,
                             FrequencyGovernor.POWERSAVE)
        model = FrequencyModel(params, config)
        model.account_busy(params.governor_interval_us)
        decision = model.evaluate(params.governor_interval_us)
        assert decision.freq_ghz == pytest.approx(params.min_freq_ghz)

    def test_performance_never_transitions(self, params):
        model = FrequencyModel(params, HP_CLIENT)
        for window in range(1, 5):
            model.account_busy(100.0)
            decision = model.evaluate(
                window * params.governor_interval_us)
            assert decision.transition_stall_us == 0.0
        assert model.transitions == 0

    def test_ondemand_jumps_to_max_above_threshold(self, params):
        config = make_config(FrequencyDriver.ACPI_CPUFREQ,
                             FrequencyGovernor.ONDEMAND)
        model = FrequencyModel(params, config)
        model.account_busy(0.9 * params.governor_interval_us)
        decision = model.evaluate(params.governor_interval_us)
        assert decision.freq_ghz == pytest.approx(params.turbo_freq_ghz)

    def test_schedutil_scales_with_headroom(self, params):
        config = make_config(FrequencyDriver.ACPI_CPUFREQ,
                             FrequencyGovernor.SCHEDUTIL)
        model = FrequencyModel(params, config)
        model.account_busy(0.5 * params.governor_interval_us)
        decision = model.evaluate(params.governor_interval_us)
        expected = min(params.turbo_freq_ghz,
                       1.25 * 0.5 * params.turbo_freq_ghz)
        assert decision.freq_ghz == pytest.approx(expected)

    def test_utilization_window_resets(self, params):
        model = FrequencyModel(params, LP_CLIENT)
        interval = params.governor_interval_us
        model.account_busy(interval)
        model.evaluate(interval)  # ramps up, resets window
        decision = model.evaluate(2 * interval)  # idle window
        assert decision.freq_ghz == pytest.approx(params.min_freq_ghz)

    def test_negative_busy_rejected(self, params):
        model = FrequencyModel(params, LP_CLIENT)
        with pytest.raises(ConfigurationError):
            model.account_busy(-1.0)

    def test_transition_counter(self, params):
        model = FrequencyModel(params, LP_CLIENT)
        interval = params.governor_interval_us
        model.account_busy(interval)
        model.evaluate(interval)
        model.evaluate(2 * interval)
        assert model.transitions == 2  # up then back down
