"""Tests for confidence intervals (paper equations 1-2)."""

import numpy as np
import pytest

from repro.errors import InsufficientSamplesError, StatisticsError
from repro.stats.ci import (
    ConfidenceInterval,
    intervals_overlap,
    nonparametric_median_ci,
    parametric_mean_ci,
    z_score,
)


class TestZScore:
    def test_95_percent(self):
        assert z_score(0.95) == pytest.approx(1.96, abs=1e-3)

    def test_99_percent(self):
        assert z_score(0.99) == pytest.approx(2.576, abs=1e-3)

    def test_arbitrary_level_via_scipy(self):
        assert z_score(0.98) == pytest.approx(2.326, abs=1e-2)

    def test_invalid_confidence(self):
        with pytest.raises(StatisticsError):
            z_score(1.0)


class TestNonparametricCI:
    def test_paper_example_shape(self, rng):
        """A sampled median of ~20 with a tight CI around it."""
        samples = rng.normal(20.0, 0.5, size=200)
        interval = nonparametric_median_ci(samples)
        assert interval.contains(float(np.median(samples)))
        assert interval.kind == "nonparametric-median"
        assert 19 < interval.point < 21

    def test_bounds_are_order_statistics(self):
        samples = list(range(1, 101))  # 1..100, median 50.5
        interval = nonparametric_median_ci(samples, confidence=0.95)
        n, z = 100, 1.96
        lower_rank = int(np.floor((n - z * np.sqrt(n)) / 2))
        upper_rank = int(np.ceil(1 + (n + z * np.sqrt(n)) / 2))
        assert interval.lower == float(lower_rank)      # value == rank
        assert interval.upper == float(upper_rank)

    def test_median_always_inside(self, rng):
        for _ in range(20):
            samples = rng.exponential(10.0, size=30)
            interval = nonparametric_median_ci(samples)
            assert interval.contains(float(np.median(samples)))

    def test_too_few_samples_raise(self):
        with pytest.raises(InsufficientSamplesError):
            nonparametric_median_ci([1.0, 2.0, 3.0])

    def test_higher_confidence_wider(self, rng):
        samples = rng.normal(100, 10, size=200)
        narrow = nonparametric_median_ci(samples, confidence=0.90)
        wide = nonparametric_median_ci(samples, confidence=0.99)
        assert wide.width >= narrow.width

    def test_coverage_on_known_distribution(self):
        """~95% of CIs on exponential samples must contain the true
        median (a property-style coverage check)."""
        true_median = 10.0 * np.log(2.0)
        hits = 0
        trials = 300
        rng = np.random.default_rng(0)
        for _ in range(trials):
            samples = rng.exponential(10.0, size=50)
            interval = nonparametric_median_ci(samples)
            if interval.contains(true_median):
                hits += 1
        assert hits / trials > 0.88


class TestParametricCI:
    def test_mean_inside(self, rng):
        samples = rng.normal(50, 5, size=100)
        interval = parametric_mean_ci(samples)
        assert interval.contains(float(np.mean(samples)))

    def test_width_shrinks_with_n(self, rng):
        small = parametric_mean_ci(rng.normal(50, 5, size=20))
        large = parametric_mean_ci(rng.normal(50, 5, size=2000))
        assert large.width < small.width

    def test_zero_variance_collapses(self):
        interval = parametric_mean_ci([5.0] * 10)
        assert interval.width == pytest.approx(0.0)


class TestIntervalOperations:
    def make(self, lower, upper):
        return ConfidenceInterval(
            point=(lower + upper) / 2, lower=lower, upper=upper,
            confidence=0.95, kind="test")

    def test_overlap_symmetric(self):
        a, b = self.make(0, 10), self.make(5, 15)
        assert a.overlaps(b) and b.overlaps(a)
        assert intervals_overlap(a, b)

    def test_disjoint(self):
        a, b = self.make(0, 10), self.make(11, 20)
        assert not a.overlaps(b)

    def test_touching_counts_as_overlap(self):
        a, b = self.make(0, 10), self.make(10, 20)
        assert a.overlaps(b)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(StatisticsError):
            self.make(10, 0)

    def test_relative_error(self):
        interval = ConfidenceInterval(
            point=100.0, lower=99.0, upper=101.0,
            confidence=0.95, kind="test")
        assert interval.relative_error() == pytest.approx(0.01)

    def test_format_readable(self):
        interval = self.make(19.8, 20.2)
        assert "[19.80, 20.20]" in interval.format("us")

    def test_nan_input_rejected(self):
        with pytest.raises(StatisticsError):
            nonparametric_median_ci([1.0, float("nan")] * 20)
