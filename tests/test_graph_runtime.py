"""Service-graph runtime: cache tiers, resilient edges, testbeds.

Unit-level semantics of :class:`~repro.graph.cache.CacheTier` and
:class:`~repro.graph.resilience.ResilientDispatcher` against stub
backends (hit/miss costs, bounded retry, hedged duplicates, the
straggler drain contract), plus the assembled
:func:`~repro.graph.testbed.build_graph_testbed` path end to end:
per-tier counters harvested into ``RunMetrics.obs_metrics``, trace
spans, and campaign execution over a graph condition.
"""

import pytest

from repro.api import experiment
from repro.errors import ConfigurationError
from repro.graph import CacheTier, ResilientDispatcher
from repro.graph.spec import ResiliencePolicy
from repro.server.request import Request
from repro.sim.random import RandomStreams


class StubBackend:
    """Serves each attempt with the next delay from a schedule."""

    def __init__(self, sim, delays):
        self._sim = sim
        self.delays = list(delays)
        self.served = 0

    def submit(self, request, done_fn, *ctx):
        delay = self.delays[min(self.served, len(self.delays) - 1)]
        self.served += 1

        def finish(job):
            job.service_us += delay
            job.server_departure_us = self._sim.now
            done_fn(job, *ctx)

        self._sim.post(delay, finish, request)


def run_one(sim, service, request_id=0):
    done = []
    root = Request(request_id=request_id, size_kb=2.0)
    service.submit(root, done.append)
    sim.run()
    return root, done


class TestCacheTier:
    def test_sure_hit_short_circuits_downstream(self, sim):
        backend = StubBackend(sim, [100.0])
        cache = CacheTier(sim, backend, hit_ratio=1.0,
                          hit_service_us=4.0)
        root, done = run_one(sim, cache)
        assert len(done) == 1
        assert backend.served == 0
        assert cache.hits == 1 and cache.misses == 0
        assert root.service_us == 4.0
        assert root.server_departure_us == 4.0

    def test_sure_miss_traverses_then_fills(self, sim):
        backend = StubBackend(sim, [100.0])
        cache = CacheTier(sim, backend, hit_ratio=0.0,
                          hit_service_us=4.0, fill_penalty_us=6.0)
        root, done = run_one(sim, cache)
        assert len(done) == 1
        assert backend.served == 1
        assert cache.misses == 1 and cache.hits == 0
        assert root.service_us == 106.0
        assert root.server_departure_us == 106.0

    def test_fractional_ratio_requires_rng(self, sim):
        with pytest.raises(ConfigurationError, match="rng"):
            CacheTier(sim, StubBackend(sim, [1.0]), hit_ratio=0.5)

    def test_hit_ratio_bounds(self, sim):
        with pytest.raises(ConfigurationError, match="hit_ratio"):
            CacheTier(sim, StubBackend(sim, [1.0]), hit_ratio=1.5)

    def test_empirical_rate_tracks_configured_ratio(self, sim):
        rng = RandomStreams(7).stream("cache")
        backend = StubBackend(sim, [10.0])
        cache = CacheTier(sim, backend, hit_ratio=0.8, rng=rng)
        for i in range(500):
            run_one(sim, cache, request_id=i)
        assert cache.lookups == 500
        assert cache.hit_rate == pytest.approx(0.8, abs=0.06)
        assert backend.served == cache.misses

    def test_degenerate_ratios_consume_no_draws(self, sim):
        rng = RandomStreams(7).stream("cache")
        before = rng.next_uniform()
        cache = CacheTier(sim, StubBackend(sim, [1.0]),
                          hit_ratio=1.0, rng=rng)
        run_one(sim, cache)
        # The stream advanced by exactly the one draw we took above.
        replay = RandomStreams(7).stream("cache")
        assert replay.next_uniform() == before
        assert rng.next_uniform() != before


class TestResilientDispatcher:
    def test_fast_response_uses_no_resilience(self, sim):
        backend = StubBackend(sim, [10.0])
        edge = ResilientDispatcher(
            sim, backend,
            ResiliencePolicy(timeout_us=100.0, max_retries=2))
        root, done = run_one(sim, edge)
        assert len(done) == 1
        assert edge.retries == 0 and edge.timeouts == 0
        assert edge.attempts_issued == 1
        assert root.service_us == 10.0

    def test_timeout_retries_and_straggler_drains(self, sim):
        backend = StubBackend(sim, [100.0, 10.0])
        edge = ResilientDispatcher(
            sim, backend,
            ResiliencePolicy(timeout_us=50.0, max_retries=1))
        root, done = run_one(sim, edge)
        # Retry launched at t=50, finishes at t=60; the original
        # attempt lands at t=100 and must drain without a second
        # completion or double-counted timings.
        assert len(done) == 1
        assert root.server_departure_us == 60.0
        assert root.service_us == 10.0
        assert edge.timeouts == 1 and edge.retries == 1
        assert edge.attempts_issued == 2
        assert edge.attempts_completed == 2
        assert edge.roots_completed == 1

    def test_backoff_delays_the_retry(self, sim):
        backend = StubBackend(sim, [100.0, 10.0])
        edge = ResilientDispatcher(
            sim, backend,
            ResiliencePolicy(timeout_us=50.0, max_retries=1,
                             backoff_us=25.0))
        root, _ = run_one(sim, edge)
        assert root.server_departure_us == 85.0

    def test_retry_budget_is_bounded(self, sim):
        backend = StubBackend(sim, [100.0])
        edge = ResilientDispatcher(
            sim, backend,
            ResiliencePolicy(timeout_us=30.0, max_retries=2))
        root, done = run_one(sim, edge)
        # Two retries fire (t=30, t=60); the third attempt arms no
        # timeout, so the first landing attempt (t=100) wins.
        assert len(done) == 1
        assert edge.retries == 2
        assert edge.attempts_issued == 3
        assert root.server_departure_us == 100.0

    def test_hedge_completion_is_min_of_attempts(self, sim):
        backend = StubBackend(sim, [100.0, 10.0])
        edge = ResilientDispatcher(
            sim, backend,
            ResiliencePolicy(hedge_after_us=20.0, hedges=1))
        root, done = run_one(sim, edge)
        # Hedge launches at t=20 and lands at t=30, beating the
        # primary (t=100): completion is the min of the attempts.
        assert len(done) == 1
        assert root.server_departure_us == 30.0
        assert edge.hedges == 1
        assert edge.attempts_completed == 2

    def test_fast_primary_cancels_the_hedge(self, sim):
        backend = StubBackend(sim, [10.0])
        edge = ResilientDispatcher(
            sim, backend,
            ResiliencePolicy(hedge_after_us=20.0, hedges=1))
        _, done = run_one(sim, edge)
        assert len(done) == 1
        assert edge.hedges == 0
        assert edge.attempts_issued == 1


class TestGraphTestbedEndToEnd:
    def plan(self, **policy):
        return (experiment("memcached")
                .client("LP")
                .graph("memcached-cached")
                .load(qps=50_000, num_requests=200)
                .policy(runs=1, base_seed=3, **policy)
                .build())

    def test_counters_surface_in_obs_metrics(self):
        result = self.plan(metrics=True).run()
        metrics = dict(result.runs[0].obs_metrics)
        assert metrics["cache.cache.hits"] > 0
        assert metrics["cache.cache.misses"] > 0
        assert 0.0 < metrics["cache.cache.hit_rate"] < 1.0
        assert metrics["cache.cache.hit_rate"] == pytest.approx(
            0.8, abs=0.1)
        # Stragglers drain: every attempt issued eventually lands.
        assert (metrics["resilience.leaf.attempts_completed"]
                == metrics["resilience.leaf.attempts_issued"])
        assert (metrics["resilience.leaf.calls"]
                == metrics["cache.cache.misses"])

    def test_trace_spans_cover_cache_and_hedge(self):
        plan = self.plan(trace=True)
        testbed = plan.testbed(3)
        testbed.run()
        tracer = testbed.sim.obs.tracer
        assert tracer.spans_named("cache.hit")
        assert tracer.spans_named("cache.miss")
        # Hedges are load-dependent; the span taxonomy must at least
        # be registered for them when any fired.
        edge_spans = tracer.spans_named("hedge")
        assert isinstance(edge_spans, list)

    def test_unobserved_run_matches_observed(self):
        plain = self.plan().run()
        observed = self.plan(metrics=True).run()
        assert plain.runs[0].avg_us == observed.runs[0].avg_us
        assert plain.runs[0].p99_us == observed.runs[0].p99_us

    def test_campaign_executes_graph_condition(self):
        from repro.campaign.executor import execute_campaign
        from repro.campaign.spec import CampaignSpec
        from repro.config.presets import LP_CLIENT, SERVER_BASELINE
        from repro.graph.presets import graph_preset

        spec = CampaignSpec(
            name="graph-exec", workload="memcached",
            conditions={"baseline": SERVER_BASELINE},
            qps_list=(50_000.0,), clients={"LP": LP_CLIENT},
            runs=1, num_requests=60,
            graph=graph_preset("memcached-cached"))
        outcome = execute_campaign(spec, max_workers=1,
                                   fail_fast=True)
        assert outcome.ok
        statuses = [o.status for o in outcome.outcomes]
        assert statuses == ["done"]
        assert outcome.outcomes[0].result.runs[0].avg_us > 0
