"""ClusterSpec validation, round-trips, and hash participation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ClusterSpec, ExperimentPlan, experiment
from repro.campaign.spec import CampaignSpec, ConditionSpec
from repro.cluster import (
    LB_POLICIES,
    SINGLE_SERVER,
    as_cluster_spec,
)
from repro.config.presets import LP_CLIENT, SERVER_BASELINE
from repro.errors import SpecValidationError


class TestClusterSpecValidation:
    def test_default_is_single_server(self):
        spec = ClusterSpec()
        assert spec.is_single_server
        assert spec.describe() == "single-server"
        assert spec.total_stations == 1

    @pytest.mark.parametrize("field,value", [
        ("nodes", 0), ("nodes", -1),
        ("replication", 0),
        ("shards", 0),
        ("fanout", -1),
        ("quorum", -1),
    ])
    def test_lower_bounds(self, field, value):
        with pytest.raises(SpecValidationError, match=field):
            ClusterSpec(**{field: value})

    def test_fanout_cannot_exceed_shards(self):
        with pytest.raises(SpecValidationError, match="fanout"):
            ClusterSpec(shards=4, fanout=5)

    def test_quorum_cannot_exceed_fanout(self):
        with pytest.raises(SpecValidationError, match="quorum"):
            ClusterSpec(shards=8, fanout=4, quorum=5)

    def test_quorum_bounded_by_all_shards_when_fanout_defaults(self):
        spec = ClusterSpec(shards=8, quorum=8)
        assert spec.effective_quorum == 8
        with pytest.raises(SpecValidationError, match="quorum"):
            ClusterSpec(shards=8, quorum=9)

    def test_unknown_policy_rejected(self):
        with pytest.raises(SpecValidationError, match="lb_policy"):
            ClusterSpec(nodes=2, lb_policy="fastest-first")

    @pytest.mark.parametrize("value", [2.5, True, "four"])
    def test_non_integer_counts_rejected(self, value):
        with pytest.raises(SpecValidationError):
            ClusterSpec(nodes=value)

    def test_integral_float_normalizes_to_int(self):
        spec = ClusterSpec(nodes=4.0)
        assert spec.nodes == 4
        assert isinstance(spec.nodes, int)

    def test_effective_fanout_and_quorum_resolution(self):
        spec = ClusterSpec(shards=8)
        assert spec.effective_fanout == 8
        assert spec.effective_quorum == 8
        spec = ClusterSpec(shards=8, fanout=4, quorum=3)
        assert spec.effective_fanout == 4
        assert spec.effective_quorum == 3

    def test_explicit_all_shard_fanout_canonicalizes_to_default(self):
        """fanout=shards and fanout=0 are the same deployment, so
        they must be the same spec (and the same content-hash key)."""
        explicit = ClusterSpec(shards=8, fanout=8)
        assert explicit == ClusterSpec(shards=8)
        assert explicit.fanout == 0
        assert explicit.effective_fanout == 8

    def test_explicit_full_quorum_canonicalizes_to_default(self):
        explicit = ClusterSpec(shards=8, fanout=4, quorum=4)
        assert explicit == ClusterSpec(shards=8, fanout=4)
        assert explicit.quorum == 0
        assert explicit.effective_quorum == 4

    def test_dead_lb_policy_canonicalizes_away(self):
        """A topology with no balancer (one node, no replicas) must
        not key the store differently per never-used policy."""
        sharded = ClusterSpec(shards=8, lb_policy="least-outstanding")
        assert sharded == ClusterSpec(shards=8)
        assert sharded.lb_policy == "round-robin"
        # With a balancer present the policy is load-bearing.
        assert (ClusterSpec(nodes=2, lb_policy="least-outstanding")
                != ClusterSpec(nodes=2))

    def test_canonical_fanout_merge_semantics_are_pinned(self):
        """fanout=shards canonicalizes to 'all shards', so a later
        shard-count merge keeps fanning out to all of them; a fanout
        pinned below shards survives the merge (documented in
        ClusterSpec.__post_init__)."""
        all_shards = ClusterSpec(shards=4, fanout=4)
        assert all_shards.with_fields(shards=8).effective_fanout == 8
        pinned = ClusterSpec(shards=4, fanout=3)
        assert pinned.with_fields(shards=8).effective_fanout == 3

    def test_total_stations(self):
        spec = ClusterSpec(nodes=2, shards=3, replication=2)
        assert spec.total_stations == 12

    def test_describe_mentions_every_dimension(self):
        spec = ClusterSpec(nodes=2, shards=4, fanout=2, quorum=1,
                           replication=3, lb_policy="random")
        text = spec.describe()
        assert "2 nodes" in text
        assert "random" in text
        assert "4 shards" in text
        assert "fanout 2" in text
        assert "quorum 1" in text
        assert "x3 replicas" in text


class TestClusterSpecRoundTrip:
    def test_dict_round_trip(self):
        spec = ClusterSpec(nodes=4, shards=2, fanout=2, quorum=1,
                           replication=2, lb_policy="power-of-two")
        assert ClusterSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecValidationError, match="nodez"):
            ClusterSpec.from_dict({"nodez": 4})

    def test_partial_dict_uses_defaults(self):
        spec = ClusterSpec.from_dict({"nodes": 3})
        assert spec == ClusterSpec(nodes=3)

    def test_as_cluster_spec_coercions(self):
        assert as_cluster_spec(None) is SINGLE_SERVER
        spec = ClusterSpec(nodes=2)
        assert as_cluster_spec(spec) is spec
        assert as_cluster_spec({"nodes": 2}) == spec
        with pytest.raises(SpecValidationError, match="cluster"):
            as_cluster_spec(4)

    def test_with_fields_revalidates(self):
        spec = ClusterSpec(shards=4, fanout=2)
        assert spec.with_fields(fanout=4).effective_fanout == 4
        with pytest.raises(SpecValidationError):
            spec.with_fields(fanout=9)

    @given(
        nodes=st.integers(1, 6),
        replication=st.integers(1, 3),
        shards=st.integers(1, 6),
        fanout_frac=st.floats(0.0, 1.0),
        quorum_frac=st.floats(0.0, 1.0),
        policy=st.sampled_from(LB_POLICIES),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, nodes, replication, shards,
                                 fanout_frac, quorum_frac, policy):
        fanout = int(round(fanout_frac * shards))
        quorum = int(round(quorum_frac * (fanout or shards)))
        spec = ClusterSpec(nodes=nodes, replication=replication,
                           shards=shards, fanout=fanout,
                           quorum=quorum, lb_policy=policy)
        assert ClusterSpec.from_dict(spec.to_dict()) == spec
        assert 1 <= spec.effective_quorum <= spec.effective_fanout \
            <= spec.shards


class TestPlanIntegration:
    def plan(self, **cluster_fields):
        builder = (experiment("memcached")
                   .client(LP_CLIENT)
                   .load(qps=100_000, num_requests=100)
                   .policy(runs=1))
        if cluster_fields:
            builder = builder.cluster(**cluster_fields)
        return builder.build()

    def test_default_plan_omits_cluster_key(self):
        """Pre-cluster plan hashes -- and therefore every stored
        campaign row -- must be untouched by the new field."""
        assert "cluster" not in self.plan().to_dict()

    def test_cluster_plan_round_trips(self):
        plan = self.plan(nodes=4, lb_policy="least-outstanding")
        assert ExperimentPlan.from_json(plan.to_json()) == plan
        assert plan.cluster.nodes == 4

    def test_builder_accepts_spec_object(self):
        spec = ClusterSpec(nodes=2)
        plan = (experiment("memcached").client(LP_CLIENT)
                .cluster(spec).build())
        assert plan.cluster == spec

    def test_builder_rejects_spec_and_fields(self):
        with pytest.raises(SpecValidationError, match="not both"):
            experiment("memcached").cluster(ClusterSpec(), nodes=2)

    def test_with_cluster_merges_fields(self):
        plan = self.plan(nodes=4)
        merged = plan.with_cluster(lb_policy="random")
        assert merged.cluster.nodes == 4
        assert merged.cluster.lb_policy == "random"

    def test_with_cluster_no_args_resets_to_single(self):
        plan = self.plan(nodes=4)
        assert plan.with_cluster().cluster.is_single_server

    def test_with_cluster_rejects_spec_and_fields(self):
        with pytest.raises(SpecValidationError, match="not both"):
            self.plan().with_cluster(ClusterSpec(), nodes=2)

    def test_hash_tracks_every_cluster_field(self):
        base = self.plan(nodes=4, shards=2)
        seen = {base.content_hash(), self.plan().content_hash()}
        for changed in (
                base.with_cluster(nodes=5),
                base.with_cluster(replication=2),
                base.with_cluster(shards=4),
                base.with_cluster(shards=2, fanout=1),
                base.with_cluster(shards=2, fanout=2, quorum=1),
                base.with_cluster(lb_policy="random"),
        ):
            digest = changed.content_hash()
            assert digest not in seen
            seen.add(digest)

    def test_explicit_single_server_hashes_like_default(self):
        explicit = self.plan(nodes=1)
        assert explicit.content_hash() == self.plan().content_hash()


class TestCampaignIntegration:
    def base(self, **overrides):
        defaults = dict(
            name="cluster-test", workload="memcached",
            conditions={"baseline": SERVER_BASELINE},
            qps_list=(100_000,), clients={"LP": LP_CLIENT},
            runs=1, num_requests=50)
        defaults.update(overrides)
        return CampaignSpec(**defaults)

    def test_single_server_cluster_normalizes_to_none(self):
        spec = self.base(cluster=ClusterSpec())
        assert spec.cluster is None
        assert "cluster" not in spec.to_dict()

    def test_expand_propagates_cluster(self):
        cluster = ClusterSpec(nodes=3, lb_policy="random")
        spec = self.base(cluster=cluster)
        condition = spec.expand()[0]
        assert condition.cluster == cluster
        assert condition.to_plan().cluster == cluster

    def test_campaign_dict_round_trip_with_cluster(self):
        spec = self.base(cluster={"nodes": 2, "shards": 2})
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt.cluster == spec.cluster
        assert rebuilt.content_hash() == spec.content_hash()

    def test_condition_dict_round_trip_with_cluster(self):
        spec = self.base(cluster=ClusterSpec(nodes=2))
        condition = spec.expand()[0]
        rebuilt = ConditionSpec.from_dict(condition.to_dict())
        assert rebuilt == condition
        assert rebuilt.content_hash() == condition.content_hash()

    def test_cluster_changes_campaign_hash(self):
        plain = self.base()
        clustered = self.base(cluster=ClusterSpec(nodes=2))
        assert plain.content_hash() != clustered.content_hash()
