"""Tests for configuration knobs, presets and validation."""

import pytest

from repro.config.knobs import (
    ALL_CSTATES,
    FrequencyDriver,
    FrequencyGovernor,
    HardwareConfig,
    UncorePolicy,
)
from repro.config.presets import (
    HP_CLIENT,
    LP_CLIENT,
    SERVER_BASELINE,
    client_by_name,
    server_with_c1e,
    server_with_smt,
)
from repro.config.validate import config_warnings, validate_config
from repro.errors import ConfigurationError


class TestHardwareConfig:
    def test_unknown_cstate_rejected(self):
        with pytest.raises(ConfigurationError):
            LP_CLIENT.with_cstates({"C0", "C7"})

    def test_c0_cannot_be_disabled(self):
        with pytest.raises(ConfigurationError):
            LP_CLIENT.with_cstates({"C1"})

    def test_idle_poll_detection(self):
        assert HP_CLIENT.idle_poll
        assert not LP_CLIENT.idle_poll

    def test_deepest_cstate(self):
        assert LP_CLIENT.deepest_cstate() == "C6"
        assert SERVER_BASELINE.deepest_cstate() == "C1"
        assert HP_CLIENT.deepest_cstate() == "C0"

    def test_with_smt_toggles(self):
        assert SERVER_BASELINE.with_smt(True).smt
        assert not SERVER_BASELINE.with_smt(False).smt

    def test_renamed(self):
        assert LP_CLIENT.renamed("other").name == "other"

    def test_knob_settings_covers_all_seven_knobs(self):
        knobs = LP_CLIENT.knob_settings()
        assert set(knobs) == {
            "C-states", "Frequency Driver", "Frequency Governor",
            "Turbo", "SMT", "Uncore Frequency", "Tickless",
        }

    def test_knob_settings_idle_poll_prints_off(self):
        assert HP_CLIENT.knob_settings()["C-states"] == "off"

    def test_describe_mentions_name(self):
        assert LP_CLIENT.describe().startswith("LP:")

    def test_configs_are_immutable(self):
        with pytest.raises(Exception):
            LP_CLIENT.smt = False


class TestPresets:
    """The presets must match Table II exactly."""

    def test_lp_matches_table2(self):
        assert LP_CLIENT.enabled_cstates == frozenset(ALL_CSTATES)
        assert LP_CLIENT.frequency_driver is FrequencyDriver.INTEL_PSTATE
        assert LP_CLIENT.frequency_governor is FrequencyGovernor.POWERSAVE
        assert LP_CLIENT.turbo and LP_CLIENT.smt
        assert LP_CLIENT.uncore is UncorePolicy.DYNAMIC
        assert not LP_CLIENT.tickless

    def test_hp_matches_table2(self):
        assert HP_CLIENT.enabled_cstates == frozenset({"C0"})
        assert HP_CLIENT.frequency_driver is FrequencyDriver.ACPI_CPUFREQ
        assert HP_CLIENT.frequency_governor is FrequencyGovernor.PERFORMANCE
        assert HP_CLIENT.turbo and HP_CLIENT.smt
        assert HP_CLIENT.uncore is UncorePolicy.FIXED
        assert not HP_CLIENT.tickless

    def test_server_baseline_matches_table2(self):
        assert SERVER_BASELINE.enabled_cstates == frozenset({"C0", "C1"})
        assert (SERVER_BASELINE.frequency_driver
                is FrequencyDriver.ACPI_CPUFREQ)
        assert (SERVER_BASELINE.frequency_governor
                is FrequencyGovernor.PERFORMANCE)
        assert not SERVER_BASELINE.turbo
        assert not SERVER_BASELINE.smt
        assert SERVER_BASELINE.uncore is UncorePolicy.FIXED
        assert SERVER_BASELINE.tickless

    def test_server_smt_variants(self):
        assert server_with_smt(True).smt
        assert not server_with_smt(False).smt
        assert server_with_smt(True).name == "server-SMTon"

    def test_server_c1e_variants(self):
        assert "C1E" in server_with_c1e(True).enabled_cstates
        assert "C1E" not in server_with_c1e(False).enabled_cstates

    def test_client_by_name(self):
        assert client_by_name("lp") is LP_CLIENT
        assert client_by_name("HP") is HP_CLIENT
        with pytest.raises(ValueError):
            client_by_name("xx")


class TestValidation:
    def test_presets_validate(self):
        for config in (LP_CLIENT, HP_CLIENT, SERVER_BASELINE,
                       server_with_smt(True), server_with_c1e(True)):
            assert validate_config(config) is config

    def test_c6_requires_c1(self):
        config = HardwareConfig(
            name="bad",
            enabled_cstates=frozenset({"C0", "C6"}),
            frequency_driver=FrequencyDriver.ACPI_CPUFREQ,
            frequency_governor=FrequencyGovernor.PERFORMANCE,
            turbo=False, smt=False,
            uncore=UncorePolicy.FIXED, tickless=True)
        with pytest.raises(ConfigurationError):
            validate_config(config)

    def test_pstate_rejects_ondemand(self):
        config = HardwareConfig(
            name="bad",
            enabled_cstates=frozenset({"C0", "C1"}),
            frequency_driver=FrequencyDriver.INTEL_PSTATE,
            frequency_governor=FrequencyGovernor.ONDEMAND,
            turbo=False, smt=False,
            uncore=UncorePolicy.FIXED, tickless=True)
        with pytest.raises(ConfigurationError):
            validate_config(config)

    def test_acpi_powersave_warns(self):
        config = HardwareConfig(
            name="slow",
            enabled_cstates=frozenset({"C0", "C1"}),
            frequency_driver=FrequencyDriver.ACPI_CPUFREQ,
            frequency_governor=FrequencyGovernor.POWERSAVE,
            turbo=False, smt=False,
            uncore=UncorePolicy.FIXED, tickless=True)
        warnings = config_warnings(config)
        assert any("minimum frequency" in w for w in warnings)

    def test_hp_warns_about_pointless_nohz(self):
        from dataclasses import replace
        config = replace(HP_CLIENT, tickless=True)
        warnings = config_warnings(config)
        assert any("no observable effect" in w for w in warnings)

    def test_lp_warns_about_turbo_powersave(self):
        warnings = config_warnings(LP_CLIENT)
        assert any("turbo" in w for w in warnings)
