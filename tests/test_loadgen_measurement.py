"""Tests for points of measurement and run-sample collection."""

import numpy as np
import pytest

from repro.errors import InsufficientSamplesError
from repro.loadgen.measurement import (
    PointOfMeasurement,
    RunSamples,
    latency_at_point,
)
from repro.parameters import DEFAULT_PARAMETERS
from repro.server.request import Request


def make_request(index, send=0.0, nic=50.0, measured=80.0):
    return Request(
        request_id=index,
        intended_send_us=send, actual_send_us=send,
        client_nic_us=nic, measured_complete_us=measured)


class TestLatencyAtPoint:
    def test_nic_point_is_true_latency(self):
        request = make_request(0)
        assert latency_at_point(
            request, PointOfMeasurement.NIC) == pytest.approx(50.0)

    def test_kernel_point_adds_rx_stack(self):
        request = make_request(0)
        assert latency_at_point(
            request, PointOfMeasurement.KERNEL) == pytest.approx(
            50.0 + DEFAULT_PARAMETERS.kernel_stack_us)

    def test_generator_point_is_measured(self):
        request = make_request(0)
        assert latency_at_point(
            request, PointOfMeasurement.GENERATOR) == pytest.approx(80.0)

    def test_ordering_nic_kernel_generator(self):
        request = make_request(0)
        nic = latency_at_point(request, PointOfMeasurement.NIC)
        kernel = latency_at_point(request, PointOfMeasurement.KERNEL)
        generator = latency_at_point(
            request, PointOfMeasurement.GENERATOR)
        assert nic < kernel < generator


class TestRunSamples:
    def test_warmup_trims_leading_fraction(self):
        samples = RunSamples(warmup_fraction=0.2)
        for index in range(10):
            samples.record(make_request(index, send=float(index)))
        assert samples.warmup_count == 2
        assert len(samples.measured_requests()) == 8

    def test_measured_requests_sorted_by_send(self):
        samples = RunSamples(warmup_fraction=0.0)
        samples.record(make_request(1, send=10.0))
        samples.record(make_request(0, send=5.0))
        sends = [r.intended_send_us for r in samples.measured_requests()]
        assert sends == [5.0, 10.0]

    def test_average_and_percentile(self):
        samples = RunSamples(warmup_fraction=0.0)
        for index in range(100):
            samples.record(make_request(
                index, send=float(index),
                measured=float(index) + 10.0 + index * 0.0))
        assert samples.average_latency_us() == pytest.approx(10.0)
        assert samples.percentile_latency_us(99.0) == pytest.approx(10.0)

    def test_percentile_validation(self):
        samples = RunSamples(warmup_fraction=0.0)
        samples.record(make_request(0))
        with pytest.raises(ValueError):
            samples.percentile_latency_us(0.0)

    def test_empty_samples_raise(self):
        with pytest.raises(InsufficientSamplesError):
            RunSamples().latencies_us()

    def test_invalid_warmup_fraction(self):
        with pytest.raises(ValueError):
            RunSamples(warmup_fraction=1.0)

    def test_send_errors_and_overheads(self):
        samples = RunSamples(warmup_fraction=0.0)
        request = Request(
            request_id=0, intended_send_us=0.0, actual_send_us=5.0,
            client_nic_us=50.0, measured_complete_us=80.0)
        samples.record(request)
        assert samples.send_errors_us()[0] == pytest.approx(5.0)
        # overhead = measured (80-5=75) - true (50-5=45) = 30.
        assert samples.client_overheads_us()[0] == pytest.approx(30.0)


class TestColumnarSamples:
    """The struct-of-arrays backing of RunSamples."""

    def test_requests_are_not_retained(self):
        samples = RunSamples(warmup_fraction=0.0)
        request = make_request(0)
        samples.record(request)
        rebuilt = samples.measured_requests()[0]
        assert rebuilt is not request
        assert rebuilt.measured_complete_us == request.measured_complete_us

    def test_measured_count_matches_measured_requests(self):
        samples = RunSamples(warmup_fraction=0.2)
        for index in range(10):
            samples.record(make_request(index, send=float(index)))
        assert samples.measured_count == 8
        assert samples.measured_count == len(samples.measured_requests())

    def test_columns_expose_raw_timestamps(self):
        samples = RunSamples(warmup_fraction=0.0)
        samples.record(make_request(0, send=5.0))
        assert samples.columns.column("intended_send_us")[0] == 5.0

    def test_latency_arrays_are_cached(self):
        samples = RunSamples(warmup_fraction=0.0)
        for index in range(4):
            samples.record(make_request(index, send=float(index)))
        assert samples.latencies_us() is samples.latencies_us()
        assert samples.send_errors_us() is samples.send_errors_us()

    def test_record_invalidates_caches(self):
        samples = RunSamples(warmup_fraction=0.0)
        samples.record(make_request(0, send=0.0, measured=80.0))
        first = samples.latencies_us()
        samples.record(make_request(1, send=1.0, measured=90.0))
        second = samples.latencies_us()
        assert first is not second
        assert len(second) == 2

    def test_cached_arrays_are_read_only(self):
        samples = RunSamples(warmup_fraction=0.0)
        samples.record(make_request(0))
        array = samples.latencies_us()
        with pytest.raises(ValueError):
            array[0] = 0.0

    def test_kernel_point_is_vectorized_identically(self):
        samples = RunSamples(warmup_fraction=0.0)
        for index in range(3):
            samples.record(make_request(index, send=float(index)))
        kernel = samples.latencies_us(PointOfMeasurement.KERNEL)
        nic = samples.latencies_us(PointOfMeasurement.NIC)
        expected = nic + DEFAULT_PARAMETERS.kernel_stack_us
        assert np.array_equal(kernel, expected)

    def test_sort_order_matches_object_path(self):
        """Ties on intended send keep insertion order (stable sort),
        exactly like the seed's sorted(key=...)."""
        samples = RunSamples(warmup_fraction=0.0)
        samples.record(make_request(0, send=10.0))
        samples.record(make_request(1, send=5.0))
        samples.record(make_request(2, send=5.0))
        ids = [r.request_id for r in samples.measured_requests()]
        assert ids == [1, 2, 0]
