"""End-to-end tests for the ``repro campaign`` CLI."""

import json

import pytest

from repro.cli import main as cli_main

SPEC = {
    "name": "cli-campaign",
    "workload": "memcached",
    "clients": ["LP"],
    "conditions": {
        "SMToff": {"knob": "smt", "enabled": False},
        "SMTon": {"knob": "smt", "enabled": True},
    },
    "qps": [10_000, 50_000],
    "runs": 2,
    "num_requests": 60,
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(SPEC))
    return str(path)


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "results.sqlite")


class TestCampaignRun:
    def test_run_executes_and_persists(self, spec_file, store_path,
                                       capsys):
        assert cli_main(["campaign", "run", "--spec", spec_file,
                         "--store", store_path, "--serial"]) == 0
        output = capsys.readouterr().out
        assert "4 conditions, 0 cached, 4 executed, 0 failed" in output
        assert "LP-SMToff @ 10000" in output

    def test_rerun_is_all_cache_hits(self, spec_file, store_path,
                                     capsys):
        cli_main(["campaign", "run", "--spec", spec_file,
                  "--store", store_path, "--serial"])
        capsys.readouterr()
        assert cli_main(["campaign", "run", "--spec", spec_file,
                         "--store", store_path, "--serial"]) == 0
        assert ("4 conditions, 4 cached, 0 executed, 0 failed"
                in capsys.readouterr().out)

    def test_parallel_run(self, spec_file, store_path, capsys):
        assert cli_main(["campaign", "run", "--spec", spec_file,
                         "--store", store_path, "--workers", "2"]) == 0
        assert "4 executed" in capsys.readouterr().out

    def test_preset_with_overrides(self, store_path, capsys):
        assert cli_main([
            "campaign", "run", "--preset", "memcached-smt",
            "--qps", "10000", "--runs", "2", "--requests", "60",
            "--seed", "3", "--store", store_path, "--serial"]) == 0
        assert "2 conditions" not in capsys.readouterr().out  # 2x2x1=4

    def test_unknown_preset_fails_cleanly(self, store_path, capsys):
        assert cli_main(["campaign", "run", "--preset", "nope",
                         "--store", store_path, "--serial"]) == 1
        assert "unknown campaign preset" in capsys.readouterr().err

    def test_failed_condition_sets_exit_code(self, tmp_path, store_path,
                                             capsys):
        bad = dict(SPEC, workload="not-registered")
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        assert cli_main(["campaign", "run", "--spec", str(path),
                         "--store", store_path, "--serial"]) == 1
        assert "failed" in capsys.readouterr().out


class TestCampaignStatus:
    def test_status_reports_completion(self, spec_file, store_path,
                                       capsys):
        cli_main(["campaign", "run", "--spec", spec_file,
                  "--store", store_path, "--serial"])
        capsys.readouterr()
        assert cli_main(["campaign", "status", "--spec", spec_file,
                         "--store", store_path]) == 0
        output = capsys.readouterr().out
        assert "complete:   4/4" in output

    def test_status_lists_missing_conditions(self, tmp_path, spec_file,
                                             store_path, capsys):
        cli_main(["campaign", "run", "--spec", spec_file,
                  "--store", store_path, "--serial"])
        wider = dict(SPEC, qps=[10_000, 50_000, 100_000])
        wider_file = tmp_path / "wider.json"
        wider_file.write_text(json.dumps(wider))
        capsys.readouterr()
        assert cli_main(["campaign", "status", "--spec",
                         str(wider_file), "--store", store_path]) == 0
        output = capsys.readouterr().out
        assert "complete:   4/6" in output
        assert "LP-SMToff @ 100000" in output

    def test_status_without_store_errors(self, spec_file, tmp_path,
                                         capsys):
        assert cli_main([
            "campaign", "status", "--spec", spec_file,
            "--store", str(tmp_path / "absent.sqlite")]) == 1
        assert "no result store" in capsys.readouterr().err


class TestCampaignReport:
    def test_report_renders_series_from_store(self, spec_file,
                                              store_path, capsys):
        cli_main(["campaign", "run", "--spec", spec_file,
                  "--store", store_path, "--serial"])
        capsys.readouterr()
        assert cli_main(["campaign", "report", "--spec", spec_file,
                         "--store", store_path, "--metric", "p99"]) == 0
        output = capsys.readouterr().out
        assert "memcached: p99 (us) by QPS" in output
        assert "LP-SMToff" in output
        # Two conditions: the ratio table renders too.
        assert "SMToff/SMTon ratio" in output

    def test_stdev_metric_skips_the_ratio_section(self, spec_file,
                                                  store_path, capsys):
        cli_main(["campaign", "run", "--spec", spec_file,
                  "--store", store_path, "--serial"])
        capsys.readouterr()
        assert cli_main(["campaign", "report", "--spec", spec_file,
                         "--store", store_path,
                         "--metric", "stdev_avg"]) == 0
        output = capsys.readouterr().out
        assert "memcached: stdev_avg (us) by QPS" in output
        assert "ratio" not in output

    def test_report_on_incomplete_campaign_errors(self, tmp_path,
                                                  spec_file, store_path,
                                                  capsys):
        cli_main(["campaign", "run", "--spec", spec_file,
                  "--store", store_path, "--serial"])
        wider = dict(SPEC, qps=[10_000, 50_000, 100_000])
        wider_file = tmp_path / "wider.json"
        wider_file.write_text(json.dumps(wider))
        capsys.readouterr()
        assert cli_main(["campaign", "report", "--spec",
                         str(wider_file), "--store", store_path]) == 1
        assert "incomplete" in capsys.readouterr().err

    def test_report_matches_equivalent_study(self, spec_file,
                                             store_path, capsys):
        """The store-backed report equals the figure-study rendering:
        one execution path, one set of seeds."""
        from repro.analysis.figures import (
            memcached_study,
            render_latency_series,
        )

        cli_main(["campaign", "run", "--spec", spec_file,
                  "--store", store_path, "--serial"])
        capsys.readouterr()
        cli_main(["campaign", "report", "--spec", spec_file,
                  "--store", store_path])
        report_table = capsys.readouterr().out.split("\n\n")[0].strip()
        grid = memcached_study(
            knob="smt", qps_list=(10_000, 50_000), runs=2,
            num_requests=60)
        lp_rows = [line for line
                   in render_latency_series(grid, "avg").splitlines()
                   if line.startswith("LP-")]
        for row in lp_rows:
            assert row in report_table
