"""Tests for the vectorized batch-dequeue kernel (repro.sim.kernel).

The acceptance bar throughout is **bit-identity with the reference
engine**: same firing order, same RNG draw order, same float
arithmetic, for any workload and any mix of fast-path and cancellable
events -- including events cancelled while the kernel is mid-batch.
The kernel is an opt-in replacement (``engine="vectorized"``), so a
correctness bug here silently corrupts stored campaign results; these
tests pin the equivalence from the event-loop primitives all the way
to cross-process full-payload hashes under a hostile
``PYTHONHASHSEED``.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.api import ClusterSpec, experiment
from repro.api.specs import RunPolicy
from repro.campaign.serialize import (
    content_hash,
    experiment_result_to_dict,
)
from repro.campaign.spec import ConditionSpec
from repro.config.presets import LP_CLIENT, SERVER_BASELINE
from repro.errors import ExperimentError, SpecValidationError
from repro.sim.engine import Simulator
from repro.sim.kernel import (
    DEFAULT_ENGINE,
    KernelSimulator,
    engine_names,
    make_simulator,
    validate_engine_name,
)
from repro.telemetry.columns import COLUMN_FIELDS
from repro.workloads.registry import builder_by_name

WORKLOADS = ("hdsearch", "memcached", "socialnetwork", "synthetic")

ENGINES = ("reference", "vectorized")


# ---------------------------------------------------------------------------
# Engine registry and spec plumbing
# ---------------------------------------------------------------------------
class TestEngineRegistry:
    def test_both_engines_registered(self):
        assert set(ENGINES) == set(engine_names())
        assert DEFAULT_ENGINE == "reference"

    def test_make_simulator_types(self):
        assert type(make_simulator()) is Simulator
        assert type(make_simulator("reference")) is Simulator
        assert type(make_simulator("vectorized")) is KernelSimulator

    def test_unknown_engine_gets_did_you_mean(self):
        with pytest.raises(SpecValidationError) as exc:
            validate_engine_name("vectorised")
        assert "vectorized" in str(exc.value)

    def test_run_policy_omits_default_engine(self):
        policy = RunPolicy(runs=1, base_seed=7)
        assert policy.engine == DEFAULT_ENGINE
        assert "engine" not in policy.to_dict()
        # Pre-engine payloads (no "engine" key) load as the default.
        assert RunPolicy.from_dict(policy.to_dict()).engine == DEFAULT_ENGINE

    def test_run_policy_round_trips_non_default_engine(self):
        policy = RunPolicy(runs=1, base_seed=7, engine="vectorized")
        data = policy.to_dict()
        assert data["engine"] == "vectorized"
        assert RunPolicy.from_dict(data) == policy

    def test_run_policy_rejects_unknown_engine(self):
        with pytest.raises(SpecValidationError):
            RunPolicy(engine="warp-drive")

    def test_condition_spec_engine_hash_stability(self):
        """An explicit default engine must not perturb content hashes:
        stored pre-engine campaign results stay addressable."""
        def condition(**overrides):
            fields = dict(
                workload="memcached", client_label="LP",
                client_config=LP_CLIENT, condition_label="baseline",
                server_config=SERVER_BASELINE, qps=50_000.0,
                runs=1, num_requests=40, base_seed=7)
            fields.update(overrides)
            return ConditionSpec(**fields)

        base = condition()
        explicit = condition(engine="reference")
        assert explicit.engine is None
        assert content_hash(explicit.to_dict()) == content_hash(base.to_dict())
        vectorized = condition(engine="vectorized")
        assert vectorized.to_dict()["engine"] == "vectorized"
        assert (content_hash(vectorized.to_dict())
                != content_hash(base.to_dict()))

    def test_builder_threads_engine_into_plan(self):
        plan = (experiment("memcached")
                .client("LP")
                .load(qps=50_000.0, num_requests=40)
                .policy(runs=1, base_seed=7, engine="vectorized")
                .build())
        assert plan.policy.engine == "vectorized"


# ---------------------------------------------------------------------------
# Event-loop primitives: both engines, identical semantics
# ---------------------------------------------------------------------------
def _both_engines():
    return [Simulator(), KernelSimulator()]


class TestTieBreaking:
    def test_identical_timestamps_fire_in_insertion_order(self):
        """Fast-path (4-tuple) and cancellable (3-tuple) entries at the
        exact same time must fire in seq order on both engines."""
        logs = []
        for sim in _both_engines():
            fired = []
            sim.post_at(5.0, fired.append, "post-a")
            sim.schedule_at(5.0, fired.append, "sched-b")
            sim.post_at(5.0, fired.append, "post-c")
            sim.schedule_at(5.0, fired.append, "sched-d")
            sim.post_at(2.0, fired.append, "early")
            count = sim.run()
            assert count == 5
            assert sim.now == 5.0
            logs.append(fired)
        assert logs[0] == ["early", "post-a", "sched-b", "post-c", "sched-d"]
        assert logs[0] == logs[1]

    def test_ties_created_during_run_preserve_order(self):
        """Callbacks posting new work at the current time: the new
        entry's seq is larger, so it fires after anything already
        queued at that time -- on both engines."""
        logs = []
        for sim in _both_engines():
            fired = []

            def chain(tag, sim=sim, fired=fired):
                fired.append(tag)
                if tag == "first":
                    sim.post(0.0, chain, "nested")

            sim.post_at(3.0, chain, "first")
            sim.post_at(3.0, chain, "second")
            sim.run()
            logs.append(fired)
        assert logs[0] == ["first", "second", "nested"]
        assert logs[0] == logs[1]


class TestCancellationMidRun:
    def test_cancel_pending_event_from_callback(self):
        """A callback cancelling a later event: the kernel must see the
        cancellation even though the entry is already heap-resident."""
        logs = []
        for sim in _both_engines():
            fired = []
            victim = sim.schedule_at(10.0, fired.append, "victim")
            sim.post_at(5.0, lambda: victim.cancel())
            sim.schedule_at(15.0, fired.append, "survivor")
            count = sim.run()
            assert count == 2  # the cancel-er and the survivor
            assert victim.cancelled and not victim.fired
            logs.append(fired)
        assert logs[0] == ["survivor"]
        assert logs[0] == logs[1]

    def test_cancel_same_timestamp_later_entry(self):
        """Cancelling an event that shares the current timestamp (it
        is next in the tie run) must still suppress it."""
        for sim in _both_engines():
            fired = []
            handles = {}

            def killer(fired=fired, handles=handles):
                fired.append("killer")
                handles["victim"].cancel()

            sim.post_at(7.0, killer)
            handles["victim"] = sim.schedule_at(7.0, fired.append, "victim")
            sim.post_at(7.0, fired.append, "after")
            sim.run()
            assert fired == ["killer", "after"]

    def test_cancellation_mid_batch_in_workload(self):
        """Cancellable events injected into a real workload run: the
        kernel must fall back to scalar for them mid-batch and still
        reproduce the reference metrics bit-identically."""
        results = {}
        for engine in ENGINES:
            testbed = builder_by_name("memcached")(
                seed=1234, client_config=LP_CLIENT,
                server_config=SERVER_BASELINE,
                qps=50_000, num_requests=400, engine=engine)
            fired = []
            # Interleave foreign cancellable events with the workload's
            # batched traffic; one cancels the other mid-run.
            victim = testbed.sim.schedule_at(
                4_000.0, fired.append, "victim")
            testbed.sim.schedule_at(2_000.0, lambda v=victim: v.cancel())
            testbed.sim.schedule_at(6_000.0, fired.append, "late")
            metrics = testbed.run()
            assert fired == ["late"]
            assert victim.cancelled and not victim.fired
            results[engine] = metrics
            if engine == "vectorized":
                counters = testbed.sim.kernel_counters()
                # The kernel really engaged around the foreign events.
                assert counters["batches"] > 0
                assert counters["scalar_fallbacks"] >= 2
        assert results["reference"] == results["vectorized"]


# ---------------------------------------------------------------------------
# Testbed drain semantics
# ---------------------------------------------------------------------------
class TestTestbedDrain:
    def test_kernel_run_drains_generator(self):
        testbed = builder_by_name("memcached")(
            seed=99, client_config=LP_CLIENT,
            server_config=SERVER_BASELINE,
            qps=50_000, num_requests=200, engine="vectorized")
        metrics = testbed.run()
        generator = testbed.generator
        assert generator.drained
        assert generator.completed == generator.num_requests == 200
        assert testbed.sim.live_pending_events == 0
        assert metrics.requests > 0

    def test_kernel_testbed_is_single_use(self):
        testbed = builder_by_name("synthetic")(
            seed=3, client_config=LP_CLIENT,
            server_config=SERVER_BASELINE,
            qps=10_000, num_requests=50, engine="vectorized")
        testbed.run()
        with pytest.raises(ExperimentError):
            testbed.run()

    def test_heap_usable_after_kernel_run(self):
        """After the fused loop exits, the simulator must be a normal
        Simulator again: new events schedule and fire correctly."""
        testbed = builder_by_name("memcached")(
            seed=7, client_config=LP_CLIENT,
            server_config=SERVER_BASELINE,
            qps=50_000, num_requests=100, engine="vectorized")
        testbed.run()
        sim = testbed.sim
        end = sim.now
        fired = []
        sim.post(10.0, fired.append, "post-run")
        sim.run()
        assert fired == ["post-run"]
        assert sim.now == end + 10.0


# ---------------------------------------------------------------------------
# Telemetry bit-identity, column by column
# ---------------------------------------------------------------------------
def _column_digest(testbed):
    digest = hashlib.sha256()
    columns = testbed.generator.samples.columns
    for name in COLUMN_FIELDS:
        digest.update(columns.column(name).tobytes())
    return digest.hexdigest()


@pytest.mark.parametrize("workload", WORKLOADS)
def test_telemetry_columns_bit_identical(workload):
    qps = {"memcached": 100_000.0, "hdsearch": 1_000.0,
           "socialnetwork": 300.0, "synthetic": 10_000.0}[workload]
    digests = {}
    for engine in ENGINES:
        testbed = builder_by_name(workload)(
            seed=42, client_config=LP_CLIENT,
            server_config=SERVER_BASELINE,
            qps=qps, num_requests=120, engine=engine)
        testbed.run()
        digests[engine] = _column_digest(testbed)
    assert digests["reference"] == digests["vectorized"]


# ---------------------------------------------------------------------------
# Cross-process determinism under a hostile PYTHONHASHSEED
# ---------------------------------------------------------------------------
def _make_plans():
    """Every paper workload single-server, plus one 4-node cluster."""
    plans = []
    qps = {"memcached": 100_000.0, "hdsearch": 1_000.0,
           "socialnetwork": 300.0, "synthetic": 10_000.0}
    for workload in WORKLOADS:
        plans.append(
            experiment(workload)
            .client("LP")
            .load(qps=qps[workload], num_requests=60)
            .policy(runs=2, base_seed=7, engine="vectorized")
            .build())
    plans.append(
        experiment("memcached")
        .client("LP")
        .load(qps=100_000.0, num_requests=60)
        .policy(runs=2, base_seed=7, engine="vectorized")
        .cluster(ClusterSpec(nodes=4, lb_policy="least-outstanding"))
        .build())
    return plans


def _reference_hash(plan):
    """The same plan executed on the reference engine, in-process."""
    spec = json.loads(plan.to_json())
    spec["policy"].pop("engine", None)
    from repro.api import ExperimentPlan
    reference = ExperimentPlan.from_json(json.dumps(spec))
    assert reference.policy.engine == DEFAULT_ENGINE
    return content_hash(experiment_result_to_dict(reference.run()))


def test_kernel_subprocess_matches_reference_full_payload():
    """A child process (PYTHONHASHSEED=4321) runs every plan on the
    vectorized engine; the full-metrics content hashes must equal the
    parent's reference-engine hashes for all four workloads and the
    4-node cluster."""
    plans = _make_plans()
    expected = [_reference_hash(plan) for plan in plans]

    code = (
        "import json, sys\n"
        "from repro.api import ExperimentPlan\n"
        "from repro.campaign.serialize import (\n"
        "    content_hash, experiment_result_to_dict)\n"
        "for text in json.load(sys.stdin):\n"
        "    plan = ExperimentPlan.from_json(text)\n"
        "    assert plan.policy.engine == 'vectorized'\n"
        "    payload = experiment_result_to_dict(plan.run())\n"
        "    print(content_hash(payload))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONHASHSEED"] = "4321"
    proc = subprocess.run(
        [sys.executable, "-c", code],
        input=json.dumps([plan.to_json() for plan in plans]),
        capture_output=True, text=True, env=env, check=True)
    assert proc.stdout.split() == expected
