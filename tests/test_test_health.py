"""The per-test wall-clock budget gate (conftest REPRO_MAX_TEST_SECONDS).

CI's test-health job runs the suite with a 30 s budget; these tests
prove the gate actually fails slow tests and passes fast ones, by
running a miniature suite in a subprocess with a tight budget.
"""

import os
import subprocess
import sys
from pathlib import Path

import repro

CONFTEST = (Path(__file__).parent / "conftest.py").read_text()

MINI_SUITE = """
import time


def test_fast():
    pass


def test_slow():
    time.sleep(0.4)
"""


def run_mini_suite(tmp_path, budget):
    suite = tmp_path / "suite"
    suite.mkdir()
    (suite / "conftest.py").write_text(CONFTEST)
    (suite / "test_mini.py").write_text(MINI_SUITE)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    env["REPRO_MAX_TEST_SECONDS"] = budget
    return subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
         str(suite)],
        capture_output=True, text=True, env=env)


def test_budget_fails_slow_tests(tmp_path):
    proc = run_mini_suite(tmp_path, budget="0.1")
    assert proc.returncode == 1
    assert "exceeded the 0.1s per-test budget" in proc.stdout
    assert "1 failed, 1 passed" in proc.stdout


def test_budget_disabled_by_default(tmp_path):
    proc = run_mini_suite(tmp_path, budget="")
    assert proc.returncode == 0
    assert "2 passed" in proc.stdout
