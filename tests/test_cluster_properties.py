"""Property tests (hypothesis) for cluster invariants.

The ISSUE's three load-balancer laws, plus structural properties of
the shard-subset draw:

* request conservation -- every injected request completes exactly
  once, with no sub-request lost or duplicated across shards;
* least-outstanding never picks a strictly busier node;
* quorum completion time equals the Q-th order statistic of the
  shard latencies.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterSpec,
    FanoutService,
    LB_POLICIES,
    build_cluster_testbed,
)
from repro.cluster.balancer import (
    least_outstanding_choice,
    power_of_two_choice,
)
from repro.config.presets import LP_CLIENT, SERVER_BASELINE
from repro.server.request import Request
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

outstanding_lists = st.lists(
    st.integers(min_value=0, max_value=1_000), min_size=1,
    max_size=32)


class TestChoiceFunctions:
    @given(outstanding_lists)
    @settings(max_examples=200, deadline=None)
    def test_least_outstanding_is_argmin(self, outstanding):
        chosen = least_outstanding_choice(outstanding)
        minimum = min(outstanding)
        assert outstanding[chosen] == minimum
        # Ties break to the lowest index, deterministically.
        assert chosen == outstanding.index(minimum)

    @given(outstanding_lists, st.data())
    @settings(max_examples=200, deadline=None)
    def test_power_of_two_never_picks_the_busier_of_the_pair(
            self, outstanding, data):
        count = len(outstanding)
        first = data.draw(st.integers(0, count - 1))
        second = data.draw(st.integers(0, count - 1))
        chosen = power_of_two_choice(outstanding, first, second)
        assert chosen in (first, second)
        assert outstanding[chosen] <= max(
            outstanding[first], outstanding[second])
        assert outstanding[chosen] == min(
            outstanding[first], outstanding[second])


class TestShardSubsetProperties:
    @given(shards=st.integers(2, 16), seed=st.integers(0, 2**20),
           data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_subset_is_distinct_in_range_and_right_sized(
            self, shards, seed, data):
        fanout = data.draw(st.integers(1, shards))
        sim = Simulator()
        service = FanoutService(
            sim, [object()] * shards, fanout=fanout, quorum=1,
            rng=RandomStreams(seed).stream("fanout"))
        chosen = service.select_shards()
        assert len(chosen) == fanout
        assert len(set(chosen)) == fanout
        assert all(0 <= index < shards for index in chosen)


class _DelayShard:
    def __init__(self, sim, delay_us):
        self._sim = sim
        self._delay = delay_us

    def submit(self, request, done_fn):
        def finish(job):
            job.service_us += self._delay
            done_fn(job)
        self._sim.post(self._delay, finish, request)


class TestQuorumOrderStatistic:
    @given(
        delays=st.lists(
            st.floats(min_value=0.5, max_value=10_000.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=12, unique=True),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_completion_time_is_qth_order_statistic(self, delays,
                                                    data):
        quorum = data.draw(st.integers(1, len(delays)))
        sim = Simulator()
        service = FanoutService(
            sim, [_DelayShard(sim, d) for d in delays],
            quorum=quorum)
        completions = []
        service.submit(Request(request_id=0),
                       lambda r: completions.append(sim.now))
        sim.run()
        assert completions == [sorted(delays)[quorum - 1]]


def _small_cluster_metrics(nodes, shards, fanout, quorum, policy,
                           seed):
    testbed = build_cluster_testbed(
        "synthetic", seed=seed, client_config=LP_CLIENT,
        server_config=SERVER_BASELINE, qps=20_000.0,
        num_requests=40,
        cluster=ClusterSpec(nodes=nodes, shards=shards,
                            fanout=fanout, quorum=quorum,
                            lb_policy=policy))
    metrics = testbed.run()
    return testbed, metrics


class TestEndToEndConservation:
    @given(
        policy=st.sampled_from(LB_POLICIES),
        nodes=st.integers(2, 4),
        seed=st.integers(0, 1_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_load_balanced_requests_conserve(self, policy, nodes,
                                             seed):
        testbed, metrics = _small_cluster_metrics(
            nodes, 1, 0, 0, policy, seed)
        balancer = testbed.service
        assert testbed.generator.completed == 40
        assert balancer.completed == 40
        assert sum(balancer.dispatched) == 40
        assert balancer.outstanding == [0] * nodes
        assert metrics.requests == 36  # post-warmup samples
        assert len(metrics.node_utilizations) == nodes

    @given(
        shards=st.integers(2, 5),
        seed=st.integers(0, 1_000),
        data=st.data(),
    )
    @settings(max_examples=10, deadline=None)
    def test_fanout_requests_conserve_without_duplicates(
            self, shards, seed, data):
        fanout = data.draw(st.integers(1, shards))
        quorum = data.draw(st.integers(1, fanout))
        testbed, metrics = _small_cluster_metrics(
            1, shards, fanout, quorum, "round-robin", seed)
        service = testbed.service
        assert testbed.generator.completed == 40
        assert service.roots_completed == 40
        assert service.subs_issued == 40 * fanout
        assert service.subs_completed == service.subs_issued
        assert sum(service.shard_dispatched) == service.subs_issued
        assert metrics.requests == 36

    def test_replication_only_group_is_a_plain_replica_balancer(self):
        """Replication without sharding must not pay the fan-out
        lifecycle (sub-requests, shard links): the group is just a
        balancer over the replicas, like the nodes= layout."""
        from repro.cluster import LoadBalancer

        testbed = build_cluster_testbed(
            "synthetic", seed=1, client_config=LP_CLIENT,
            server_config=SERVER_BASELINE, qps=20_000.0,
            num_requests=40,
            cluster=ClusterSpec(replication=2,
                                lb_policy="least-outstanding"))
        balancer = testbed.service
        assert isinstance(balancer, LoadBalancer)
        assert balancer.num_backends == 2
        metrics = testbed.run()
        assert metrics.requests == 36
        assert sum(balancer.dispatched) == 40
        assert len(metrics.node_utilizations) == 2

    def test_least_outstanding_invariant_holds_in_real_run(self):
        testbed, _ = _small_cluster_metrics(
            3, 1, 0, 0, "least-outstanding", seed=5)
        # Re-run a fresh testbed with the dispatch hook armed.
        testbed = build_cluster_testbed(
            "synthetic", seed=5, client_config=LP_CLIENT,
            server_config=SERVER_BASELINE, qps=40_000.0,
            num_requests=120,
            cluster=ClusterSpec(nodes=3,
                                lb_policy="least-outstanding"))
        violations = []

        def check(chosen, outstanding):
            if outstanding[chosen] != min(outstanding):
                violations.append((chosen, outstanding))

        testbed.service.on_dispatch = check
        testbed.run()
        assert violations == []
        assert sum(testbed.service.dispatched) == 120
