"""Tests for multi-tier service composition."""

import pytest

from repro.config.presets import SERVER_BASELINE
from repro.errors import ConfigurationError
from repro.net.link import NetworkLink
from repro.parameters import DEFAULT_PARAMETERS
from repro.server.request import Request
from repro.server.service import FixedService
from repro.server.station import ServiceStation
from repro.server.tiers import TierSpec, TieredService


def station(sim, service_us, workers=2):
    return ServiceStation(
        sim, SERVER_BASELINE, FixedService(service_us), workers=workers)


class TestChaining:
    def test_two_tier_latency_is_sum(self, sim):
        service = TieredService(sim, [
            TierSpec(station=station(sim, 10.0)),
            TierSpec(station=station(sim, 20.0)),
        ])
        request = Request(request_id=0)
        done = []
        service.submit(request, done.append)
        sim.run()
        kernel = DEFAULT_PARAMETERS.kernel_stack_us
        # The tier-2 worker idled while tier 1 served, so it pays the
        # baseline's C1 exit latency (2 us) before serving.
        assert request.server_departure_us == pytest.approx(
            (10.0 + kernel) + (20.0 + kernel) + 2.0)
        assert done == [request]

    def test_hop_link_adds_latency(self, sim, params):
        service = TieredService(sim, [
            TierSpec(station=station(sim, 10.0)),
            TierSpec(station=station(sim, 10.0),
                     hop_link=NetworkLink(params)),
        ])
        request = Request(request_id=0)
        service.submit(request, lambda r: None)
        sim.run()
        kernel = params.kernel_stack_us
        expected = (2 * (10.0 + kernel)
                    + 2 * params.network_one_way_us  # out and back
                    + 2.0)  # tier-2 worker C1 wake after idling
        assert request.server_departure_us == pytest.approx(expected)

    def test_arrival_stamped_once(self, sim):
        service = TieredService(sim, [
            TierSpec(station=station(sim, 5.0)),
            TierSpec(station=station(sim, 5.0)),
        ])
        request = Request(request_id=0)
        sim.schedule(7.0, lambda: service.submit(request, lambda r: None))
        sim.run()
        assert request.server_arrival_us == pytest.approx(7.0)

    def test_empty_tier_list_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            TieredService(sim, [])

    def test_expected_service_sums_tiers(self, sim):
        service = TieredService(sim, [
            TierSpec(station=station(sim, 10.0)),
            TierSpec(station=station(sim, 20.0), fanout=2),
        ])
        kernel = DEFAULT_PARAMETERS.kernel_stack_us
        assert service.expected_service_us() == pytest.approx(
            (10.0 + kernel) + 2 * (20.0 + kernel))


class TestFanout:
    def test_fanout_waits_for_slowest(self, sim):
        bucket = station(sim, 30.0, workers=1)  # serializes sub-requests
        service = TieredService(sim, [
            TierSpec(station=bucket, fanout=3),
        ])
        request = Request(request_id=0)
        service.submit(request, lambda r: None)
        sim.run()
        kernel = DEFAULT_PARAMETERS.kernel_stack_us
        # One worker serves 3 sub-requests back to back.
        assert request.server_departure_us == pytest.approx(
            3 * (30.0 + kernel))

    def test_fanout_parallel_workers(self, sim):
        bucket = station(sim, 30.0, workers=4)
        service = TieredService(sim, [
            TierSpec(station=bucket, fanout=3),
        ])
        request = Request(request_id=0)
        service.submit(request, lambda r: None)
        sim.run()
        kernel = DEFAULT_PARAMETERS.kernel_stack_us
        # The slowest sub-request sees the other two busy workers
        # (util 0.5 on an SMT-off server) and pays the deterministic
        # interference expectation: 0.5*broad + 0.06*0.5*episodic.
        params = DEFAULT_PARAMETERS
        interference = (0.5 * params.smt_broad_us
                        + params.smt_off_interference_scale * 0.5
                        * params.smt_interference_us)
        assert request.server_departure_us == pytest.approx(
            30.0 + kernel + interference)

    def test_fanout_records_critical_path_on_parent(self, sim):
        bucket = station(sim, 30.0, workers=1)
        service = TieredService(sim, [TierSpec(station=bucket, fanout=2)])
        request = Request(request_id=0)
        service.submit(request, lambda r: None)
        sim.run()
        assert request.service_us > 0
        assert request.queue_wait_us > 0  # second sub-request queued

    def test_invalid_fanout_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            TierSpec(station=station(sim, 1.0), fanout=0)
