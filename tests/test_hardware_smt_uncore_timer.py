"""Tests for the SMT, uncore and timer models."""

import pytest

from repro.config.presets import HP_CLIENT, LP_CLIENT
from repro.hardware.smt import SmtModel
from repro.hardware.timer import HIGH_RES_SLACK_US, TimerModel
from repro.hardware.uncore import UNCORE_RAMP_DOWN_GAP_US, UncoreModel


class TestSmtModel:
    def test_logical_threads_doubled_when_enabled(self, params):
        assert SmtModel(params, True).logical_threads(20) == 40
        assert SmtModel(params, False).logical_threads(20) == 20

    def test_enabled_has_constant_overhead(self, params):
        factor = SmtModel(params, True).service_time_factor()
        assert factor == pytest.approx(1.0 + params.smt_enabled_overhead)

    def test_disabled_has_no_constant_overhead(self, params):
        assert SmtModel(params, False).service_time_factor() == 1.0

    def test_enabled_has_no_interference(self, params, rng):
        model = SmtModel(params, True)
        assert model.interference_us(0.9, rng) == 0.0

    def test_disabled_interference_expectation(self, params):
        model = SmtModel(params, False)
        utilization = 0.5
        expected = (utilization * params.smt_broad_us
                    + params.smt_off_interference_scale * utilization
                    * params.smt_interference_us)
        assert model.interference_us(utilization, None) == pytest.approx(
            expected)

    def test_interference_grows_with_utilization(self, params):
        model = SmtModel(params, False)
        low = model.interference_us(0.1, None)
        high = model.interference_us(0.9, None)
        assert high > low

    def test_zero_utilization_no_interference(self, params, rng):
        model = SmtModel(params, False)
        assert model.interference_us(0.0, rng) == 0.0

    def test_utilization_clamped(self, params):
        model = SmtModel(params, False)
        assert model.interference_us(1.5, None) == pytest.approx(
            model.interference_us(1.0, None))

    def test_run_intensity_scales_interference(self, params):
        quiet = SmtModel(params, False, run_intensity=0.5)
        loud = SmtModel(params, False, run_intensity=2.0)
        assert (loud.interference_us(0.5, None)
                > quiet.interference_us(0.5, None))

    def test_negative_run_intensity_rejected(self, params):
        with pytest.raises(ValueError):
            SmtModel(params, False, run_intensity=-1.0)

    def test_sampled_interference_nonnegative(self, params, rng):
        model = SmtModel(params, False)
        draws = [model.interference_us(0.7, rng) for _ in range(200)]
        assert all(d >= 0 for d in draws)
        assert any(d > 0 for d in draws)


class TestUncoreModel:
    def test_fixed_policy_never_penalizes(self, params):
        model = UncoreModel(params, HP_CLIENT)
        assert model.wake_penalty_us(10_000.0) == 0.0
        assert not model.dynamic

    def test_dynamic_penalizes_after_long_idle(self, params):
        model = UncoreModel(params, LP_CLIENT)
        assert model.wake_penalty_us(
            UNCORE_RAMP_DOWN_GAP_US + 1) == pytest.approx(
            params.uncore_dynamic_penalty_us)

    def test_dynamic_no_penalty_for_short_idle(self, params):
        model = UncoreModel(params, LP_CLIENT)
        assert model.wake_penalty_us(UNCORE_RAMP_DOWN_GAP_US) == 0.0


class TestTimerModel:
    def test_tuned_machine_has_high_res_slack(self, params):
        model = TimerModel(params, HP_CLIENT)
        assert model.slack_us == pytest.approx(HIGH_RES_SLACK_US)

    def test_untuned_machine_has_default_slack(self, params):
        model = TimerModel(params, LP_CLIENT)
        assert model.slack_us == pytest.approx(params.sleep_slack_us)

    def test_expectation_without_rng(self, params):
        model = TimerModel(params, LP_CLIENT)
        assert model.sleep_overshoot_us(None) == pytest.approx(
            params.sleep_slack_us / 2)

    def test_sampled_overshoot_within_bounds(self, params, rng):
        model = TimerModel(params, LP_CLIENT)
        draws = [model.sleep_overshoot_us(rng) for _ in range(500)]
        assert all(0.0 <= d <= params.sleep_slack_us for d in draws)
