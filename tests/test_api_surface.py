"""API-surface snapshot: repro.api.__all__ is a compatibility contract.

If this test fails, you changed the public API surface.  That may be
intentional -- new capability, deliberate deprecation -- but it must
be deliberate: update ``EXPECTED_SURFACE`` in the same commit and say
so in the commit message, because downstream spec files, stored
plans and remote executors program against these names.
"""

import inspect

import repro.api

EXPECTED_SURFACE = (
    "ArrivalSpec",
    "ClusterSpec",
    "ExperimentPlan",
    "GraphTierSpec",
    "HardwareSpec",
    "LoadSpec",
    "ParamSpec",
    "PlanBuilder",
    "ResiliencePolicy",
    "RunPolicy",
    "ServiceGraphSpec",
    "SpecValidationError",
    "WorkloadDefinition",
    "WorkloadSpec",
    "experiment",
    "register_workload",
    "registered_workloads",
    "workload_by_name",
)


def test_api_all_matches_snapshot():
    assert tuple(sorted(repro.api.__all__)) == EXPECTED_SURFACE


def test_every_name_in_all_resolves():
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None


def test_no_extra_public_callables():
    """Public (non-underscore) module attributes that are classes or
    functions defined by repro must all be declared in __all__ --
    nothing slips into the public surface implicitly."""
    declared = set(repro.api.__all__)
    for name, value in vars(repro.api).items():
        if name.startswith("_") or inspect.ismodule(value):
            continue
        if not (inspect.isclass(value) or inspect.isfunction(value)):
            continue
        module = getattr(value, "__module__", "")
        if module.startswith("repro"):
            assert name in declared, (
                f"{name} is public in repro.api but not in __all__")


def test_plan_methods_are_stable():
    """The ExperimentPlan verbs every consumer programs against."""
    for method in ("run", "sweep", "variants", "testbed", "builder",
                   "to_json", "from_json", "to_dict", "from_dict",
                   "content_hash", "with_qps", "with_params",
                   "with_client", "with_server", "with_policy",
                   "with_cluster"):
        assert callable(getattr(repro.api.ExperimentPlan, method))
