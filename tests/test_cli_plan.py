"""Tests for the ``repro plan`` dry-run subcommand."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestPlanPreset:
    def test_expands_without_running(self, capsys):
        code, out, _ = run_cli(
            capsys, "plan", "--preset", "memcached-smt",
            "--qps", "10000", "50000", "--runs", "3")
        assert code == 0
        assert "workload=memcached" in out
        assert "2 clients x 2 conditions x 2 loads = 8" in out
        assert "LP-SMToff" in out and "HP-SMTon" in out
        assert "nothing executed" in out

    def test_seed_schedule_printed(self, capsys):
        code, out, _ = run_cli(
            capsys, "plan", "--preset", "socialnetwork",
            "--qps", "100", "--runs", "2", "--seed", "5")
        assert code == 0
        # cell_seed(5, ...) spans two runs: "<base>..<base+1>".
        assert ".." in out

    def test_totals_line(self, capsys):
        code, out, _ = run_cli(
            capsys, "plan", "--preset", "synthetic",
            "--qps", "5000", "--runs", "2", "--requests", "100")
        assert code == 0
        # 2 clients x 1 condition x 1 qps x 2 runs = 4 runs.
        assert "totals: 4 runs, 400 simulated requests" in out


class TestPlanAdHoc:
    def test_workload_flags(self, capsys):
        code, out, _ = run_cli(
            capsys, "plan", "--workload", "synthetic",
            "--param", "added_delay_us=200", "--qps", "5000",
            "--clients", "LP", "--runs", "2")
        assert code == 0
        assert "added_delay_us" in out
        assert "1 clients x 1 conditions x 1 loads = 1" in out

    def test_knob_builds_two_conditions(self, capsys):
        code, out, _ = run_cli(
            capsys, "plan", "--workload", "memcached",
            "--knob", "c1e", "--qps", "10000", "--runs", "1")
        assert code == 0
        assert "C1Eoff" in out and "C1Eon" in out

    def test_unknown_workload_is_a_validation_error(self, capsys):
        code, _, err = run_cli(
            capsys, "plan", "--workload", "memcachd",
            "--qps", "1000")
        assert code == 1
        assert "did you mean 'memcached'" in err

    def test_unknown_param_is_a_validation_error(self, capsys):
        code, _, err = run_cli(
            capsys, "plan", "--workload", "synthetic",
            "--param", "added_delay=5", "--qps", "1000")
        assert code == 1
        assert "unknown parameter" in err

    def test_unknown_client_preset_is_a_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "plan", "--workload", "memcached",
            "--clients", "BOGUS", "--qps", "1000")
        assert code == 1
        assert "unknown client preset 'BOGUS'" in err

    def test_bad_param_syntax_rejected(self, capsys):
        code, _, err = run_cli(
            capsys, "plan", "--workload", "synthetic",
            "--param", "nonsense", "--qps", "1000")
        assert code == 1
        assert "KEY=VALUE" in err


class TestPlanSpecFile:
    def test_spec_file_round_trip(self, tmp_path, capsys):
        spec = {
            "name": "file-plan",
            "workload": "memcached",
            "clients": ["LP"],
            "conditions": {"SMToff": {"knob": "smt", "enabled": False}},
            "qps": [50_000],
            "runs": 2,
            "num_requests": 100,
        }
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(spec))
        code, out, _ = run_cli(capsys, "plan", "--spec", str(path))
        assert code == 0
        assert "campaign 'file-plan'" in out
        assert "nothing executed" in out

    def test_hashes_match_campaign_expansion(self, tmp_path, capsys):
        """The dry run prints the same condition hashes the store
        would be keyed by."""
        from repro.campaign.presets import campaign_by_name

        spec = campaign_by_name("memcached-smt").with_overrides(
            qps_list=(10_000.0,), runs=2)
        expected = [c.content_hash()[:12] for c in spec.expand()]
        code, out, _ = run_cli(
            capsys, "plan", "--preset", "memcached-smt",
            "--qps", "10000", "--runs", "2")
        assert code == 0
        for short_hash in expected:
            assert short_hash in out


class TestAdHocOnlyFlags:
    """--param/--knob/--clients must not be silently dropped when the
    campaign comes from --spec/--preset (a dry run that shows a
    different campaign than the flags describe is worse than an
    error)."""

    @pytest.mark.parametrize("flags", [
        ("--param", "added_delay_us=200"),
        ("--knob", "c1e"),
        ("--clients", "LP"),
    ])
    def test_rejected_with_preset(self, capsys, flags):
        code, _, err = run_cli(
            capsys, "plan", "--preset", "memcached-smt", *flags)
        assert code == 1
        assert "only applies to an ad-hoc --workload" in err


def test_adhoc_defaults_come_from_the_workload_definition(capsys):
    """Without --qps, the ad-hoc sweep is the workload's registered
    paper sweep, not a hardcoded fallback."""
    from repro.workloads.registry import workload_by_name

    sweep = workload_by_name("hdsearch").qps_sweep
    code, out, _ = run_cli(
        capsys, "plan", "--workload", "hdsearch",
        "--clients", "LP", "--runs", "1")
    assert code == 0
    assert f"{len(sweep)} loads" in out


def test_plan_requires_a_source():
    with pytest.raises(SystemExit):
        main(["plan"])
