"""Tests for sharded multi-core execution (repro.parallel).

The contract under test has two halves:

* the **decomposition** is semantic: ``workers=W`` stripes the global
  request-id space into W full-replica shards at ``qps / W`` each, and
  is part of the plan's content hash whenever ``W != 1``;
* the **placement** is not: running the W shards across P processes is
  bit-identical to running them sequentially in one process, for both
  registered sinks.
"""

import hashlib
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.api import experiment
from repro.api.specs import RunPolicy
from repro.errors import ExperimentError
from repro.parallel import (
    ShardSpec,
    merge_columnar_payloads,
    run_shard,
    run_sharded,
    shard_layout,
)
from repro.parallel.runner import _execute_shard
from repro.sim.random import RandomStreams, stream_namespace
from repro.telemetry.columns import COLUMN_FIELDS


def small_plan(workers=2, requests=160, runs=1, **policy_kwargs):
    return (experiment("memcached").client("LP")
            .load(qps=40_000, num_requests=requests)
            .policy(runs=runs, base_seed=11, workers=workers,
                    **policy_kwargs)
            .build())


def columns_digest(samples):
    digest = hashlib.sha256()
    for name in COLUMN_FIELDS:
        digest.update(np.ascontiguousarray(
            samples.columns.column(name)).tobytes())
    return digest.hexdigest()


def shard_tasks(plan, seed=11):
    layout = shard_layout(plan.load.num_requests, plan.policy.workers)
    return [{"plan": plan.to_dict(), "seed": seed,
             "shard": {"index": shard.index,
                       "workers": shard.workers,
                       "total_requests": shard.total_requests}}
            for shard in layout]


class TestShardLayout:
    @pytest.mark.parametrize("total,workers",
                             [(10, 1), (10, 3), (100, 7), (8, 8)])
    def test_stripes_partition_the_id_space(self, total, workers):
        layout = shard_layout(total, workers)
        assert len(layout) == workers
        assert sum(shard.count for shard in layout) == total
        pooled = np.sort(np.concatenate(
            [shard.global_ids() for shard in layout]))
        assert np.array_equal(pooled, np.arange(total))

    def test_global_id_matches_global_ids(self):
        shard = ShardSpec(index=2, workers=5, total_requests=23)
        ids = shard.global_ids()
        assert len(ids) == shard.count
        for local, gid in enumerate(ids):
            assert shard.global_id(local) == gid

    def test_stream_prefixes_are_distinct(self):
        layout = shard_layout(20, 4)
        prefixes = {shard.stream_prefix for shard in layout}
        assert prefixes == {"pshard0/", "pshard1/",
                            "pshard2/", "pshard3/"}

    def test_layout_rejects_nonpositive_workers(self):
        with pytest.raises(ExperimentError):
            shard_layout(10, 0)

    def test_shard_rejects_out_of_range_index(self):
        with pytest.raises(ExperimentError):
            ShardSpec(index=2, workers=2, total_requests=10)

    def test_shard_rejects_starved_population(self):
        with pytest.raises(ExperimentError):
            shard_layout(3, 4)


class TestStreamNamespace:
    def test_namespaced_streams_are_independent(self):
        with stream_namespace("pshard0/"):
            first = RandomStreams(7)
        with stream_namespace("pshard1/"):
            second = RandomStreams(7)
        plain = RandomStreams(7)
        draws = {registry.get("service").random()
                 for registry in (first, second, plain)}
        assert len(draws) == 3

    def test_namespace_is_a_pure_name_prefix(self):
        with stream_namespace("p/"):
            namespaced = RandomStreams(7)
        plain = RandomStreams(7)
        assert np.array_equal(
            namespaced.get("service").random(8),
            plain.get("p/service").random(8))

    def test_nesting_concatenates_and_exit_restores(self):
        with stream_namespace("a/"):
            with stream_namespace("b/"):
                inner = RandomStreams(1)
            outer = RandomStreams(1)
        assert inner.namespace == "a/b/"
        assert outer.namespace == "a/"
        assert RandomStreams(1).namespace == ""

    def test_registry_captures_namespace_at_construction(self):
        with stream_namespace("a/"):
            registry = RandomStreams(3)
        # First stream request happens *outside* the block.
        assert (registry.get("x").random()
                == RandomStreams(3).get("a/x").random())


class TestShardedColumnarRun:
    def test_merged_ids_cover_the_global_space(self):
        plan = small_plan(workers=3, requests=120)
        payloads = [run_shard(plan, 5, shard)
                    for shard in shard_layout(120, 3)]
        merged = merge_columnar_payloads(payloads)
        ids = np.sort(merged.columns.column("request_id"))
        assert np.array_equal(ids, np.arange(120))
        assert merged.measured_count == 120 - int(120 * 0.1)

    def test_parallel_placement_is_bit_identical(self):
        plan = small_plan(workers=2, requests=160)
        tasks = shard_tasks(plan)
        inline = [_execute_shard(task) for task in tasks]
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote = list(pool.map(_execute_shard, tasks))
        for local, shipped in zip(inline, remote):
            for name in COLUMN_FIELDS:
                assert np.array_equal(local["columns"][name],
                                      shipped["columns"][name])
        assert (columns_digest(merge_columnar_payloads(inline))
                == columns_digest(merge_columnar_payloads(remote)))

    def test_run_sharded_placements_agree_exactly(self):
        plan = small_plan(workers=2, requests=160)
        serial = run_sharded(plan, processes=1)
        parallel = run_sharded(plan, processes=2)
        assert serial.runs == parallel.runs
        assert serial.metadata == {"workers": 2.0}

    def test_plan_run_dispatches_to_sharded_execution(self):
        requests = 120
        plan = small_plan(workers=2, requests=requests, runs=2)
        result = plan.run()
        assert result.metadata["workers"] == 2.0
        assert len(result.runs) == 2
        for run in result.runs:
            assert run.requests == requests - int(requests * 0.1)
            assert 0.0 < run.server_utilization < 1.0

    def test_workers_one_takes_the_plain_path(self):
        plan = small_plan(workers=1, requests=60)
        assert (run_sharded(plan, processes=1).runs
                == plan.experiment().run().runs)

    def test_processes_must_be_positive(self):
        with pytest.raises(ExperimentError):
            run_sharded(small_plan(workers=2, requests=60), processes=0)


class TestShardedStreamingRun:
    def test_streaming_placements_agree_exactly(self):
        plan = small_plan(workers=2, requests=200, sink="streaming")
        serial = run_sharded(plan, processes=1)
        parallel = run_sharded(plan, processes=2)
        assert serial.runs == parallel.runs

    def test_streaming_and_columnar_shards_agree_on_mean(self):
        # Same decomposition, both sinks.  Agreement is statistical,
        # not bitwise: the columnar merge trims warmup in *global*
        # send order while the streaming sink trims by request id
        # (per-shard send order), so the two trim sets differ by a
        # few boundary requests.
        columnar = run_sharded(
            small_plan(workers=2, requests=200), processes=1)
        streaming = run_sharded(
            small_plan(workers=2, requests=200, sink="streaming"),
            processes=1)
        assert columnar.runs[0].avg_us == pytest.approx(
            streaming.runs[0].avg_us, rel=0.02)
        assert (columnar.runs[0].requests
                == streaming.runs[0].requests)


class TestWorkersByteStability:
    """``workers`` must not disturb any pre-parallel identity.

    Same hazard class as :class:`TestPreGraphByteStability` in
    ``tests/test_graph_spec.py``: a default-valued ``workers`` leaking
    into serialization would silently re-key every stored campaign
    result.  The literals below are the pre-parallel captures.
    """

    def test_default_plan_hash_is_unchanged(self):
        assert experiment("memcached").build().content_hash() == (
            "a602ff4701e1ccafb623406c44bba718"
            "c4c15f19ed18da96fbfcc2a29b96e281")

    def test_condition_store_key_is_unchanged(self):
        from repro.campaign.spec import CampaignSpec
        from repro.config.presets import SERVER_BASELINE

        spec = CampaignSpec(
            name="s", workload="memcached",
            conditions={"baseline": SERVER_BASELINE},
            qps_list=(50_000.0,), runs=2, num_requests=100)
        assert spec.expand()[0].content_hash() == (
            "ff21ff72b22dbfe1d8b0942cd3bfb192"
            "6beeabff1987959bba9152f63d88b540")

    def test_default_workers_is_omitted_from_serialization(self):
        plan = experiment("memcached").build()
        assert "workers" not in plan.to_dict()["policy"]
        assert "workers" not in RunPolicy().to_dict()

    def test_nondefault_workers_is_hash_relevant(self):
        base = experiment("memcached").build()
        sharded = base.with_policy(workers=2)
        assert sharded.to_dict()["policy"]["workers"] == 2
        assert sharded.content_hash() != base.content_hash()

    def test_policy_round_trips_workers(self):
        policy = RunPolicy(runs=3, base_seed=1, workers=4)
        assert RunPolicy.from_dict(policy.to_dict()) == policy
        assert RunPolicy.from_dict(RunPolicy().to_dict()) == RunPolicy()

    def test_policy_rejects_nonpositive_workers(self):
        from repro.errors import SpecValidationError

        with pytest.raises(SpecValidationError):
            RunPolicy(workers=0)

    def test_campaign_conditions_stay_unsharded(self):
        from repro.campaign.spec import CampaignSpec
        from repro.config.presets import SERVER_BASELINE

        spec = CampaignSpec(
            name="s", workload="memcached",
            conditions={"baseline": SERVER_BASELINE},
            qps_list=(50_000.0,), runs=1, num_requests=10)
        assert spec.expand()[0].to_plan().policy.workers == 1
