"""Tests for service-time models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.server.service import (
    BimodalService,
    ExponentialService,
    FixedService,
    LognormalService,
)


class TestFixedService:
    def test_constant(self, rng):
        model = FixedService(12.0)
        assert model.sample_service_us(rng) == 12.0
        assert model.mean_service_us() == 12.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedService(-1.0)


class TestExponentialService:
    def test_mean_converges(self, rng):
        model = ExponentialService(10.0)
        draws = [model.sample_service_us(rng) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(10.0, rel=0.05)

    def test_deterministic_without_rng(self):
        assert ExponentialService(10.0).sample_service_us(None) == 10.0

    def test_invalid_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            ExponentialService(0.0)


class TestLognormalService:
    def test_mean_converges(self, rng):
        model = LognormalService(10.0, sigma=0.5)
        draws = [model.sample_service_us(rng) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(10.0, rel=0.05)

    def test_right_skew(self, rng):
        model = LognormalService(10.0, sigma=0.8)
        draws = np.array(
            [model.sample_service_us(rng) for _ in range(20_000)])
        assert np.median(draws) < np.mean(draws)

    def test_zero_sigma_is_deterministic(self, rng):
        model = LognormalService(10.0, sigma=0.0)
        assert model.sample_service_us(rng) == pytest.approx(10.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            LognormalService(10.0, sigma=-0.1)

    def test_all_samples_positive(self, rng):
        model = LognormalService(5.0, sigma=1.5)
        assert all(model.sample_service_us(rng) > 0 for _ in range(1000))


class TestBimodalService:
    def test_mean_formula(self):
        model = BimodalService(fast_us=10.0, slow_us=100.0,
                               slow_fraction=0.1)
        assert model.mean_service_us() == pytest.approx(19.0)

    def test_samples_are_one_of_two_values(self, rng):
        model = BimodalService(10.0, 100.0, 0.5)
        draws = {model.sample_service_us(rng) for _ in range(200)}
        assert draws == {10.0, 100.0}

    def test_fraction_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            BimodalService(10.0, 100.0, 1.5)

    def test_deterministic_without_rng(self):
        model = BimodalService(10.0, 100.0, 0.25)
        assert model.sample_service_us(None) == pytest.approx(32.5)
