"""Tests for deterministic random streams."""

from repro.sim.random import RandomStreams, _stable_name_key


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = RandomStreams(1).get("service").random(10)
        b = RandomStreams(1).get("service").random(10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("service").random(10)
        b = RandomStreams(2).get("service").random(10)
        assert not (a == b).all()

    def test_different_names_are_independent(self):
        streams = RandomStreams(1)
        a = streams.get("alpha").random(10)
        b = streams.get("beta").random(10)
        assert not (a == b).all()

    def test_stream_identity_is_cached(self):
        streams = RandomStreams(1)
        assert streams.get("x") is streams.get("x")

    def test_consuming_one_stream_does_not_shift_another(self):
        reference = RandomStreams(5)
        expected = reference.get("stable").random(5)

        perturbed = RandomStreams(5)
        perturbed.get("noisy").random(1000)
        actual = perturbed.get("stable").random(5)
        assert (expected == actual).all()

    def test_root_seed_exposed(self):
        assert RandomStreams(17).root_seed == 17

    def test_names_reports_created_streams(self):
        streams = RandomStreams(1)
        streams.get("b")
        streams.get("a")
        assert streams.names() == ("a", "b")


class TestStableNameKey:
    def test_deterministic_across_calls(self):
        assert _stable_name_key("abc") == _stable_name_key("abc")

    def test_distinct_names_distinct_keys(self):
        assert _stable_name_key("abc") != _stable_name_key("abd")

    def test_key_is_nonnegative_63bit(self):
        for name in ("", "x", "service", "a-very-long-stream-name"):
            key = _stable_name_key(name)
            assert 0 <= key < 2 ** 63
