"""Tests for the service station (workers + server-side knobs)."""

import pytest

from repro.config.presets import (
    SERVER_BASELINE,
    server_with_c1e,
    server_with_smt,
)
from repro.parameters import DEFAULT_PARAMETERS
from repro.server.request import Request
from repro.server.service import FixedService
from repro.server.station import ServiceStation


def run_one(sim, station, arrival_us=0.0):
    done = []
    request = Request(request_id=0)

    def submit():
        station.submit(request, done.append)

    sim.schedule(arrival_us, submit)
    sim.run()
    assert done, "request never completed"
    return done[0]


class TestBasicService:
    def test_single_request_timeline(self, sim):
        station = ServiceStation(
            sim, SERVER_BASELINE, FixedService(10.0), workers=2)
        request = run_one(sim, station, arrival_us=5.0)
        assert request.server_arrival_us == pytest.approx(5.0)
        # Service runs at nominal (performance, turbo off): 10 + kernel,
        # plus the C1 exit latency of the worker that idled 5 us.
        expected = 10.0 + DEFAULT_PARAMETERS.kernel_stack_us + 2.0
        assert request.service_us == pytest.approx(expected)
        assert request.server_departure_us == pytest.approx(
            5.0 + expected)

    def test_queue_wait_accumulates(self, sim):
        station = ServiceStation(
            sim, SERVER_BASELINE, FixedService(10.0), workers=1)
        done = []
        first = Request(request_id=0)
        second = Request(request_id=1)
        station.submit(first, done.append)
        station.submit(second, done.append)
        sim.run()
        assert second.queue_wait_us > 0
        assert first.queue_wait_us == 0

    def test_utilization_tracked(self, sim):
        station = ServiceStation(
            sim, SERVER_BASELINE, FixedService(10.0), workers=1)
        run_one(sim, station)
        assert station.utilization() > 0
        assert station.completed == 1

    def test_turbo_server_runs_faster(self, sim):
        from dataclasses import replace
        turbo_config = replace(SERVER_BASELINE, turbo=True)
        baseline = ServiceStation(
            sim, SERVER_BASELINE, FixedService(10.0), workers=1)
        turbo = ServiceStation(
            sim, turbo_config, FixedService(10.0), workers=1)
        assert turbo.frequency_ghz > baseline.frequency_ghz
        assert (turbo.expected_service_us()
                < baseline.expected_service_us())

    def test_env_scale_inflates_service(self, sim):
        plain = ServiceStation(
            sim, SERVER_BASELINE, FixedService(10.0), workers=1)
        inflated = ServiceStation(
            sim, SERVER_BASELINE, FixedService(10.0), workers=1,
            env_scale=1.5)
        request_a = Request(request_id=0)
        request_b = Request(request_id=1)
        plain.submit(request_a, lambda r: None)
        inflated.submit(request_b, lambda r: None)
        sim.run()
        assert request_b.service_us == pytest.approx(
            1.5 * request_a.service_us)

    def test_invalid_env_scale_rejected(self, sim):
        with pytest.raises(ValueError):
            ServiceStation(sim, SERVER_BASELINE, FixedService(1.0),
                           workers=1, env_scale=0.0)


class TestServerCstates:
    def test_c1e_server_pays_wake_after_long_idle(self, sim):
        station = ServiceStation(
            sim, server_with_c1e(True), FixedService(10.0), workers=1)
        warm = run_one(sim, station, arrival_us=0.0)
        cold = Request(request_id=2)
        sim.schedule(5_000.0, lambda: station.submit(
            cold, lambda r: None))
        sim.run()
        # The cold request pays the C1E exit latency (10 us).
        assert cold.service_us == pytest.approx(
            warm.service_us + 10.0)

    def test_baseline_caps_wake_at_c1(self, sim):
        station = ServiceStation(
            sim, SERVER_BASELINE, FixedService(10.0), workers=1)
        run_one(sim, station, arrival_us=0.0)
        cold = Request(request_id=2)
        sim.schedule(5_000.0, lambda: station.submit(
            cold, lambda r: None))
        sim.run()
        expected = 10.0 + DEFAULT_PARAMETERS.kernel_stack_us + 2.0
        assert cold.service_us == pytest.approx(expected)


class TestServerSmt:
    def test_smt_on_constant_overhead(self, sim):
        smt_on = ServiceStation(
            sim, server_with_smt(True), FixedService(10.0), workers=1)
        request = run_one(sim, smt_on)
        base = 10.0 + DEFAULT_PARAMETERS.kernel_stack_us
        assert request.service_us == pytest.approx(
            base * (1 + DEFAULT_PARAMETERS.smt_enabled_overhead))

    def test_smt_off_interference_needs_load(self, sim, streams):
        """At zero utilization there is no interference to suffer."""
        station = ServiceStation(
            sim, server_with_smt(False), FixedService(10.0), workers=4,
            rng=streams.get("svc"))
        request = run_one(sim, station)
        assert request.service_us == pytest.approx(
            10.0 + DEFAULT_PARAMETERS.kernel_stack_us, abs=1e-6)

    def test_smt_off_interference_under_load(self, sim, streams):
        station = ServiceStation(
            sim, server_with_smt(False), FixedService(50.0), workers=2,
            rng=streams.get("svc"))
        requests = [Request(request_id=i) for i in range(40)]
        for index, request in enumerate(requests):
            sim.schedule(index * 10.0,
                         lambda r=request: station.submit(r, lambda x: None))
        sim.run()
        base = 50.0 + DEFAULT_PARAMETERS.kernel_stack_us
        # Later requests saw busy workers; some must exceed the base.
        assert any(r.service_us > base + 0.1 for r in requests)
