"""Tests for the ETC workload model and the LSH index substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.etc import ETC_GET_FRACTION, EtcWorkload
from repro.workloads.hdsearch_lsh import (
    LshConfig,
    LshIndex,
    default_candidate_counts,
    default_index,
)


class TestEtcWorkload:
    def test_key_sizes_in_published_range(self, rng):
        etc = EtcWorkload(rng)
        sizes = [etc.sample_key_size_b() for _ in range(2000)]
        assert all(16 <= s <= 250 for s in sizes)

    def test_value_sizes_heavy_tailed(self, rng):
        etc = EtcWorkload(rng)
        sizes = np.array([etc.sample_value_size_b()
                          for _ in range(5000)])
        assert np.median(sizes) < 1000      # body is small
        assert sizes.max() > 5000           # tail exists
        assert (sizes >= 1).all()

    def test_get_fraction_matches_mix(self, rng):
        etc = EtcWorkload(rng)
        gets = sum(etc.sample_is_get() for _ in range(20_000))
        assert gets / 20_000 == pytest.approx(ETC_GET_FRACTION, abs=0.01)

    def test_message_size_positive(self, rng):
        etc = EtcWorkload(rng)
        assert all(etc.sample_message_kb() > 0 for _ in range(100))

    def test_deterministic_without_rng(self):
        etc = EtcWorkload(None)
        assert etc.sample_key_size_b() == 31
        assert etc.sample_value_size_b() == 125
        assert etc.sample_is_get()


class TestLshIndex:
    def test_candidates_returned_for_dataset_point(self):
        index = default_index()
        query = index.points[17]
        candidates = index.candidates(query)
        assert 17 in candidates  # a point always hashes to itself

    def test_query_ranks_by_distance(self):
        index = default_index()
        query = index.points[5]
        results = index.query(query, k=5)
        assert results[0][0] == 5
        assert results[0][1] == pytest.approx(0.0)
        distances = [d for _, d in results]
        assert distances == sorted(distances)

    def test_query_shape_validated(self):
        index = default_index()
        with pytest.raises(ConfigurationError):
            index.candidates(np.zeros(3))

    def test_recall_on_noisy_queries(self):
        """LSH must usually find the perturbed source point."""
        index = default_index()
        rng = np.random.default_rng(11)
        hits = 0
        for _ in range(50):
            source = int(rng.integers(0, index.config.num_points))
            query = index.points[source] + rng.normal(
                scale=0.05, size=index.config.dim)
            results = index.query(query, k=5)
            if any(point == source for point, _ in results):
                hits += 1
        assert hits >= 40

    def test_candidate_counts_reasonable(self):
        counts = np.array(default_candidate_counts())
        assert counts.min() >= 0
        assert counts.max() <= 4000
        assert counts.mean() > 10  # buckets are not empty

    def test_deterministic_given_seed(self):
        a = LshIndex(LshConfig(num_points=200, dim=16,
                               num_tables=2, num_bits=6), seed=5)
        b = LshIndex(LshConfig(num_points=200, dim=16,
                               num_tables=2, num_bits=6), seed=5)
        assert (a.points == b.points).all()
        query = a.points[3]
        assert a.candidates(query) == b.candidates(query)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            LshConfig(num_points=0)
        with pytest.raises(ConfigurationError):
            LshConfig(num_bits=40)

    def test_more_tables_more_candidates(self):
        few = LshIndex(LshConfig(num_points=500, dim=16,
                                 num_tables=1, num_bits=8), seed=3)
        many = LshIndex(LshConfig(num_points=500, dim=16,
                                  num_tables=6, num_bits=8), seed=3)
        rng = np.random.default_rng(4)
        query = few.points[0] + rng.normal(scale=0.1, size=16)
        assert (len(many.candidates(query))
                >= len(few.candidates(query)))
