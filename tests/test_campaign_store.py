"""Tests for the SQLite result store."""

import pytest

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore, open_store, require_store
from repro.config.presets import LP_CLIENT, server_with_smt
from repro.core.experiment import run_experiment
from repro.errors import ExperimentError
from repro.workloads.memcached import build_memcached_testbed


@pytest.fixture
def spec():
    return CampaignSpec(
        name="store-test",
        workload="memcached",
        conditions={"SMToff": server_with_smt(False)},
        qps_list=(10_000, 50_000),
        clients={"LP": LP_CLIENT},
        runs=2,
        num_requests=60,
    )


@pytest.fixture
def store():
    with ResultStore(":memory:") as memory_store:
        yield memory_store


def run_one(condition):
    return run_experiment(
        lambda seed: build_memcached_testbed(
            seed, client_config=condition.client_config,
            server_config=condition.server_config, qps=condition.qps,
            num_requests=condition.num_requests),
        runs=condition.runs, base_seed=condition.base_seed,
        label=condition.label)


class TestTimings:
    def test_put_records_elapsed_and_timings_for_reads(self, spec,
                                                      store):
        conditions = spec.expand()
        result = run_one(conditions[0])
        store.put(conditions[0], result, campaign=spec.name,
                  elapsed_s=1.25, queue_wait_s=0.5, worker_pid=4242)
        timings = store.timings_for(conditions)
        assert set(timings) == {conditions[0].content_hash()}
        label, qps, runs, elapsed, wait, pid = timings[
            conditions[0].content_hash()]
        assert (label, qps, runs) == (
            conditions[0].label, conditions[0].qps,
            conditions[0].runs)
        assert elapsed == 1.25
        assert wait == 0.5
        assert pid == 4242

    def test_elapsed_defaults_to_zero(self, spec, store):
        condition = spec.expand()[0]
        store.put(condition, run_one(condition), campaign=spec.name)
        timings = store.timings_for([condition])
        row = timings[condition.content_hash()]
        assert row[3] == 0.0
        assert row[4] == 0.0
        assert row[5] is None

    def test_put_many_is_one_transaction_worth_of_rows(self, spec,
                                                       store):
        conditions = spec.expand()
        entries = [{"spec": condition, "result": run_one(condition),
                    "elapsed_s": 0.5 + index,
                    "queue_wait_s": 0.1 * index,
                    "worker_pid": 100 + index}
                   for index, condition in enumerate(conditions)]
        store.put_many(entries, campaign=spec.name)
        assert store.count() == len(conditions)
        timings = store.timings_for(conditions)
        for index, condition in enumerate(conditions):
            row = timings[condition.content_hash()]
            assert row[3] == 0.5 + index
            assert row[4] == 0.1 * index
            assert row[5] == 100 + index

    def test_put_many_empty_is_a_noop(self, store):
        store.put_many([])
        assert store.count() == 0


class TestRoundTrip:
    def test_put_get_is_exact(self, spec, store):
        condition = spec.expand()[0]
        result = run_one(condition)
        store.put(condition, result, campaign=spec.name)
        fetched = store.get(condition.content_hash())
        assert fetched.runs == result.runs
        assert fetched.label == result.label
        assert fetched.qps == result.qps

    def test_get_missing_returns_none(self, store):
        assert store.get("no-such-hash") is None
        assert store.get_spec("no-such-hash") is None

    def test_contains_and_count(self, spec, store):
        condition = spec.expand()[0]
        assert condition.content_hash() not in store
        store.put(condition, run_one(condition))
        assert condition.content_hash() in store
        assert store.count() == 1

    def test_put_is_idempotent(self, spec, store):
        condition = spec.expand()[0]
        result = run_one(condition)
        store.put(condition, result)
        store.put(condition, result)
        assert store.count() == 1

    def test_spec_round_trip(self, spec, store):
        condition = spec.expand()[0]
        store.put(condition, run_one(condition))
        assert store.get_spec(condition.content_hash()) == condition


class TestQueries:
    def test_missing_partitions_conditions(self, spec, store):
        conditions = spec.expand()
        store.put(conditions[0], run_one(conditions[0]))
        missing = store.missing(conditions)
        assert missing == conditions[1:]

    def test_results_for(self, spec, store):
        conditions = spec.expand()
        store.put(conditions[0], run_one(conditions[0]))
        results = store.results_for(conditions)
        assert set(results) == {conditions[0].content_hash()}

    def test_rows_carry_campaign_metadata(self, spec, store):
        condition = spec.expand()[0]
        store.put(condition, run_one(condition), campaign=spec.name)
        rows = list(store.rows())
        assert len(rows) == 1
        row_hash, campaign, label, qps, runs, created = rows[0]
        assert row_hash == condition.content_hash()
        assert campaign == "store-test"
        assert label == "LP-SMToff"
        assert qps == condition.qps
        assert runs == condition.runs
        assert created > 0

    def test_delete_and_clear(self, spec, store):
        conditions = spec.expand()
        for condition in conditions:
            store.put(condition, run_one(condition))
        assert store.delete(conditions[0].content_hash())
        assert not store.delete(conditions[0].content_hash())
        assert store.clear() == len(conditions) - 1
        assert store.count() == 0


class TestPersistence:
    def test_results_survive_reopen(self, spec, tmp_path):
        path = str(tmp_path / "results.sqlite")
        condition = spec.expand()[0]
        with ResultStore(path) as store:
            store.put(condition, run_one(condition))
        with ResultStore(path) as store:
            assert store.count() == 1
            assert store.get(condition.content_hash()) is not None

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "nested" / "dir" / "results.sqlite")
        with ResultStore(path) as store:
            assert store.count() == 0

    def test_open_store_passes_none_through(self):
        assert open_store(None) is None

    def test_require_store_demands_existing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            require_store(str(tmp_path / "absent.sqlite"))


class TestClusterHashCoverage:
    """Cluster parameters must participate in memoization keys.

    Regression for the ISSUE-5 hazard: if the cluster topology were
    left out of :meth:`ConditionSpec.content_hash`, two campaigns
    differing only in ``lb_policy`` (or any other cluster field)
    would collide in the store and silently replay each other's
    results.
    """

    def cluster_spec(self, policy, nodes=2):
        from repro.cluster import ClusterSpec

        return CampaignSpec(
            name="cluster-store-test",
            workload="memcached",
            conditions={"SMToff": server_with_smt(False)},
            qps_list=(50_000,),
            clients={"LP": LP_CLIENT},
            runs=1,
            num_requests=40,
            cluster=ClusterSpec(nodes=nodes, lb_policy=policy),
        )

    def test_lb_policy_never_collides_in_the_store(self, store):
        round_robin = self.cluster_spec("round-robin").expand()[0]
        power_of_two = self.cluster_spec("power-of-two").expand()[0]
        assert (round_robin.content_hash()
                != power_of_two.content_hash())

        first = round_robin.to_plan().run()
        second = power_of_two.to_plan().run()
        store.put(round_robin, first)
        store.put(power_of_two, second)
        assert store.count() == 2
        for condition, result in ((round_robin, first),
                                  (power_of_two, second)):
            fetched = store.get(condition.content_hash())
            assert fetched.runs == result.runs
            spec = store.get_spec(condition.content_hash())
            assert spec.cluster == condition.cluster

    def test_cluster_condition_does_not_collide_with_single(
            self, spec, store):
        single = spec.with_overrides(
            qps_list=(50_000,), runs=1, num_requests=40).expand()[0]
        clustered = self.cluster_spec("round-robin").expand()[0]
        assert single.content_hash() != clustered.content_hash()

    def test_memoization_replays_cluster_results_exactly(self, store):
        condition = self.cluster_spec("power-of-two").expand()[0]
        result = condition.to_plan().run()
        store.put(condition, result)
        replayed = store.get(condition.content_hash())
        assert ([run.node_utilizations for run in replayed.runs]
                == [run.node_utilizations for run in result.runs])
        assert replayed.runs == result.runs


class TestGraphHashCoverage:
    """Graph and arrival fields must participate in memoization keys.

    Same hazard class as :class:`TestClusterHashCoverage`: if the
    service-graph topology or the interarrival shape were left out of
    :meth:`ConditionSpec.content_hash`, campaigns differing only in
    those fields would collide in the store and silently replay each
    other's results.
    """

    def graph_spec(self, graph="memcached-cached", arrival=None):
        from repro.graph.presets import graph_preset

        return CampaignSpec(
            name="graph-store-test",
            workload="memcached",
            conditions={"SMToff": server_with_smt(False)},
            qps_list=(50_000,),
            clients={"LP": LP_CLIENT},
            runs=1,
            num_requests=40,
            graph=graph_preset(graph) if graph else None,
            arrival=arrival,
        )

    def test_graph_never_collides_with_flat(self, spec):
        flat = spec.with_overrides(
            qps_list=(50_000,), runs=1, num_requests=40).expand()[0]
        graphed = self.graph_spec().expand()[0]
        assert flat.content_hash() != graphed.content_hash()

    def test_graph_topologies_never_collide(self):
        cached = self.graph_spec("memcached-cached").expand()[0]
        hd = self.graph_spec("hdsearch-graph").expand()[0]
        assert cached.content_hash() != hd.content_hash()

    def test_arrival_shape_never_collides(self):
        from repro.loadgen.interarrival import ArrivalSpec

        poisson = self.graph_spec().expand()[0]
        diurnal = self.graph_spec(
            arrival=ArrivalSpec(shape="diurnal", period_us=20_000.0)
        ).expand()[0]
        flash = self.graph_spec(
            arrival=ArrivalSpec(shape="flash-crowd",
                                spike_start_us=1_000.0,
                                spike_duration_us=2_000.0,
                                spike_factor=4.0)
        ).expand()[0]
        hashes = {c.content_hash() for c in (poisson, diurnal, flash)}
        assert len(hashes) == 3

    def test_store_round_trips_graph_and_arrival(self, store):
        from repro.loadgen.interarrival import ArrivalSpec

        condition = self.graph_spec(
            arrival=ArrivalSpec(shape="diurnal", period_us=20_000.0)
        ).expand()[0]
        result = condition.to_plan().run()
        store.put(condition, result)
        fetched = store.get(condition.content_hash())
        assert fetched.runs == result.runs
        spec = store.get_spec(condition.content_hash())
        assert spec.graph == condition.graph
        assert spec.arrival == condition.arrival
