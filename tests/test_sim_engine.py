"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_ties_break_by_insertion_order(self, sim):
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule(2.5, lambda: None)
        sim.run()
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_nan_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        marks = []
        sim.schedule_at(4.0, marks.append, "x")
        sim.run()
        assert sim.now == 4.0 and marks == ["x"]

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_other_events_still_fire(self, sim):
        fired = []
        victim = sim.schedule(1.0, fired.append, "victim")
        sim.schedule(2.0, fired.append, "survivor")
        victim.cancel()
        sim.run()
        assert fired == ["survivor"]


class TestRunControl:
    def test_run_returns_fired_count(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 5

    def test_run_max_events(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.run(max_events=2) == 2
        assert sim.pending_events == 3

    def test_run_until_stops_at_boundary(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.schedule(3.0, fired.append, 3)
        sim.run_until(2.0)
        assert fired == [1, 2]
        assert sim.now == 2.0

    def test_run_until_advances_clock_past_empty_queue(self, sim):
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_run_until_rejects_past_target(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_step_on_empty_queue_returns_false(self, sim):
        assert sim.step() is False

    def test_clear_drops_pending_events(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.clear()
        assert sim.run() == 0

    def test_events_processed_counter(self, sim):
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 3


class TestFastPath:
    """The fire-and-forget tuple path (post / post_at / post_at_batch)."""

    def test_post_fires_in_time_order(self, sim):
        fired = []
        sim.post(5.0, fired.append, "late")
        sim.post(1.0, fired.append, "early")
        assert sim.run() == 2
        assert fired == ["early", "late"]
        assert sim.now == 5.0

    def test_post_returns_no_handle(self, sim):
        assert sim.post(1.0, lambda: None) is None

    def test_post_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.post(-1.0, lambda: None)

    def test_post_nan_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.post(float("nan"), lambda: None)

    def test_post_at_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.post_at(1.0, lambda: None)

    def test_post_at_batch_schedules_train(self, sim):
        fired = []
        count = sim.post_at_batch(
            (float(t), fired.append, (t,)) for t in (3, 1, 2))
        assert count == 3
        sim.run()
        assert fired == [1, 2, 3]

    def test_post_at_batch_rejects_past_times(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.post_at_batch([(1.0, lambda: None, ())])

    def test_tie_break_by_insertion_across_both_paths(self, sim):
        """>= 3 same-time events, mixing cancellable and fast-path
        entries, fire in exact insertion order."""
        fired = []
        sim.post(1.0, fired.append, "a")
        sim.schedule(1.0, fired.append, "b")
        sim.post_at_batch([(1.0, fired.append, ("c",)),
                           (1.0, fired.append, ("d",))])
        sim.post(1.0, fired.append, "e")
        sim.run()
        assert fired == ["a", "b", "c", "d", "e"]

    def test_schedule_at_exactly_now_fires_at_now(self, sim):
        sim.schedule(2.0, lambda: None)
        sim.run()
        fired = []
        sim.schedule_at(sim.now, fired.append, "now")
        sim.post_at(sim.now, fired.append, "now-fast")
        sim.run()
        assert fired == ["now", "now-fast"]
        assert sim.now == 2.0

    def test_step_interleaves_both_entry_kinds(self, sim):
        fired = []
        sim.post(1.0, fired.append, "fast")
        sim.schedule(2.0, fired.append, "slow")
        assert sim.step() and sim.step()
        assert sim.step() is False
        assert fired == ["fast", "slow"]
        assert sim.events_processed == 2


class TestCancellationAccounting:
    def test_live_pending_excludes_cancelled(self, sim):
        keep = [sim.schedule(float(i), lambda: None) for i in range(5)]
        keep[1].cancel()
        keep[3].cancel()
        assert sim.pending_events == 5
        assert sim.live_pending_events == 3

    def test_cancel_after_fire_does_not_corrupt_count(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        assert sim.live_pending_events == 0

    def test_run_until_with_cancelled_head_event(self, sim):
        fired = []
        head = sim.schedule(1.0, fired.append, "head")
        sim.schedule(2.0, fired.append, "kept")
        sim.schedule(5.0, fired.append, "beyond")
        head.cancel()
        assert sim.run_until(3.0) == 1
        assert fired == ["kept"]
        assert sim.now == 3.0
        assert sim.live_pending_events == 1

    def test_compaction_drops_cancelled_majority(self, sim):
        events = [sim.schedule(float(i), lambda: None)
                  for i in range(200)]
        for event in events[:150]:
            event.cancel()
        # Lazy compaction rebuilt the heap once cancelled entries
        # outnumbered live ones: most tombstones are physically gone
        # (not just flagged), and live accounting stays exact.
        assert sim.live_pending_events == 50
        assert sim.live_pending_events <= sim.pending_events < 150
        assert sim.run() == 50

    def test_small_heaps_skip_compaction(self, sim):
        events = [sim.schedule(float(i), lambda: None) for i in range(10)]
        for event in events[:9]:
            event.cancel()
        assert sim.pending_events == 10
        assert sim.live_pending_events == 1
        assert sim.run() == 1

    def test_clear_resets_cancelled_accounting(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        sim.clear()
        assert sim.pending_events == 0
        assert sim.live_pending_events == 0

    def test_cancel_after_clear_does_not_corrupt_count(self, sim):
        """A handle whose entry was dropped by clear() must not
        decrement accounting for events scheduled afterwards."""
        stale = sim.schedule(1.0, lambda: None)
        sim.clear()
        stale.cancel()
        assert sim.live_pending_events == 0
        sim.post(1.0, lambda: None)
        assert sim.live_pending_events == 1
        assert sim.run() == 1
