"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_ties_break_by_insertion_order(self, sim):
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule(2.5, lambda: None)
        sim.run()
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_nan_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        marks = []
        sim.schedule_at(4.0, marks.append, "x")
        sim.run()
        assert sim.now == 4.0 and marks == ["x"]

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_other_events_still_fire(self, sim):
        fired = []
        victim = sim.schedule(1.0, fired.append, "victim")
        sim.schedule(2.0, fired.append, "survivor")
        victim.cancel()
        sim.run()
        assert fired == ["survivor"]


class TestRunControl:
    def test_run_returns_fired_count(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 5

    def test_run_max_events(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.run(max_events=2) == 2
        assert sim.pending_events == 3

    def test_run_until_stops_at_boundary(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.schedule(3.0, fired.append, 3)
        sim.run_until(2.0)
        assert fired == [1, 2]
        assert sim.now == 2.0

    def test_run_until_advances_clock_past_empty_queue(self, sim):
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_run_until_rejects_past_target(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_step_on_empty_queue_returns_false(self, sim):
        assert sim.step() is False

    def test_clear_drops_pending_events(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.clear()
        assert sim.run() == 0

    def test_events_processed_counter(self, sim):
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 3
