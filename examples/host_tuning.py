#!/usr/bin/env python3
"""Tune a real (or fake) Linux host into the paper's HP configuration.

Demonstrates the host toolkit end to end:

1. snapshot the machine's tunable state,
2. build and review the tuning plan for the HP configuration,
3. apply it (sysfs writes, MSR writes, grub edits),
4. restore the snapshot.

This example runs against a synthetic Skylake sysfs tree
(:class:`FakeFilesystem`) so it is safe anywhere.  On a real client
machine, replace the filesystem with ``RealFilesystem()`` and run as
root -- every write lands on the live ``/sys`` and ``/dev/cpu`` paths.

Run:
    python examples/host_tuning.py
"""

from repro.config import HP_CLIENT, LP_CLIENT, config_warnings
from repro.host import (
    FakeFilesystem,
    HostTuner,
    capture_snapshot,
    make_skylake_tree,
)


def main() -> None:
    # On real hardware:  fs = RealFilesystem()
    fs = FakeFilesystem(make_skylake_tree())
    tuner = HostTuner(fs)

    print("=== 1. Snapshot current state ===")
    snapshot = capture_snapshot(fs)
    print(f"  governor={snapshot.governor}  driver={snapshot.driver}")
    print(f"  C-states={snapshot.enabled_cstates}")
    print(f"  SMT={'on' if snapshot.smt_active else 'off'}  "
          f"turbo={'on' if snapshot.turbo_enabled else 'off'}  "
          f"uncore={snapshot.uncore_limits_mhz} MHz")

    print("\n=== 2. Review the HP tuning plan (dry run) ===")
    plan = tuner.plan(HP_CLIENT)
    print(plan.render())

    print("\n=== 3. Apply ===")
    result = tuner.apply(plan)
    for action in result.performed:
        print(f"  done: {action}")
    if result.needs_reboot:
        print("  NOTE: run update-grub and reboot for the boot-time "
              "knobs (driver, C-state ceiling, nohz).")

    print("\n=== 4. Restore the snapshot ===")
    for action in result.snapshot.restore(fs):
        print(f"  {action}")

    print("\n=== Bonus: why not just leave the defaults? ===")
    for warning in config_warnings(LP_CLIENT):
        print(f"  LP warning: {warning}")


if __name__ == "__main__":
    main()
