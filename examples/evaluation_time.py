#!/usr/bin/env python3
"""How many runs does your experiment need? (Section V-C / Table IV)

Collects pilot runs for an LP and an HP client at a low and a high
load, tests normality, and applies both repetition-count methods --
the parametric equation 3 and the non-parametric CONFIRM -- then
prints the implied wall-clock evaluation time at the paper's 2-minute
run duration.  Finishes with the Section VI recommendation for this
generator design.

Run:
    python examples/evaluation_time.py
"""

import numpy as np

from repro import (
    HP_CLIENT,
    LP_CLIENT,
    build_memcached_testbed,
    estimate_evaluation_time,
    recommend,
    run_experiment,
)
from repro.loadgen.base import GeneratorDesign

PILOT_RUNS = 30
REQUESTS = 500
LOADS = (10_000, 500_000)


def main() -> None:
    rng = np.random.default_rng(0)
    print(f"Pilot: {PILOT_RUNS} runs per condition\n")
    print(f"{'condition':<16}{'parametric':>11}{'CONFIRM':>9}"
          f"{'Shapiro':>9}{'eval time':>12}")
    for config in (LP_CLIENT, HP_CLIENT):
        for qps in LOADS:
            result = run_experiment(
                lambda seed, c=config, q=qps: build_memcached_testbed(
                    seed, client_config=c, qps=q,
                    num_requests=REQUESTS),
                runs=PILOT_RUNS)
            estimate = estimate_evaluation_time(
                result.avg_samples(), rng=rng)
            minutes = estimate.evaluation_seconds / 60
            label = f"{config.name}@{qps // 1000}K"
            print(f"{label:<16}{estimate.parametric_runs:>11d}"
                  f"{estimate.confirm_display():>9}"
                  f"{estimate.normality.verdict:>9}"
                  f"{minutes:>10.0f} min")

    print("\nPaper, Finding 4: the client configuration changes how "
          "long it takes to get a statistically confident answer.\n")
    design = GeneratorDesign(loop="open", time_sensitive=True)
    print(recommend(design, target_config=LP_CLIENT,
                    target_known=True).render())


if __name__ == "__main__":
    main()
