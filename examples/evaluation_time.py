#!/usr/bin/env python3
"""How many runs does your experiment need? (Section V-C / Table IV)

Collects pilot runs for an LP and an HP client at a low and a high
load, tests normality, and applies both repetition-count methods --
the parametric equation 3 and the non-parametric CONFIRM -- then
prints the implied wall-clock evaluation time at the paper's 2-minute
run duration.  Finishes with the Section VI recommendation for this
generator design.

Run:
    python examples/evaluation_time.py
"""

import numpy as np

from repro import (
    LP_CLIENT,
    estimate_evaluation_time,
    experiment,
    recommend,
)
from repro.loadgen.base import GeneratorDesign

PILOT_RUNS = 30
REQUESTS = 500
LOADS = (10_000, 500_000)


def main() -> None:
    rng = np.random.default_rng(0)
    pilot = (experiment("memcached")
             .load(num_requests=REQUESTS)
             .policy(runs=PILOT_RUNS)
             .build())
    print(f"Pilot: {PILOT_RUNS} runs per condition\n")
    print(f"{'condition':<16}{'parametric':>11}{'CONFIRM':>9}"
          f"{'Shapiro':>9}{'eval time':>12}")
    for name in ("LP", "HP"):
        for qps in LOADS:
            result = pilot.with_client(name).with_qps(qps).run()
            estimate = estimate_evaluation_time(
                result.avg_samples(), rng=rng)
            minutes = estimate.evaluation_seconds / 60
            label = f"{name}@{qps // 1000}K"
            print(f"{label:<16}{estimate.parametric_runs:>11d}"
                  f"{estimate.confirm_display():>9}"
                  f"{estimate.normality.verdict:>9}"
                  f"{minutes:>10.0f} min")

    print("\nPaper, Finding 4: the client configuration changes how "
          "long it takes to get a statistically confident answer.\n")
    design = GeneratorDesign(loop="open", time_sensitive=True)
    print(recommend(design, target_config=LP_CLIENT,
                    target_known=True).render())


if __name__ == "__main__":
    main()
