#!/usr/bin/env python3
"""Cluster-scale testbeds: one workload, many servers.

Three deployments of the same Memcached workload at the same
*per-node* load:

* the paper's single-server testbed,
* a 4-node cluster behind a power-of-two-choices load balancer,
* a 6-shard deployment fanning each request out to 4 shards and
  completing on the 3rd response (quorum).

The topology is part of the experiment spec, so each variant is one
``.cluster(...)`` call on the fluent builder -- hashing, storage and
determinism all work exactly as for single-server plans.

Run:
    python examples/cluster_topologies.py
"""

import numpy as np

from repro.api import experiment

RUNS = 5
REQUESTS = 400
PER_NODE_QPS = 100_000.0


def summarize(label, result):
    p99 = float(np.median(result.p99_samples()))
    print(f"{label:<34} p99 {p99:8.1f} us", end="")
    utils = result.mean_node_utilizations()
    if utils:
        print(f"   per-node util "
              f"{min(utils):.3f}-{max(utils):.3f}")
    else:
        print(f"   server util {result.mean_server_utilization():.3f}")


def main() -> None:
    base = (experiment("memcached")
            .client("LP")
            .load(num_requests=REQUESTS)
            .policy(runs=RUNS, base_seed=0))

    single = base.load(qps=PER_NODE_QPS).build()
    summarize("single server", single.run())

    balanced = (single
                .with_qps(PER_NODE_QPS * 4)
                .with_cluster(nodes=4, lb_policy="power-of-two"))
    summarize("4 nodes, power-of-two LB", balanced.run())

    sharded = (single
               .with_qps(PER_NODE_QPS * 2)
               .with_cluster(shards=6, fanout=4, quorum=3))
    summarize("6 shards, fanout 4, quorum 3", sharded.run())

    print("\nEvery variant is a frozen, hashable plan:")
    for plan in (single, balanced, sharded):
        print(f"  {plan.cluster.describe():<34} "
              f"{plan.content_hash()[:12]}")


if __name__ == "__main__":
    main()
