#!/usr/bin/env python3
"""Service-graph testbeds: multi-tier DAGs under time-varying load.

Three deployments of the same Memcached workload:

* the paper's flat single-server testbed,
* the ``memcached-cached`` preset: frontend -> 80%-hit look-aside
  cache -> 8 hedged leaf shards,
* the same graph driven by a diurnal (sinusoidal-rate) arrival
  process instead of stationary Poisson.

The topology is part of the experiment spec, so each variant is one
``.graph(...)`` call on the fluent builder -- hashing, storage and
determinism all work exactly as for single-server plans.  With
``metrics=True`` the run harvests per-tier cache and resilience
counters into ``RunMetrics.obs_metrics``.

Run:
    python examples/service_graph.py
"""

import numpy as np

from repro.api import ArrivalSpec, experiment

RUNS = 5
REQUESTS = 400
QPS = 100_000.0


def summarize(label, result):
    avg = float(np.median(result.avg_samples()))
    p99 = float(np.median(result.p99_samples()))
    print(f"{label:<38} avg {avg:7.1f} us   p99 {p99:8.1f} us")


def tier_counters(result):
    return [(name, value) for name, value in result.runs[0].obs_metrics
            if name.startswith(("cache.", "resilience."))]


def main() -> None:
    base = (experiment("memcached")
            .client("LP")
            .load(qps=QPS, num_requests=REQUESTS)
            .policy(runs=RUNS, base_seed=0, metrics=True))

    flat = base.build()
    summarize("single server (flat)", flat.run())

    cached = flat.with_graph("memcached-cached")
    result = cached.run()
    summarize("frontend -> cache -> 8 hedged shards", result)

    diurnal = (experiment("memcached")
               .client("LP")
               .load(qps=QPS, num_requests=REQUESTS,
                     arrival=ArrivalSpec(shape="diurnal",
                                         period_us=20_000.0,
                                         amplitude=0.5))
               .policy(runs=RUNS, base_seed=0, metrics=True)
               .graph("memcached-cached")
               .build())
    summarize("  ... under diurnal load", diurnal.run())

    print("\nPer-tier counters (first run of the cached graph):")
    for name, value in tier_counters(result):
        print(f"  {name:<36} {value:>10g}")

    print("\nEvery variant is a frozen, hashable plan:")
    for label, plan in (("flat", flat), ("cached", cached),
                        ("diurnal", diurnal)):
        print(f"  {label:<10} {plan.content_hash()[:12]}")

    print("\nThe cached topology, tier by tier:")
    for line in cached.graph.describe().splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
