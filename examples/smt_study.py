#!/usr/bin/env python3
"""A server-feature study seen through two different clients (Fig. 2).

Question under study: does enabling SMT on the *server* improve
Memcached's tail latency?  We run the study twice, once measured by an
LP client and once by an HP client, and print the speedups and the
CI-overlap conclusions each client would report.

The study grid is declared once and compiled through the
:mod:`repro.api` plan layer -- the same conditions can run as a
parallel ``repro campaign``, and ``repro plan --workload memcached
--knob smt`` prints the expansion without running it.

Run:
    python examples/smt_study.py
"""

from repro.analysis.figures import memcached_study, render_ratio_series
from repro.core.comparison import detect_conflicts

QPS_LIST = (10_000, 100_000, 400_000)
RUNS = 10
REQUESTS = 600


def main() -> None:
    print("Running the SMT study grid (2 clients x 2 server configs "
          f"x {len(QPS_LIST)} loads x {RUNS} runs)...\n")
    grid = memcached_study(
        knob="smt", qps_list=QPS_LIST, runs=RUNS,
        num_requests=REQUESTS)

    print(render_ratio_series(
        grid, "SMToff", "SMTon", "p99",
        title="SMT_OFF / SMT_ON speedup on p99, per client"))

    print("\nConclusions each client draws (CI overlap on p99):")
    per_observer = {}
    for client in ("LP", "HP"):
        comparisons = grid.comparisons(client, "SMToff", "SMTon",
                                       metric="p99")
        per_observer[client] = comparisons
        for qps, comparison in sorted(comparisons.items()):
            print(f"  {client} @ {qps / 1000:.0f}K: "
                  f"{comparison.describe()}")

    conflicts = detect_conflicts(per_observer)
    if conflicts:
        print("\nThe two clients DISAGREE (paper, Finding 2):")
        for conflict in conflicts:
            print(f"  {conflict.describe()}")
    else:
        print("\nNo conflicting conclusions at these loads "
              "(the clients' speedup *magnitudes* still differ).")

    hp_ratio = dict(grid.ratio_series("HP", "SMToff", "SMTon", "p99"))
    lp_ratio = dict(grid.ratio_series("LP", "SMToff", "SMTon", "p99"))
    top = max(QPS_LIST)
    print(f"\nAt {top / 1000:.0f}K QPS the HP client credits SMT with "
          f"{(hp_ratio[top] - 1) * 100:.1f}% p99 improvement; the LP "
          f"client sees only {(lp_ratio[top] - 1) * 100:.1f}%.")


if __name__ == "__main__":
    main()
