#!/usr/bin/env python3
"""Quickstart: does your client configuration change your results?

Runs the same Memcached experiment twice -- once with the default
(LP, low-power) client configuration and once with the tuned (HP)
configuration -- and compares what each client *reports* against the
hardware ground truth at the NIC.

Experiments are authored as :class:`repro.api.ExperimentPlan` specs:
validated at construction, serializable, and executed with
``plan.run()``.

Run:
    python examples/quickstart.py
"""

from repro import experiment

QPS = 100_000
RUNS = 10
REQUESTS = 800


def main() -> None:
    print(f"Memcached @ {QPS // 1000}K QPS, {RUNS} runs of "
          f"{REQUESTS} requests each\n")
    base = (experiment("memcached")
            .load(qps=QPS, num_requests=REQUESTS)
            .policy(runs=RUNS)
            .build())
    results = {name: base.with_client(name).with_label(name).run()
               for name in ("LP", "HP")}

    print(f"{'client':<8}{'measured avg (median CI)':<32}"
          f"{'true avg (NIC)':<16}{'p99':<12}")
    for name, result in results.items():
        ci = result.median_avg_ci()
        true_avg = result.true_avg_samples().mean()
        p99 = result.p99_stats().median
        print(f"{name:<8}{ci.format('us'):<32}"
              f"{true_avg:<16.1f}{p99:<12.1f}")

    lp, hp = results["LP"], results["HP"]
    gap = lp.avg_samples().mean() / hp.avg_samples().mean()
    bias = lp.avg_samples().mean() - lp.true_avg_samples().mean()
    print(f"\nThe LP client reports {gap:.2f}x the latency the HP "
          f"client reports for the *same* service.")
    print(f"Of the LP measurement, {bias:.1f} us is client-side "
          f"measurement error (C-state wake-ups, DVFS ramps, context "
          f"switches), not server latency.")
    print("\nMoral (paper, Finding 1): report and tune your client-side "
          "hardware configuration.")


if __name__ == "__main__":
    main()
