#!/usr/bin/env python3
"""When does the client stop mattering? (Fig. 7 sensitivity sweep)

Sweeps the synthetic workload's added service delay from 0 to 400 us
and reports the LP/HP measurement gap at each point.  The gap decays
toward 1.0 as the service slows down -- the client only corrupts
measurements when its own overhead is the same order of magnitude as
the thing being measured (paper, Finding 3).

The whole sweep is one :class:`repro.api.ExperimentPlan` expanded
over the ``added_delay_us`` axis with ``plan.sweep(...)``.

Run:
    python examples/synthetic_sensitivity.py
"""

import numpy as np

from repro import experiment
from repro.stats.littles_law import concurrency

QPS = 10_000
DELAYS = (0.0, 50.0, 100.0, 200.0, 400.0)
RUNS = 8
REQUESTS = 600


def main() -> None:
    print(f"Synthetic workload @ {QPS // 1000}K QPS "
          f"({RUNS} runs per point)\n")
    base = (experiment("synthetic")
            .load(qps=QPS, num_requests=REQUESTS)
            .policy(runs=RUNS)
            .build())
    sweeps = {name: base.with_client(name).sweep(added_delay_us=DELAYS)
              for name in ("HP", "LP")}

    print(f"{'delay(us)':>10}{'HP avg':>10}{'LP avg':>10}"
          f"{'LP/HP':>8}{'concurrency':>13}")
    for index, delay in enumerate(DELAYS):
        means = {name: float(np.mean(results[index].avg_samples()))
                 for name, results in sweeps.items()}
        gap = means["LP"] / means["HP"]
        in_flight = concurrency(QPS, means["HP"])
        print(f"{delay:>10.0f}{means['HP']:>10.1f}{means['LP']:>10.1f}"
              f"{gap:>8.2f}{in_flight:>13.2f}")

    print("\nReading: at delay 0 (a ~10 us service) the LP client's "
          "measurement is ~2x reality;")
    print("by 400 us of service time the two clients agree within a "
          "few percent.")


if __name__ == "__main__":
    main()
