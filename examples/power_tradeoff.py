#!/usr/bin/env python3
"""The other side of the trade: what does the HP client cost in energy?

The paper recommends tuning time-sensitive clients for performance
(idle=poll, performance governor).  That recommendation has an energy
price: a polling idle loop never sleeps.  This example runs the same
Memcached experiment under both client configurations, extracts each
client core's busy/idle split and frequency from the simulation, and
feeds them to the power model.

A single :class:`repro.api.ExperimentPlan` describes the experiment;
``plan.testbed(seed)`` hands back the live testbed so the power model
can inspect the generator cores after the run.

Run:
    python examples/power_tradeoff.py
"""

from repro import HP_CLIENT, LP_CLIENT, experiment
from repro.hardware.power import PowerModel
from repro.parameters import DEFAULT_PARAMETERS

QPS = 100_000
REQUESTS = 2_000

PLAN = (experiment("memcached")
        .load(qps=QPS, num_requests=REQUESTS)
        .policy(base_seed=1)
        .build())


def client_energy(config):
    testbed = PLAN.with_client(config).testbed()
    metrics = testbed.run()
    horizon_us = testbed.sim.now
    model = PowerModel(DEFAULT_PARAMETERS, config)
    cores = [machine.core for machine in testbed.generator.machines]
    total_joules = 0.0
    for core in cores:
        busy = core.total_busy_us
        idle = max(0.0, horizon_us - busy)
        freq = core.frequency.current_freq_ghz
        total_joules += model.run_energy(busy, idle, freq).total_joules
    watts = total_joules / (horizon_us / 1e6)
    return metrics, total_joules, watts, len(cores)


def main() -> None:
    print(f"Memcached @ {QPS // 1000}K QPS, {REQUESTS} requests, "
          f"client generator cores only\n")
    print(f"{'client':<8}{'measured avg':>14}{'true avg':>10}"
          f"{'gen. cores':>12}{'energy (J)':>12}{'power (W)':>11}")
    rows = {}
    for config in (LP_CLIENT, HP_CLIENT):
        metrics, joules, watts, cores = client_energy(config)
        rows[config.name] = (metrics, joules, watts)
        print(f"{config.name:<8}{metrics.avg_us:>12.1f}us"
              f"{metrics.true_avg_us:>9.1f}u{cores:>11d}"
              f"{joules:>12.2f}{watts:>11.1f}")

    lp_metrics, lp_joules, _ = rows["LP"]
    hp_metrics, hp_joules, _ = rows["HP"]
    print(f"\nAccuracy: LP inflates the measurement by "
          f"{lp_metrics.avg_us - lp_metrics.true_avg_us:.1f} us; "
          f"HP by {hp_metrics.avg_us - hp_metrics.true_avg_us:.1f} us.")
    print(f"Energy:   the HP client burns "
          f"{hp_joules / lp_joules:.1f}x the LP client's energy for "
          f"that accuracy.")
    print("\nThis is exactly the tension Section VI discusses: tune "
          "the client for performance when the generator is "
          "time-sensitive, but know it departs from the power-managed "
          "production environment (and from its power bill).")


if __name__ == "__main__":
    main()
