"""Service-graph benchmark: flat leaf tier vs. the full 3-tier DAG.

Runs the same seeded open-loop Memcached workload two ways:

* **flat shards** -- the ``memcached-cached`` preset's leaf tier on
  its own: 8 shards, full fanout, no cache, no resilience;
* **service graph** -- the full preset: frontend -> 80%-hit cache ->
  the same 8 shards behind a hedged dispatcher, plus a diurnal
  variant of the same graph.

The interesting numbers are events/s throughput and the per-request
wall-clock overhead the graph machinery adds over the flat
deployment (frontend hop + cache lookup + dispatch bookkeeping).
The overhead is asserted under a ceiling so graph composition never
silently regresses the hot path, and every topology is asserted
deterministic: a second seeded invocation must reproduce the
metrics bit-for-bit.

Usage::

    python benchmarks/bench_graph.py            # 20k requests
    python benchmarks/bench_graph.py --quick    # 2k requests
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.cluster import ClusterSpec, build_cluster_testbed  # noqa: E402
from repro.config.presets import LP_CLIENT, SERVER_BASELINE  # noqa: E402
from repro.graph import build_graph_testbed, graph_preset  # noqa: E402
from repro.loadgen.interarrival import ArrivalSpec  # noqa: E402

QPS = 100_000.0
SEED = 7
# Graph dispatch must stay within this factor of the flat deployment
# per simulated request (it does strictly more work per request:
# one extra tier, a cache decision, resilience bookkeeping).
OVERHEAD_CEILING = 4.0


def run_flat(num_requests):
    started = time.perf_counter()
    testbed = build_cluster_testbed(
        "memcached", seed=SEED, client_config=LP_CLIENT,
        server_config=SERVER_BASELINE, qps=QPS,
        num_requests=num_requests, cluster=ClusterSpec(shards=8))
    metrics = testbed.run()
    elapsed = time.perf_counter() - started
    return metrics, elapsed, testbed.sim.events_processed


def run_graph(num_requests, arrival=None):
    started = time.perf_counter()
    testbed = build_graph_testbed(
        "memcached", seed=SEED, client_config=LP_CLIENT,
        server_config=SERVER_BASELINE, qps=QPS,
        num_requests=num_requests,
        graph=graph_preset("memcached-cached"), arrival=arrival)
    metrics = testbed.run()
    elapsed = time.perf_counter() - started
    return metrics, elapsed, testbed.sim.events_processed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="2k requests instead of 20k")
    parser.add_argument("--requests", type=int, default=None,
                        help="request count per topology")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write results as JSON")
    args = parser.parse_args(argv)
    num_requests = (args.requests if args.requests is not None
                    else (2_000 if args.quick else 20_000))

    diurnal = ArrivalSpec(shape="diurnal", period_us=20_000.0,
                          amplitude=0.5)

    flat, flat_s, flat_events = run_flat(num_requests)
    graph, graph_s, graph_events = run_graph(num_requests)
    shifted, shifted_s, shifted_events = run_graph(
        num_requests, arrival=diurnal)

    replay, _, _ = run_graph(num_requests)
    assert replay == graph, "graph runs must be deterministic"
    replay, _, _ = run_graph(num_requests, arrival=diurnal)
    assert replay == shifted, "diurnal runs must be deterministic"

    rows = [
        ("flat 8 shards", flat, flat_s, flat_events),
        ("frontend>cache>shards", graph, graph_s, graph_events),
        ("  ... diurnal load", shifted, shifted_s, shifted_events),
    ]
    print(f"Memcached @ {QPS:g} QPS, {num_requests} requests, "
          f"seed {SEED}")
    print(f"{'topology':<24}{'wall (s)':>10}{'events/s':>12}"
          f"{'avg (us)':>10}{'p99 (us)':>10}")
    for name, metrics, wall, events in rows:
        print(f"{name:<24}{wall:>10.2f}{events / wall:>12.0f}"
              f"{metrics.avg_us:>10.1f}{metrics.p99_us:>10.1f}")

    per_request_flat = flat_s / num_requests
    per_request_graph = graph_s / num_requests
    overhead = per_request_graph / per_request_flat
    print(f"per-request cost: flat {per_request_flat * 1e6:.1f} us, "
          f"graph {per_request_graph * 1e6:.1f} us "
          f"({overhead:.2f}x)")
    assert overhead < OVERHEAD_CEILING, (
        f"graph per-request overhead {overhead:.2f}x exceeds the "
        f"{OVERHEAD_CEILING:g}x ceiling over the flat deployment")

    if args.json:
        payload = {
            "qps": QPS,
            "requests": num_requests,
            "seed": SEED,
            "rows": [
                {"topology": name, "wall_s": wall,
                 "events_per_s": events / wall,
                 "avg_us": metrics.avg_us, "p99_us": metrics.p99_us}
                for name, metrics, wall, events in rows
            ],
            "per_request_overhead_x": overhead,
            "overhead_ceiling_x": OVERHEAD_CEILING,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
