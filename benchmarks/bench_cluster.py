"""Cluster-scale benchmark: single server vs. a load-balanced fleet.

Runs the same seeded open-loop Memcached workload two ways:

* **single server** -- the paper's one-box testbed at the base load;
* **4-node cluster** -- the same aggregate *per-node* load through a
  power-of-two-choices :class:`~repro.cluster.LoadBalancer` fronting
  four replicated stations (4x the request count, 4x the offered
  QPS), i.e. four single-server testbeds' worth of simulated work in
  one run.

The interesting numbers are events/s throughput (how much simulated
cluster the engine sustains per wall-clock second -- cluster
dispatch adds only an O(1) LB decision per request) and the
per-node utilization spread (LB fairness).  Both runs are asserted
deterministic: a second seeded invocation must reproduce the metrics
bit-for-bit.

Usage::

    python benchmarks/bench_cluster.py            # 20k base requests
    python benchmarks/bench_cluster.py --quick    # 2k base requests
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.cluster import ClusterSpec, build_cluster_testbed  # noqa: E402
from repro.config.presets import LP_CLIENT, SERVER_BASELINE  # noqa: E402

BASE_QPS = 200_000.0
NODES = 4
SEED = 7


def run_topology(cluster, qps, num_requests):
    started = time.perf_counter()
    testbed = build_cluster_testbed(
        "memcached", seed=SEED, client_config=LP_CLIENT,
        server_config=SERVER_BASELINE, qps=qps,
        num_requests=num_requests, cluster=cluster)
    metrics = testbed.run()
    elapsed = time.perf_counter() - started
    events = testbed.sim.events_processed
    return metrics, elapsed, events


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="2k base requests instead of 20k")
    parser.add_argument("--requests", type=int, default=None,
                        help="base (single-server) request count")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write results as JSON")
    args = parser.parse_args(argv)
    base_requests = (args.requests if args.requests is not None
                     else (2_000 if args.quick else 20_000))

    single_spec = ClusterSpec()
    cluster_spec = ClusterSpec(nodes=NODES, lb_policy="power-of-two")

    single, single_s, single_events = run_topology(
        single_spec, BASE_QPS, base_requests)
    cluster, cluster_s, cluster_events = run_topology(
        cluster_spec, BASE_QPS * NODES, base_requests * NODES)

    replay, _, _ = run_topology(
        cluster_spec, BASE_QPS * NODES, base_requests * NODES)
    assert replay == cluster, "cluster runs must be deterministic"

    rows = [
        ("single server", base_requests, single_s,
         single_events / single_s, single.p99_us, ()),
        (f"{NODES}-node p2c cluster", base_requests * NODES,
         cluster_s, cluster_events / cluster_s, cluster.p99_us,
         cluster.node_utilizations),
    ]
    print(f"Memcached @ {BASE_QPS:g} QPS/node, seed {SEED}")
    print(f"{'topology':<22}{'requests':>10}{'wall (s)':>10}"
          f"{'events/s':>12}{'p99 (us)':>10}")
    for name, requests, wall, rate, p99, _ in rows:
        print(f"{name:<22}{requests:>10}{wall:>10.2f}"
              f"{rate:>12.0f}{p99:>10.1f}")
    utils = cluster.node_utilizations
    print(f"per-node utilization: "
          f"{', '.join(f'{u:.3f}' for u in utils)} "
          f"(spread {max(utils) - min(utils):.3f})")

    per_request_single = single_s / base_requests
    per_request_cluster = cluster_s / (base_requests * NODES)
    print(f"per-request cost: single {per_request_single * 1e6:.1f} us, "
          f"cluster {per_request_cluster * 1e6:.1f} us "
          f"({per_request_cluster / per_request_single:.2f}x)")

    if args.json:
        payload = {
            "base_qps": BASE_QPS,
            "nodes": NODES,
            "seed": SEED,
            "rows": [
                {"topology": name, "requests": requests,
                 "wall_s": wall, "events_per_s": rate,
                 "p99_us": p99,
                 "node_utilizations": list(node_utils)}
                for name, requests, wall, rate, p99, node_utils
                in rows
            ],
            "per_request_overhead_x":
                per_request_cluster / per_request_single,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
