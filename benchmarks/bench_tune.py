"""Autotune benchmark: search cost and memoization effectiveness.

Runs the acceptance scenario -- a grid search over SMT x frequency
governor on the Memcached model, scored by capacity under the paper's
400us p99 QoS target -- twice against one result store:

* **cold**: empty store, every condition simulates;
* **warm**: identical search, which must execute **zero** simulations
  (100% cache hits) -- the memoization gate.

Also reports a successive-halving run on the warm store to show the
rung schedule reusing cached rungs.  Gates:

* the warm re-run executes 0 conditions and hits on all of them;
* cold and warm runs agree on the winner and every trial score;
* charged requests never exceed the driver's declared budget;
* the winner picks the performance governor (the model's capacity
  ordering).

Usage::

    python benchmarks/bench_tune.py            # 300-request trials
    python benchmarks/bench_tune.py --quick    # 120-request trials
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.api import experiment  # noqa: E402
from repro.campaign.store import ResultStore  # noqa: E402
from repro.tune import (  # noqa: E402
    BoolTunable,
    CandidateEvaluator,
    CapacityObjective,
    CategoricalTunable,
    GridSearch,
    SearchSpace,
    SuccessiveHalving,
)

QPS_SWEEP = (400_000.0, 800_000.0, 1_200_000.0)
QOS_TARGET_US = 400.0
SEED = 7
RUNS = 2


def space():
    return SearchSpace(tunables=(
        BoolTunable(name="smt", field="hardware.server.smt"),
        CategoricalTunable(
            name="gov", field="hardware.server.frequency_governor",
            values=("powersave", "performance")),
    ))


def evaluator(store):
    plan = experiment("memcached").client("LP").build()
    objective = CapacityObjective(qps_list=QPS_SWEEP,
                                  qos_target_us=QOS_TARGET_US)
    return CandidateEvaluator(plan, space(), objective, runs=RUNS,
                              base_seed=SEED, store=store)


def timed(driver, store):
    started = time.perf_counter()
    result = driver.run(evaluator(store))
    return result, time.perf_counter() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="120-request trials instead of 300")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per run per trial")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write results as JSON")
    args = parser.parse_args(argv)
    num_requests = (args.requests if args.requests is not None
                    else (120 if args.quick else 300))

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "bench-tune.sqlite")
        with ResultStore(store_path) as store:
            cold, cold_s = timed(GridSearch(num_requests=num_requests),
                                 store)
            warm, warm_s = timed(GridSearch(num_requests=num_requests),
                                 store)
            halving, halving_s = timed(
                SuccessiveHalving(budget0=max(10, num_requests // 4),
                                  eta=2, seed=SEED),
                store)

    total = len(space().grid()) * len(QPS_SWEEP)
    print(f"Memcached autotune: SMT x governor, "
          f"{len(space().grid())} candidates x {len(QPS_SWEEP)} loads, "
          f"{RUNS} x {num_requests} requests/trial, "
          f"p99 <= {QOS_TARGET_US:g}us")
    rows = [("grid (cold store)", cold, cold_s),
            ("grid (warm store)", warm, warm_s),
            ("halving (warm store)", halving, halving_s)]
    print(f"{'search':<22}{'wall (s)':>10}{'executed':>10}"
          f"{'cached':>8}{'score':>12}")
    for name, result, wall in rows:
        print(f"{name:<22}{wall:>10.2f}{result.executed:>10}"
              f"{result.cache_hits:>8}{result.best.score:>12,.0f}")
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"memoized re-run: {warm.executed} simulations, "
          f"{warm.cache_hits}/{total} cache hits, {speedup:.0f}x "
          f"faster than cold")

    assert warm.executed == 0, (
        f"warm re-run simulated {warm.executed} conditions; "
        "memoization must make it zero")
    assert warm.cache_hits == total, (
        f"warm re-run hit {warm.cache_hits}/{total} conditions")
    assert warm.best.label == cold.best.label
    assert [t.score for t in warm.trials] == \
        [t.score for t in cold.trials]
    assert cold.charged_requests <= cold.declared_budget
    assert halving.charged_requests <= halving.declared_budget
    assert cold.best.assignment["gov"] == "performance", (
        f"expected the performance governor to win, got "
        f"{cold.best.label}")

    if args.json:
        payload = {
            "benchmark": "tune",
            "space": space().to_dict(),
            "qps_sweep": list(QPS_SWEEP),
            "qos_target_us": QOS_TARGET_US,
            "runs": RUNS,
            "requests_per_trial": num_requests,
            "seed": SEED,
            "cpu_count": os.cpu_count() or 1,
            "note": "wall times measured in a 1-core container; "
                    "the memoization gate (0 simulations on re-run) "
                    "is hardware-independent",
            "rows": [
                {"search": name,
                 "wall_s": round(wall, 4),
                 "executed": result.executed,
                 "cached": result.cache_hits,
                 "charged_requests": result.charged_requests,
                 "declared_budget": result.declared_budget,
                 "best_label": result.best.label,
                 "best_score_qps": round(result.best.score, 1)}
                for name, result, wall in rows
            ],
            "memoized_rerun_executed": warm.executed,
            "memoized_rerun_cache_hits": warm.cache_hits,
            "warm_speedup_x": round(speedup, 1),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
