"""Fig. 3: C1E impact on Memcached latency with LP and HP clients.

Regenerates the four panels (avg, p99, C1E_ON/C1E_OFF ratios) and
runs the paper's conclusion analysis: at which loads does each client
declare C1E harmful (CIs disjoint), and do the clients disagree
anywhere (Finding 2)?
"""

from benchmarks.conftest import BENCH_REQUESTS, BENCH_RUNS, run_once
from repro.analysis.figures import (
    MEMCACHED_QPS,
    memcached_study,
    render_latency_series,
    render_ratio_series,
)
from repro.core.comparison import detect_conflicts


def build_grid():
    return memcached_study(
        knob="c1e", qps_list=MEMCACHED_QPS,
        runs=BENCH_RUNS, num_requests=BENCH_REQUESTS)


def test_fig3_memcached_c1e(benchmark):
    grid = run_once(benchmark, build_grid)
    print()
    print(render_latency_series(
        grid, "avg", title="Fig 3a: Average Response Time (us, median)"))
    print()
    print(render_latency_series(
        grid, "p99", title="Fig 3b: 99th Percentile Latency (us, median)"))
    print()
    print(render_ratio_series(
        grid, "C1Eon", "C1Eoff", "avg",
        title="Fig 3c: C1E_ON / C1E_OFF (avg)"))
    print()
    print(render_ratio_series(
        grid, "C1Eon", "C1Eoff", "p99",
        title="Fig 3d: C1E_ON / C1E_OFF (99th)"))

    per_observer = {
        client: grid.comparisons(client, "C1Eoff", "C1Eon", "avg")
        for client in ("LP", "HP")
    }
    print()
    print("Conclusion analysis (CI overlap, avg):")
    for client, comparisons in per_observer.items():
        for qps, comparison in sorted(comparisons.items()):
            print(f"  {client} @ {qps / 1000:.0f}K: "
                  f"{comparison.describe()}")
    conflicts = detect_conflicts(per_observer)
    for conflict in conflicts:
        print("  CONFLICT:", conflict.describe())

    # --- shape assertions -------------------------------------------------
    hp_ratio = dict(grid.ratio_series("HP", "C1Eon", "C1Eoff", "avg"))
    low = hp_ratio[min(grid.qps_list)]
    high = hp_ratio[max(grid.qps_list)]
    assert low > 1.08, f"HP must see C1E slowdown at low load: {low:.3f}"
    assert high < low, "C1E impact must fade at high load"

    lp_ratio = dict(grid.ratio_series("LP", "C1Eon", "C1Eoff", "avg"))
    assert lp_ratio[min(grid.qps_list)] < low, \
        "LP's measured C1E slowdown must be diluted by client overhead"
