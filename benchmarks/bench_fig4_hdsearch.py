"""Fig. 4: SMT and C1E impact on HDSearch with LP and HP clients.

HDSearch's ~millisecond latency is ~10x Memcached's, so the paper
expects (and we assert) a much smaller LP/HP gap (7-17% in the paper
vs 80-150% for Memcached) and *matching* speedup trends between the
two clients.
"""

import numpy as np

from benchmarks.conftest import BENCH_REQUESTS, BENCH_RUNS, run_once
from repro.analysis.figures import (
    HDSEARCH_QPS,
    hdsearch_study,
    render_latency_series,
)


def build_grids():
    requests = max(200, BENCH_REQUESTS // 2)
    smt = hdsearch_study(knob="smt", qps_list=HDSEARCH_QPS,
                         runs=BENCH_RUNS, num_requests=requests)
    c1e = hdsearch_study(knob="c1e", qps_list=HDSEARCH_QPS,
                         runs=BENCH_RUNS, num_requests=requests)
    return smt, c1e


def test_fig4_hdsearch(benchmark):
    smt, c1e = run_once(benchmark, build_grids)
    print()
    print(render_latency_series(
        smt, "avg", title="Fig 4a: Average Response Time (us, median) "
                          "- SMT study"))
    print()
    print(render_latency_series(
        smt, "p99", title="Fig 4b: 99th Percentile Latency (us, median) "
                          "- SMT study"))
    print()
    print(render_latency_series(
        c1e, "avg", title="Fig 4c: Average Response Time (us, median) "
                          "- C1E study"))
    print()
    print(render_latency_series(
        c1e, "p99", title="Fig 4d: 99th Percentile Latency (us, median) "
                          "- C1E study"))

    # --- shape assertions -------------------------------------------------
    gaps = [gap for _, gap in smt.client_gap_series("SMToff", "avg")]
    assert all(1.0 < gap < 1.30 for gap in gaps), \
        f"HDSearch LP/HP gap must be small: {gaps}"

    # Both clients must agree on the C1E trend (same speedup shape).
    lp_trend = [r for _, r in c1e.ratio_series(
        "LP", "C1Eon", "C1Eoff", "avg")]
    hp_trend = [r for _, r in c1e.ratio_series(
        "HP", "C1Eon", "C1Eoff", "avg")]
    assert np.corrcoef(lp_trend, hp_trend)[0, 1] > -0.5 or \
        np.allclose(lp_trend, hp_trend, atol=0.05), \
        "LP and HP must report similar C1E trends on HDSearch"
    assert max(abs(np.array(lp_trend) - np.array(hp_trend))) < 0.08
