"""Fig. 7: sensitivity of the LP/HP gap to service latency.

The synthetic workload extends its service time by a tunable busy-wait
delay (0-400 us).  The paper's shapes:

* (a, b) the LP/HP ratio decays toward 1 as the delay grows
  (2.8x -> 1.02x for the average in the paper);
* (c-f) at low QPS the absolute latency grows linearly with the delay
  (validating the workload implementation).

Per the paper, this figure uses 20 runs per point; QPS points are
chosen with Little's law so concurrency stays below the worker count.
"""

import numpy as np

from benchmarks.conftest import BENCH_REQUESTS, BENCH_RUNS, run_once
from repro.analysis.figures import synthetic_study
from repro.stats.littles_law import feasible_qps
from repro.workloads.synthetic import SYNTHETIC_BASE_US, SYNTHETIC_WORKERS

DELAYS = (0.0, 100.0, 200.0, 300.0, 400.0)
CANDIDATE_QPS = (5_000, 10_000, 15_000, 20_000)


def build_grids():
    max_delay_service = SYNTHETIC_BASE_US + max(DELAYS)
    qps_list = feasible_qps(
        list(CANDIDATE_QPS), service_us=max_delay_service,
        workers=SYNTHETIC_WORKERS)
    runs = min(BENCH_RUNS, 20)  # the paper uses 20 runs here
    return synthetic_study(
        delays_us=DELAYS, qps_list=qps_list, runs=runs,
        num_requests=BENCH_REQUESTS)


def test_fig7_synthetic(benchmark):
    grids = run_once(benchmark, build_grids)
    qps_list = next(iter(grids.values())).qps_list

    print()
    print("Fig 7a/7b: LP / HP ratio by added delay")
    print(f"{'delay(us)':<10}" + "".join(
        f"{qps / 1000:>7.0f}K" for qps in qps_list) + "   (avg)")
    avg_ratio = {}
    for delay, grid in sorted(grids.items()):
        gaps = dict(grid.client_gap_series("baseline", "avg"))
        avg_ratio[delay] = gaps
        print(f"{delay:<10.0f}" + "".join(
            f"{gaps[qps]:>8.2f}" for qps in qps_list))
    print(f"{'delay(us)':<10}" + "".join(
        f"{qps / 1000:>7.0f}K" for qps in qps_list) + "   (p99)")
    for delay, grid in sorted(grids.items()):
        gaps = dict(grid.client_gap_series("baseline", "p99"))
        print(f"{delay:<10.0f}" + "".join(
            f"{gaps[qps]:>8.2f}" for qps in qps_list))

    print()
    print("Fig 7c-7f: absolute latency by delay (us, median)")
    low_qps, high_qps = qps_list[0], qps_list[-1]
    for qps, label in ((low_qps, "c/d"), (high_qps, "e/f")):
        for client in ("HP", "LP"):
            avg_row = []
            p99_row = []
            for delay in sorted(grids):
                result = grids[delay].result(client, "baseline", qps)
                avg_row.append(float(np.median(result.avg_samples())))
                p99_row.append(float(np.median(result.p99_samples())))
            print(f"  ({label}) {client} @ {qps / 1000:.0f}K  avg: "
                  + " ".join(f"{v:8.1f}" for v in avg_row)
                  + "   p99: "
                  + " ".join(f"{v:8.1f}" for v in p99_row))

    # --- shape assertions -------------------------------------------------
    for qps in qps_list:
        ratios = [avg_ratio[delay][qps] for delay in sorted(grids)]
        assert ratios[0] > 1.5, \
            f"zero-delay ratio at {qps}: {ratios[0]:.2f}"
        assert ratios[-1] < 1.15, \
            f"400us-delay ratio at {qps}: {ratios[-1]:.2f}"
        assert ratios[0] > ratios[-1]

    # Linearity at low QPS (paper: validates the implementation).
    hp_avgs = [float(np.median(
        grids[delay].result("HP", "baseline", low_qps).avg_samples()))
        for delay in sorted(grids)]
    increments = np.diff(hp_avgs)
    assert all(70.0 < inc < 130.0 for inc in increments), \
        f"latency must track the 100us delay steps: {increments}"
