"""Table III: the scenario taxonomy and its risk column.

Renders the table and cross-checks the risk flags against the
Section VI recommendation engine: the risky cell (untuned client,
time-sensitive generator, microsecond service) is exactly the one the
recommendations exist to prevent.
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table3
from repro.config.presets import HP_CLIENT
from repro.core.recommendations import recommend
from repro.core.scenarios import risky_scenarios, scenario_table
from repro.loadgen.base import GeneratorDesign


def build_table():
    return scenario_table()


def test_table3_scenarios(benchmark):
    scenarios = run_once(benchmark, build_table)
    print()
    print(render_table3())
    assert len(scenarios) == 4
    risky = risky_scenarios()
    assert len(risky) == 1
    # The recommendation for the risky design is to tune the client,
    # which converts the risky row into its safe sibling.
    design = GeneratorDesign(loop="open", time_sensitive=True)
    advice = recommend(design)
    assert advice.client_config is HP_CLIENT
