"""Ablation: the point of measurement (Section II / Lancet [24]).

The paper argues the in-generator point of measurement is what makes
experiments client-sensitive.  This ablation measures the same LP runs
at all three points -- NIC, kernel, generator -- and shows the client
bias appearing only as the point moves up the client stack.
"""

import numpy as np

from benchmarks.conftest import BENCH_REQUESTS, BENCH_RUNS, run_once
from repro.api import experiment
from repro.config.presets import HP_CLIENT, LP_CLIENT
from repro.loadgen.measurement import PointOfMeasurement

QPS = 100_000


def collect(client_config):
    plan = (experiment("memcached")
            .client(client_config)
            .load(qps=QPS, num_requests=BENCH_REQUESTS)
            .build())
    per_point = {point: [] for point in PointOfMeasurement}
    for seed in range(BENCH_RUNS):
        testbed = plan.testbed(seed)
        testbed.run()
        samples = testbed.samples
        for point in PointOfMeasurement:
            per_point[point].append(
                samples.average_latency_us(point))
    return {point: float(np.mean(values))
            for point, values in per_point.items()}


def build():
    return {"LP": collect(LP_CLIENT), "HP": collect(HP_CLIENT)}


def test_ablation_point_of_measurement(benchmark):
    results = run_once(benchmark, build)
    print()
    print(f"Ablation: average latency (us) by point of measurement "
          f"@ {QPS / 1000:.0f}K")
    print(f"{'client':<8}{'NIC':>10}{'kernel':>10}{'generator':>12}")
    for client, per_point in results.items():
        print(f"{client:<8}"
              f"{per_point[PointOfMeasurement.NIC]:>10.1f}"
              f"{per_point[PointOfMeasurement.KERNEL]:>10.1f}"
              f"{per_point[PointOfMeasurement.GENERATOR]:>12.1f}")

    lp = results["LP"]
    hp = results["HP"]
    # At the NIC the two clients agree: the hardware ground truth is
    # client-configuration independent.
    assert np.isclose(lp[PointOfMeasurement.NIC],
                      hp[PointOfMeasurement.NIC], rtol=0.1)
    # The generator point is where the LP bias lives.
    lp_bias = (lp[PointOfMeasurement.GENERATOR]
               - lp[PointOfMeasurement.NIC])
    hp_bias = (hp[PointOfMeasurement.GENERATOR]
               - hp[PointOfMeasurement.NIC])
    print(f"\nclient bias at generator point: LP {lp_bias:.1f} us, "
          f"HP {hp_bias:.1f} us")
    assert lp_bias > 5 * hp_bias
    # The kernel point sits strictly between.
    assert (lp[PointOfMeasurement.NIC]
            < lp[PointOfMeasurement.KERNEL]
            < lp[PointOfMeasurement.GENERATOR])
