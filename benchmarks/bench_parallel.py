"""Multi-core scale-out benchmark: sharded single-run execution.

Runs one seeded open-loop Memcached run three ways:

* **unsharded** -- ``workers=1``, the plain single-process path (a
  different modeled system, so its wall time is context, not the
  speedup baseline);
* **sharded serial** -- ``workers=W`` decomposition executed with
  ``processes=1``: every shard in this process, back to back;
* **sharded parallel** -- the *same* decomposition with one process
  per shard.

The speedup quoted is parallel vs serial placement of the identical
shard set, so it measures pure multi-core scaling with the simulated
system held fixed.  Two gates:

* **bit-identity** (always): sha256 over every merged telemetry
  column must match between placements, and the merged run metrics
  must compare equal;
* **speedup floor** (multi-core hosts only): parallel placement must
  beat the serial one by ``FLOOR_QUICK``/``FLOOR_FULL`` at 2 workers;
  single-core hosts print the honest ~1.0x and skip the floor.

Usage::

    python benchmarks/bench_parallel.py            # 200k requests
    python benchmarks/bench_parallel.py --quick    # 30k requests
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.api import experiment  # noqa: E402
from repro.parallel.merge import (  # noqa: E402
    merge_columnar_payloads,
    merged_run_metrics,
)
from repro.parallel.runner import _execute_shard  # noqa: E402
from repro.parallel.shard import shard_layout  # noqa: E402
from repro.telemetry.columns import COLUMN_FIELDS  # noqa: E402

QPS = 200_000.0
SEED = 7
#: Parallel-vs-serial placement floor at 2 workers on >= 2 cores.
FLOOR_QUICK = 1.3
FLOOR_FULL = 1.5


def build_plan(workers, num_requests):
    return (experiment("memcached").client("LP")
            .load(qps=QPS, num_requests=num_requests)
            .policy(runs=1, base_seed=SEED, workers=workers)
            .build())


def shard_tasks(plan):
    plan_dict = plan.to_dict()
    return [
        {"plan": plan_dict, "seed": SEED,
         "shard": {"index": shard.index, "workers": shard.workers,
                   "total_requests": shard.total_requests}}
        for shard in shard_layout(plan.load.num_requests,
                                  plan.policy.workers)]


def execute_placement(tasks, processes):
    started = time.perf_counter()
    if processes == 1:
        payloads = [_execute_shard(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            payloads = list(pool.map(_execute_shard, tasks))
    wall = time.perf_counter() - started
    return payloads, wall


def columns_digest(payloads):
    digest = hashlib.sha256()
    for payload in payloads:
        for name in COLUMN_FIELDS:
            digest.update(np.ascontiguousarray(
                payload["columns"][name]).tobytes())
    return digest.hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="30k requests instead of 200k")
    parser.add_argument("--requests", type=int, default=None,
                        help="request count for the run")
    parser.add_argument("--workers", type=int, default=2,
                        help="shard width W (default 2)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write results as JSON")
    args = parser.parse_args(argv)
    num_requests = (args.requests if args.requests is not None
                    else (30_000 if args.quick else 200_000))
    workers = args.workers
    cores = os.cpu_count() or 1
    floor = FLOOR_QUICK if args.quick else FLOOR_FULL

    started = time.perf_counter()
    unsharded = build_plan(1, num_requests).run()
    unsharded_s = time.perf_counter() - started

    plan = build_plan(workers, num_requests)
    tasks = shard_tasks(plan)
    serial_payloads, serial_s = execute_placement(tasks, processes=1)
    parallel_payloads, parallel_s = execute_placement(
        tasks, processes=workers)

    serial_digest = columns_digest(serial_payloads)
    parallel_digest = columns_digest(parallel_payloads)
    bit_identical = serial_digest == parallel_digest
    serial_run = merged_run_metrics(serial_payloads, seed=SEED)
    parallel_run = merged_run_metrics(parallel_payloads, seed=SEED)
    merged = merge_columnar_payloads(serial_payloads)

    speedup = serial_s / parallel_s
    efficiency = speedup / workers
    events = sum(payload["events"] for payload in serial_payloads)
    rows = [
        ("unsharded (workers=1)", unsharded.runs[0], unsharded_s, None),
        (f"sharded W={workers}, serial", serial_run, serial_s, events),
        (f"sharded W={workers}, {workers} procs", parallel_run,
         parallel_s, events),
    ]
    print(f"Memcached @ {QPS:g} QPS, {num_requests} requests, "
          f"seed {SEED}, {cores} core(s)")
    print(f"{'path':<26}{'wall (s)':>10}{'events/s':>12}"
          f"{'avg (us)':>10}{'p99 (us)':>10}")
    for name, metrics, wall, path_events in rows:
        rate = "" if path_events is None else f"{path_events / wall:.0f}"
        print(f"{name:<26}{wall:>10.2f}{rate:>12}"
              f"{metrics.avg_us:>10.1f}{metrics.p99_us:>10.1f}")
    print(f"placement speedup: {speedup:.2f}x "
          f"({efficiency:.0%} efficiency over {workers} workers), "
          f"columns sha256 {'MATCH' if bit_identical else 'MISMATCH'}")

    assert bit_identical, (
        "parallel placement must be bit-identical to serial: "
        f"{serial_digest} != {parallel_digest}")
    assert serial_run == parallel_run, (
        "merged run metrics must compare equal across placements")
    assert merged.measured_count == serial_run.requests

    floor_enforced = cores >= 2 and workers >= 2
    if floor_enforced:
        assert speedup >= floor, (
            f"parallel placement speedup {speedup:.2f}x is below the "
            f"{floor:g}x floor on a {cores}-core host")
    else:
        print(f"speedup floor skipped ({cores} core(s) visible; "
              f"the {floor:g}x gate needs >= 2)")

    if args.json:
        payload = {
            "benchmark": "parallel",
            "qps": QPS,
            "requests": num_requests,
            "seed": SEED,
            "workers": workers,
            "cpu_count": cores,
            "note": "wall times and speedup measured on the host that "
                    "ran the benchmark (committed numbers come from a "
                    "1-core container, where parallel placement cannot "
                    "beat serial); the bit-identity gate is "
                    "hardware-independent",
            "rows": [
                {"path": name, "wall_s": round(wall, 4),
                 "events_per_s": (None if path_events is None else
                                  round(path_events / wall, 1)),
                 "avg_us": metrics.avg_us, "p99_us": metrics.p99_us}
                for name, metrics, wall, path_events in rows
            ],
            "placement_speedup_x": round(speedup, 3),
            "efficiency": round(efficiency, 3),
            "bit_identical": bit_identical,
            "columns_sha256": serial_digest,
            "speedup_floor_x": floor,
            "floor_enforced": floor_enforced,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
