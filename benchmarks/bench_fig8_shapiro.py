"""Fig. 8: Shapiro-Wilk p-values for the Section V-A configurations.

The paper tests 42 configurations (6 scenarios x 7 QPS, 50 runs each)
and finds roughly half non-normal, with non-normality concentrated at
high QPS (queueing skew).  We regenerate the p-value series for the
same six scenarios and assert the concentration shape.
"""

from benchmarks.conftest import BENCH_REQUESTS, run_once
from repro.analysis.figures import memcached_study
from repro.stats.normality import shapiro_wilk

QPS_LIST = (10_000, 100_000, 300_000, 500_000)
#: Normality testing needs the paper's 50-run pilots; the Shapiro-Wilk
#: test has little power below ~30 samples.
RUNS = 50


def build_scenarios():
    smt = memcached_study(knob="smt", qps_list=QPS_LIST,
                          runs=RUNS, num_requests=BENCH_REQUESTS)
    c1e = memcached_study(knob="c1e", qps_list=QPS_LIST,
                          runs=RUNS, num_requests=BENCH_REQUESTS)
    scenarios = {}
    for client in ("LP", "HP"):
        for condition in ("SMToff", "SMTon"):
            scenarios[f"{client}-{condition}"] = {
                qps: smt.result(client, condition, qps).avg_samples()
                for qps in smt.qps_list}
        scenarios[f"{client}-C1Eon"] = {
            qps: c1e.result(client, "C1Eon", qps).avg_samples()
            for qps in c1e.qps_list}
    return scenarios


def test_fig8_shapiro(benchmark):
    scenarios = run_once(benchmark, build_scenarios)
    print()
    print("Fig 8: Shapiro-Wilk p-values (threshold 0.05)")
    header = f"{'scenario':<12}" + "".join(
        f"{qps / 1000:>9.0f}K" for qps in QPS_LIST)
    print(header)
    results = {}
    for scenario, per_qps in scenarios.items():
        row = []
        for qps in QPS_LIST:
            result = shapiro_wilk(per_qps[qps])
            results[(scenario, qps)] = result
            row.append(result.p_value)
        print(f"{scenario:<12}" + "".join(
            f"{p:>10.4f}" for p in row))

    verdicts = [r.normal for r in results.values()]
    print(f"\n{sum(verdicts)}/{len(verdicts)} configurations "
          f"adhere to a normal distribution")

    # --- shape assertions -------------------------------------------------
    # Some configurations must pass and some must fail (the paper: ~50%).
    assert any(verdicts) and not all(verdicts)
    # Non-normality concentrates at the highest load for the HP client
    # (queueing/interference skew).
    high_fail = sum(
        not results[(s, 500_000)].normal for s in
        ("HP-SMToff", "HP-SMTon", "HP-C1Eon"))
    assert high_fail >= 1
