"""Provisioning analysis: the paper's Section V-A datacenter example.

"Let us assume a service with a QoS of 99th percentile latency equal
to 400us.  The LP client finds that the service can handle only 300K
queries without violating any QoS constraints.  In contrast, the HP
client finds that the service can handle 500K queries...  the LP
client determines that a deployment will require 1.6x more machines."

We rerun that reasoning end to end on the simulated testbed: sweep the
load with both clients, find each client's QoS capacity, and size the
fleet.  The QoS bound is placed between the two clients' p99 curves so
the capacities diverge exactly as in the paper's example.
"""

import numpy as np

from benchmarks.conftest import BENCH_REQUESTS, BENCH_RUNS, run_once
from repro.api import experiment
from repro.config.presets import HP_CLIENT, LP_CLIENT
from repro.core.provisioning import (
    capacity_under_qos,
    provisioning_error,
    provisioning_plan,
)

QPS_LIST = (100_000, 200_000, 300_000, 400_000, 500_000)
TARGET_QPS = 5_000_000


def build():
    base = (experiment("memcached")
            .load(num_requests=BENCH_REQUESTS)
            .policy(runs=BENCH_RUNS, base_seed=9_000)
            .build())
    sweeps = {}
    for config in (LP_CLIENT, HP_CLIENT):
        plan = base.with_client(config)
        sweeps[config.name] = {
            qps: float(np.median(result.p99_samples()))
            for qps, result in zip(QPS_LIST,
                                   plan.sweep(qps=QPS_LIST))
        }
    return sweeps


def test_provisioning_example(benchmark):
    sweeps = run_once(benchmark, build)
    # Place the QoS bound inside the LP client's measured p99 range
    # (the paper's 400 us bound likewise sits on the LP curve while
    # the HP curve stays below it).
    lp_values = list(sweeps["LP"].values())
    qos_us = (min(lp_values) + max(lp_values)) / 2.0
    print()
    print(f"Measured p99 (us) by load, QoS bound {qos_us:.1f} us:")
    print(f"{'client':<8}" + "".join(
        f"{qps / 1000:>8.0f}K" for qps in QPS_LIST))
    for client, sweep in sweeps.items():
        print(f"{client:<8}" + "".join(
            f"{sweep[qps]:>9.1f}" for qps in QPS_LIST))

    observers = {
        client: capacity_under_qos(sweep, qos_us, metric="p99")
        for client, sweep in sweeps.items()
    }
    print()
    for client, capacity in observers.items():
        print(f"{client}: sustains {capacity.capacity_qps / 1000:.0f}K "
              f"QPS under the QoS bound")

    hp_capacity = observers["HP"].capacity_qps
    lp_capacity = observers["LP"].capacity_qps
    assert hp_capacity > lp_capacity, \
        "the inflating LP client must under-estimate capacity"
    assert max(sweeps["HP"].values()) < qos_us, \
        "the HP curve must sit below the bound the LP curve straddles"

    if lp_capacity > 0:
        ratios = provisioning_error(observers, TARGET_QPS)
        for client, capacity in observers.items():
            plan = provisioning_plan(TARGET_QPS, capacity)
            print(f"{client}: {plan.machines} machines for "
                  f"{TARGET_QPS / 1e6:.0f}M QPS "
                  f"({ratios[client]:.2f}x the optimistic observer)")
        # The paper's example yields 1.6x; any material over-provision
        # reproduces the finding's shape.
        assert ratios["LP"] > 1.2
    else:
        print("LP found no sustainable load at all under this bound "
              "-- the most extreme over-provisioning verdict.")
