"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports.  Scale is controlled by
environment variables so the suite can run as a quick smoke
(``REPRO_BENCH_RUNS=8``) or a full-fidelity reproduction
(``REPRO_BENCH_RUNS=50``, the paper's repetition count):

* ``REPRO_BENCH_RUNS`` -- repetitions per condition (default 12).
* ``REPRO_BENCH_REQUESTS`` -- requests per run (default 500; stands in
  for the paper's 2-minute run duration).
"""

from __future__ import annotations

import os

import pytest

#: Repetitions per experimental condition.
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "12"))
#: Requests per run.
BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "500"))


def run_once(benchmark, fn):
    """Time *fn* exactly once (a study grid is minutes, not micro-
    seconds; pytest-benchmark's autocalibration would re-run it)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def bench_runs():
    return BENCH_RUNS


@pytest.fixture
def bench_requests():
    return BENCH_REQUESTS
