"""Table I: hardware characterization in previous work.

Regenerates the survey table: 0 client-only, 8 server-only, 2 both,
10 none, out of 20 surveyed publications.
"""

from benchmarks.conftest import run_once
from repro.analysis.survey import survey_counts
from repro.analysis.tables import render_table1


def test_table1_survey(benchmark):
    counts = run_once(benchmark, survey_counts)
    print()
    print(render_table1())
    assert counts["Client only"] == 0
    assert counts["Server only"] == 8
    assert counts["Client and server"] == 2
    assert counts["None"] == 10
    assert sum(counts.values()) == 20
