"""Ablation: which client knob costs how much?

Walks from the LP configuration to the HP configuration one knob at a
time (C-states -> governor/driver -> uncore) and measures the
Memcached end-to-end average after each step, attributing the LP/HP
gap to individual knobs.  This is the space exploration Section VI
recommends when the target configuration is unknown.
"""

from dataclasses import replace

import numpy as np

from benchmarks.conftest import BENCH_REQUESTS, BENCH_RUNS, run_once
from repro.config.knobs import (
    FrequencyDriver,
    FrequencyGovernor,
    UncorePolicy,
)
from repro.api import experiment
from repro.config.presets import HP_CLIENT, LP_CLIENT

QPS = 100_000


def knob_walk():
    """LP -> HP one knob at a time."""
    steps = [("LP (all default)", LP_CLIENT)]
    config = LP_CLIENT.with_cstates({"C0"}).renamed("LP+idle=poll")
    steps.append(("+ C-states off", config))
    config = replace(
        config,
        frequency_driver=FrequencyDriver.ACPI_CPUFREQ,
        frequency_governor=FrequencyGovernor.PERFORMANCE,
    ).renamed("LP+poll+perf")
    steps.append(("+ performance governor", config))
    config = replace(config, uncore=UncorePolicy.FIXED).renamed(
        "almost-HP")
    steps.append(("+ fixed uncore", config))
    steps.append(("HP (tuned)", HP_CLIENT))
    return steps


def build():
    plan = (experiment("memcached")
            .load(qps=QPS, num_requests=BENCH_REQUESTS)
            .policy(runs=BENCH_RUNS, base_seed=7_000)
            .build())
    rows = []
    for label, config in knob_walk():
        result = plan.with_client(config).run()
        rows.append((label, float(np.mean(result.avg_samples()))))
    return rows


def test_ablation_knob_walk(benchmark):
    rows = run_once(benchmark, build)
    print()
    print(f"Ablation: LP -> HP knob walk (Memcached avg us "
          f"@ {QPS / 1000:.0f}K)")
    baseline = rows[0][1]
    for label, avg in rows:
        print(f"  {label:<26} {avg:>8.1f}  "
              f"({avg / baseline:>6.1%} of LP)")

    averages = [avg for _, avg in rows]
    # Each tuning step must not make things worse (monotone walk)...
    for earlier, later in zip(averages, averages[1:]):
        assert later <= earlier * 1.05
    # ...and the full walk must recover (almost) the whole LP/HP gap.
    assert averages[-1] < 0.7 * averages[0]
    # Disabling C-states is the single biggest step on this workload.
    drops = [earlier - later
             for earlier, later in zip(averages, averages[1:])]
    assert drops[0] == max(drops)
