"""Fig. 6: LP vs HP clients on the Social Network application.

At 2-3 ms average / double-digit-millisecond p99, the client-induced
overhead should barely register: the paper reports an LP/HP gap of
~5% on the average and essentially none on the 99th percentile.
"""

import numpy as np

from benchmarks.conftest import BENCH_REQUESTS, BENCH_RUNS, run_once
from repro.analysis.figures import (
    SOCIALNETWORK_QPS,
    render_latency_series,
    socialnetwork_study,
)


def build_grid():
    return socialnetwork_study(
        qps_list=SOCIALNETWORK_QPS, runs=BENCH_RUNS,
        num_requests=max(200, BENCH_REQUESTS // 2))


def test_fig6_socialnetwork(benchmark):
    grid = run_once(benchmark, build_grid)
    print()
    print("Fig 6a: LP / HP ratio by QPS")
    header = f"{'metric':<12}" + "".join(
        f"{qps:>8.0f}" for qps in grid.qps_list)
    print(header)
    avg_gaps = grid.client_gap_series("baseline", "avg")
    p99_gaps = grid.client_gap_series("baseline", "p99")
    print(f"{'LP/HP avg':<12}" + "".join(
        f"{gap:>8.3f}" for _, gap in avg_gaps))
    print(f"{'LP/HP p99':<12}" + "".join(
        f"{gap:>8.3f}" for _, gap in p99_gaps))
    print()
    print(render_latency_series(
        grid, "avg", title="Fig 6b: Average Response Time (us, median)"))
    print()
    print(render_latency_series(
        grid, "p99", title="Fig 6c: 99th Percentile Latency (us, median)"))

    # --- shape assertions -------------------------------------------------
    for qps, gap in avg_gaps:
        assert gap < 1.12, f"avg gap at {qps}: {gap:.3f}"
    mean_p99_gap = np.mean([gap for _, gap in p99_gaps])
    assert 0.9 < mean_p99_gap < 1.1, \
        f"p99 must be client-insensitive: {mean_p99_gap:.3f}"
    # Millisecond scale.
    for qps, value in grid.series("HP", "baseline", "avg"):
        assert value > 1_000.0
