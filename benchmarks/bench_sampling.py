"""Microbenchmark: scalar generator draws vs draw-ahead batched serving.

Times every distribution the simulator draws on its request hot path
-- exponential, lognormal, normal, uniform -- three ways:

* **scalar** -- one ``numpy.random.Generator`` method call per draw
  (the pre-batching implementation);
* **batched** -- the same draws served through
  :class:`~repro.sim.sampling.BatchedStream` block mode;
* **train** -- the whole-vector pull used for open-loop arrival
  schedules (exponential/lognormal only).

Each mode is also checked for bit-identity against the scalar
sequence, so the benchmark doubles as a smoke test.  The process exits
non-zero when the batched path is *slower* than the scalar path
(geometric-mean speedup < 1), which is the CI regression gate for the
sampling layer.

Usage::

    python benchmarks/bench_sampling.py            # 200k draws/dist
    python benchmarks/bench_sampling.py --quick    # 20k draws (CI)
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

import numpy as np  # noqa: E402

from repro.sim.sampling import BatchedStream  # noqa: E402

SEED = 4242

#: (label, method, args) -- the scalar draw shapes used in the tree.
DISTRIBUTIONS = (
    ("exponential", "exponential", (6.0,)),
    ("lognormal", "lognormal", (1.7917594692280558, 0.35)),
    ("normal", "normal", (1.0, 0.25)),
    ("uniform", "random", ()),
)


def _time_loop(fn, count: int) -> float:
    started = time.perf_counter()
    for _ in range(count):
        fn()
    return time.perf_counter() - started


def bench_distribution(label: str, method: str, args: tuple,
                       count: int, repetitions: int) -> dict:
    """Best-of-N per-draw timings for one distribution, all modes."""
    scalar_s = batched_s = float("inf")
    for _ in range(repetitions):
        gen = np.random.default_rng(SEED)
        bound = getattr(gen, method)
        scalar_s = min(scalar_s, _time_loop(lambda: bound(*args), count))

        stream = BatchedStream(np.random.default_rng(SEED))
        bound = getattr(stream, method)
        batched_s = min(batched_s, _time_loop(lambda: bound(*args), count))

    # Bit-identity: the batched sequence must equal the scalar one.
    gen = np.random.default_rng(SEED)
    stream = BatchedStream(np.random.default_rng(SEED))
    check = min(count, 50_000)
    scalar_seq = [float(getattr(gen, method)(*args)) for _ in range(check)]
    batched_seq = [getattr(stream, method)(*args) for _ in range(check)]
    identical = scalar_seq == batched_seq

    result = {
        "scalar_us_per_draw": round(scalar_s / count * 1e6, 4),
        "batched_us_per_draw": round(batched_s / count * 1e6, 4),
        "speedup": round(scalar_s / batched_s, 3),
        "bit_identical": identical,
    }

    if label in ("exponential", "lognormal"):
        train_s = float("inf")
        for _ in range(repetitions):
            stream = BatchedStream(np.random.default_rng(SEED))
            started = time.perf_counter()
            if label == "exponential":
                stream.exponential_train(args[0], count)
            else:
                stream.lognormal_train(args[0], args[1], count)
            train_s = min(train_s, time.perf_counter() - started)
        result["train_us_per_draw"] = round(train_s / count * 1e6, 4)
        result["train_speedup"] = round(scalar_s / train_s, 1)

    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="20k draws per distribution (CI smoke)")
    parser.add_argument("--draws", type=int, default=None)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--json", default="BENCH_sampling.json",
                        help="output path (default ./BENCH_sampling.json)")
    args = parser.parse_args(argv)
    count = args.draws or (20_000 if args.quick else 200_000)

    print(f"sampling microbenchmark, {count} draws per distribution, "
          f"best of {args.repetitions}")
    print(f"  {'distribution':<14}{'scalar':>10}{'batched':>10}"
          f"{'speedup':>9}{'train':>10}  identical")

    results = {}
    speedups = []
    all_identical = True
    for label, method, dist_args in DISTRIBUTIONS:
        row = bench_distribution(
            label, method, dist_args, count, args.repetitions)
        results[label] = row
        speedups.append(row["speedup"])
        all_identical &= row["bit_identical"]
        train = (f"{row['train_us_per_draw']:>8.3f}us"
                 if "train_us_per_draw" in row else f"{'-':>10}")
        print(f"  {label:<14}{row['scalar_us_per_draw']:>8.3f}us"
              f"{row['batched_us_per_draw']:>8.3f}us"
              f"{row['speedup']:>8.2f}x{train}  {row['bit_identical']}")

    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    print(f"  geometric-mean batched speedup: {geomean:.2f}x "
          f"(bit-identical: {all_identical})")

    payload = {
        "benchmark": "sampling",
        "draws_per_distribution": count,
        "repetitions": args.repetitions,
        "quick": bool(args.quick),
        "distributions": results,
        "geomean_speedup": round(geomean, 3),
        "bit_identical": all_identical,
    }
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  wrote {args.json}")

    if not all_identical:
        print("FAIL: batched sequence diverged from scalar sequence",
              file=sys.stderr)
        return 1
    if geomean < 1.0:
        print(f"FAIL: batched path slower than scalar path "
              f"({geomean:.2f}x < 1.0x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
