"""Table IV: iterations to reach a 1%-error 95% CI, per configuration.

For each of the six Section V-A scenarios and each load, compute the
parametric (equation 3) and CONFIRM repetition counts plus the
Shapiro-Wilk verdict -- the paper's full evaluation-time table.

Shapes asserted:
* the LP client needs far more iterations than HP at low QPS;
* the HP client needs more iterations at high QPS than at low QPS.
"""

import numpy as np

from benchmarks.conftest import BENCH_REQUESTS, run_once
from repro.analysis.figures import memcached_study
from repro.analysis.tables import render_table4
from repro.core.evaluation_time import estimate_evaluation_time

QPS_LIST = (10_000, 100_000, 300_000, 500_000)
RUNS = 50  # iteration estimation needs the paper's 50-run pilots


def build_estimates():
    smt = memcached_study(knob="smt", qps_list=QPS_LIST, runs=RUNS,
                          num_requests=BENCH_REQUESTS)
    c1e = memcached_study(knob="c1e", qps_list=QPS_LIST, runs=RUNS,
                          num_requests=BENCH_REQUESTS)
    rng = np.random.default_rng(0)
    estimates = {}
    for client in ("LP", "HP"):
        for grid, condition in ((smt, "SMToff"), (smt, "SMTon"),
                                (c1e, "C1Eon")):
            label = f"{client}-{condition}"
            estimates[label] = {
                qps: estimate_evaluation_time(
                    grid.result(client, condition, qps).avg_samples(),
                    rng=rng)
                for qps in QPS_LIST}
    return estimates


def test_table4_iterations(benchmark):
    estimates = run_once(benchmark, build_estimates)
    print()
    print(render_table4(estimates, qps_order=QPS_LIST))

    # --- shape assertions -------------------------------------------------
    lp_low = estimates["LP-SMToff"][10_000].parametric_runs
    hp_low = estimates["HP-SMToff"][10_000].parametric_runs
    assert lp_low > 5 * hp_low, \
        f"LP must need many more runs at low QPS ({lp_low} vs {hp_low})"

    hp_high = estimates["HP-SMToff"][500_000].parametric_runs
    assert hp_high > hp_low, \
        f"HP must need more runs at high QPS ({hp_high} vs {hp_low})"

    # Evaluation time follows directly (2-minute runs).
    lp_time = estimates["LP-SMToff"][10_000].evaluation_seconds
    hp_time = estimates["HP-SMToff"][10_000].evaluation_seconds
    print(f"\nEvaluation time @10K: LP {lp_time / 60:.0f} min vs "
          f"HP {hp_time / 60:.0f} min")
    assert lp_time > hp_time
