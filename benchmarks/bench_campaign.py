"""Campaign orchestration: parallel speedup and store-replay cost.

Runs the same 12-condition Memcached SMT campaign three ways:

* serial inline (the pre-campaign figure-study path),
* fanned out over every core via the ProcessPoolExecutor path
  (persisting to the result store as it goes),
* replayed entirely from the store (cache hits only).

Asserted shapes: parallel results are bit-identical to serial ones,
and the replay touches zero simulations.  The printed table is the
number to quote: near-linear speedup with cores on multi-core hosts,
and a replay that costs milliseconds regardless of campaign size.
"""

import os
import time

from benchmarks.conftest import BENCH_REQUESTS, BENCH_RUNS, run_once
from repro.campaign.executor import execute_campaign
from repro.campaign.serialize import experiment_result_to_dict
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.config.presets import server_with_smt

QPS_LIST = (10_000, 100_000, 500_000)


def build_spec():
    return CampaignSpec(
        name="bench-campaign",
        workload="memcached",
        conditions={"SMToff": server_with_smt(False),
                    "SMTon": server_with_smt(True)},
        qps_list=QPS_LIST,
        runs=BENCH_RUNS,
        num_requests=BENCH_REQUESTS,
    )


def sample_map(outcome):
    return {h: result.avg_samples().tolist()
            for h, result in outcome.results().items()}


def test_campaign_parallel_speedup(benchmark, tmp_path):
    spec = build_spec()
    workers = os.cpu_count() or 1
    assert spec.size() == 12

    started = time.perf_counter()
    serial = execute_campaign(spec, max_workers=1)
    serial_s = time.perf_counter() - started

    with ResultStore(str(tmp_path / "bench.sqlite")) as store:
        parallel = run_once(
            benchmark,
            lambda: execute_campaign(
                spec, store=store, max_workers=workers))
        parallel_s = parallel.elapsed_s

        started = time.perf_counter()
        replay = execute_campaign(spec, store=store, max_workers=workers)
        replay_s = time.perf_counter() - started

    print()
    print(f"Campaign: {spec.size()} conditions x {spec.runs} runs "
          f"x {spec.num_requests} requests ({workers} workers)")
    print(f"{'path':<22}{'wall (s)':>10}{'speedup':>10}")
    print(f"{'serial inline':<22}{serial_s:>10.2f}{1.0:>10.2f}")
    print(f"{'parallel pool':<22}{parallel_s:>10.2f}"
          f"{serial_s / parallel_s:>10.2f}")
    print(f"{'store replay':<22}{replay_s:>10.2f}"
          f"{serial_s / replay_s:>10.2f}")

    # --- shape assertions -------------------------------------------------
    assert parallel.ok and len(parallel.executed) == 12
    assert sample_map(parallel) == sample_map(serial), \
        "parallel campaign must be bit-identical to the serial path"
    assert len(replay.hits) == 12 and not replay.executed, \
        "second invocation must be served entirely from the store"
    assert replay_s < serial_s / 5, \
        "store replay must be far cheaper than re-simulation"


def test_store_put_many_batching(tmp_path):
    """Micro-bench: one batched transaction vs. a commit per row.

    The campaign executor drains results through
    :meth:`ResultStore.put_many` in ``PERSIST_BATCH``-sized groups;
    this pins the reason -- on a file-backed WAL store, N one-row
    transactions pay N journal round-trips where the batch pays one.
    """
    conditions = CampaignSpec(
        name="bench-store",
        workload="memcached",
        conditions={"SMToff": server_with_smt(False)},
        qps_list=tuple(10_000.0 + 1_000.0 * i for i in range(96)),
        runs=1,
        num_requests=40,
    ).expand()
    result = conditions[0].to_plan().run()
    result_dict = experiment_result_to_dict(result)
    entries = [{"spec": condition, "result_dict": result_dict,
                "elapsed_s": 0.1} for condition in conditions]

    def best_of(runs, fn):
        best = min(fn() for _ in range(runs))
        return best

    def timed_loop():
        with ResultStore(str(tmp_path / "loop.sqlite")) as store:
            store.clear()
            started = time.perf_counter()
            for entry in entries:
                store.put(entry["spec"], result,
                          result_dict=result_dict, elapsed_s=0.1)
            elapsed = time.perf_counter() - started
            assert store.count() == len(entries)
        return elapsed

    def timed_batch():
        with ResultStore(str(tmp_path / "batch.sqlite")) as store:
            store.clear()
            started = time.perf_counter()
            store.put_many(entries)
            elapsed = time.perf_counter() - started
            assert store.count() == len(entries)
        return elapsed

    loop_s = best_of(3, timed_loop)
    batch_s = best_of(3, timed_batch)
    print()
    print(f"Store persistence, {len(entries)} rows (best of 3):")
    print(f"{'path':<28}{'wall (ms)':>10}{'speedup':>10}")
    print(f"{'put() per row':<28}{loop_s * 1e3:>10.2f}{1.0:>10.2f}")
    print(f"{'put_many() one txn':<28}{batch_s * 1e3:>10.2f}"
          f"{loop_s / batch_s:>10.2f}")
    assert batch_s < loop_s, \
        "batched persistence must beat a transaction per row"
