"""Fig. 5: run-to-run standard deviation of the average response time.

(a) Memcached: the LP client's stdev dominates at low QPS (its wake
    path carries uncontrolled run-to-run state), while the HP client's
    stdev grows with load (server-side queueing/interference).
(b) HDSearch: stdevs are larger in absolute terms but small relative
    to the millisecond-scale means.
"""

from benchmarks.conftest import BENCH_REQUESTS, BENCH_RUNS, run_once
from repro.analysis.figures import (
    hdsearch_study,
    memcached_study,
    render_latency_series,
)

MEMCACHED_POINTS = (10_000, 100_000, 300_000, 500_000)
HDSEARCH_POINTS = (500, 1_500, 2_500)


def build_grids():
    memcached = memcached_study(
        knob="smt", qps_list=MEMCACHED_POINTS,
        runs=BENCH_RUNS, num_requests=BENCH_REQUESTS)
    hdsearch = hdsearch_study(
        knob="smt", qps_list=HDSEARCH_POINTS,
        runs=BENCH_RUNS, num_requests=max(200, BENCH_REQUESTS // 2))
    return memcached, hdsearch


def test_fig5_stdev(benchmark):
    memcached, hdsearch = run_once(benchmark, build_grids)
    print()
    print(render_latency_series(
        memcached, "stdev_avg",
        title="Fig 5a: Stdev of Average Response Time (us) - Memcached"))
    print()
    print(render_latency_series(
        hdsearch, "stdev_avg",
        title="Fig 5b: Stdev of Average Response Time (us) - HDSearch"))

    # --- shape assertions -------------------------------------------------
    lp_low = memcached.result("LP", "SMToff", 10_000).stdev_avg_us()
    hp_low = memcached.result("HP", "SMToff", 10_000).stdev_avg_us()
    assert lp_low > 3 * hp_low, \
        "LP stdev must dominate HP's at low load"

    hp_high = memcached.result("HP", "SMToff", 500_000).stdev_avg_us()
    assert hp_high > 2 * hp_low, \
        "HP stdev must grow with load (queueing/interference)"
