"""Ablation: generator design on an identical service.

Runs the same Memcached-class service under three generator designs --
open-loop block-wait (mutilate-like), open-loop busy-wait
(HDSearch-client-like) and closed-loop block-wait -- on an LP client,
quantifying how much of the client sensitivity is a property of the
*generator design* rather than the workload (Table III's axis).
"""

import numpy as np

from benchmarks.conftest import BENCH_REQUESTS, BENCH_RUNS, run_once
from repro.config.presets import LP_CLIENT, SERVER_BASELINE
from repro.loadgen.client_machine import ClientMachine
from repro.loadgen.closed_loop import ClosedLoopGenerator
from repro.loadgen.interarrival import ExponentialInterarrival
from repro.loadgen.open_loop import OpenLoopGenerator
from repro.net.link import NetworkLink
from repro.parameters import DEFAULT_PARAMETERS
from repro.server.service import LognormalService
from repro.server.station import ServiceStation
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import qps_to_interarrival_us

QPS = 50_000


def run_design(design: str, seed: int) -> tuple:
    sim = Simulator()
    streams = RandomStreams(seed)
    station = ServiceStation(
        sim, SERVER_BASELINE, LognormalService(6.0, 0.35), workers=10,
        rng=streams.stream("service"))
    time_sensitive = design != "open-busy"
    machines = [
        ClientMachine(sim, LP_CLIENT, time_sensitive=time_sensitive,
                      rng=streams.get(f"client-{index}"),
                      name=f"c{index}")
        for index in range(8)
    ]
    link_rng = streams.stream("network")
    links = (NetworkLink(DEFAULT_PARAMETERS, link_rng),
             NetworkLink(DEFAULT_PARAMETERS, link_rng))
    if design == "closed-block":
        connections = 32
        think = max(
            0.0,
            connections * qps_to_interarrival_us(QPS) - 60.0)
        generator = ClosedLoopGenerator(
            sim, machines, station, links[0], links[1],
            connections=connections, think_time_us=think,
            think_rng=streams.stream("think"),
            time_sensitive=True, num_requests=BENCH_REQUESTS)
    else:
        generator = OpenLoopGenerator(
            sim, machines, station, links[0], links[1],
            ExponentialInterarrival(QPS), streams.stream("arrivals"),
            time_sensitive=time_sensitive,
            num_requests=BENCH_REQUESTS)
    generator.start()
    sim.run()
    samples = generator.samples
    return (samples.average_latency_us(),
            float(np.mean(samples.client_overheads_us())),
            float(np.mean(np.abs(samples.send_errors_us()))))


def build():
    designs = ("open-block", "open-busy", "closed-block")
    output = {}
    for design in designs:
        rows = [run_design(design, seed) for seed in range(BENCH_RUNS)]
        arr = np.array(rows)
        output[design] = arr.mean(axis=0)
    return output


def test_ablation_generator_design(benchmark):
    results = run_once(benchmark, build)
    print()
    print(f"Ablation: generator design on the same service "
          f"(LP client, {QPS / 1000:.0f}K QPS)")
    print(f"{'design':<14}{'avg(us)':>10}{'client bias':>13}"
          f"{'|send err|':>12}")
    for design, (avg, bias, send_err) in results.items():
        print(f"{design:<14}{avg:>10.1f}{bias:>13.1f}{send_err:>12.1f}")

    # Busy-wait polling removes both the measurement bias and the
    # send-timing error.
    assert results["open-busy"][1] < 0.3 * results["open-block"][1]
    assert results["open-busy"][2] < 0.3 * results["open-block"][2]
    # Closed-loop compounds timing error into the send path too.
    assert results["closed-block"][1] > 0.5 * results["open-block"][1]
