"""End-to-end hot-path benchmark: columnar pipeline vs. the seed path.

Runs the same open-loop Memcached testbed (Mutilate-style, LP client)
twice with identical seeds:

* **legacy object path** -- a faithful replica of the seed
  implementation kept in this file: a heap of ``Event`` objects
  compared via Python ``__lt__``, per-event ``step()`` dispatch, and a
  list-of-``Request`` sample store whose accessors re-sort on every
  call;
* **columnar path** -- the current implementation: tuple-entry event
  heap, batch-scheduled arrival train, and
  :class:`~repro.telemetry.SampleColumns` struct-of-arrays telemetry.

Both paths must produce bit-identical run metrics (asserted); the
interesting output is the end-to-end speedup.  Results are written to
``BENCH_hotpath.json`` so CI can track the perf trajectory; the file
also consolidates per-stage timings (arrival-train construction, event
loop, summary), the batched-sampling stream counters, the pinned
pre-batching mainline reference, an observability-off vs
observability-on comparison (lifecycle tracing and the streaming
sink, both against the uninstrumented columnar run), and -- when
``benchmarks/bench_sampling.py`` ran first -- its per-distribution
microbenchmark results.

Usage::

    python benchmarks/bench_hotpath.py            # 50k requests
    python benchmarks/bench_hotpath.py --quick    # 5k requests, 1 rep
    python benchmarks/bench_hotpath.py --quick --check-overhead  # CI gate
"""

from __future__ import annotations

import argparse
import heapq
import itertools
import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

import numpy as np  # noqa: E402

from repro.config.presets import LP_CLIENT, SERVER_BASELINE  # noqa: E402
from repro.core.testbed import Testbed  # noqa: E402
from repro.errors import SimulationError  # noqa: E402
from repro.loadgen.measurement import (  # noqa: E402
    PointOfMeasurement,
    latency_at_point,
)
from repro.loadgen.mutilate import build_mutilate  # noqa: E402
from repro.parameters import DEFAULT_PARAMETERS  # noqa: E402
from repro.server.request import Request  # noqa: E402
from repro.server.station import ServiceStation  # noqa: E402
from repro.sim.random import RandomStreams  # noqa: E402
from repro.workloads.common import server_env_scale  # noqa: E402
from repro.workloads.memcached import (  # noqa: E402
    MEMCACHED_WORKERS,
    EtcServiceModel,
)
from repro.workloads.etc import EtcWorkload  # noqa: E402


# --------------------------------------------------------------- legacy sim
class _LegacyEvent:
    """The seed's Event: a heap-resident object with Python ordering."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time_us, seq, callback, args):
        self.time = time_us
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self):
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class LegacySimulator:
    """The seed engine, verbatim, plus ``post*`` aliases that allocate
    an Event per call -- exactly what every call site paid before the
    fast path existed."""

    def __init__(self):
        self._now = 0.0
        self._heap: List[_LegacyEvent] = []
        self._seq = itertools.count()
        self._events_processed = 0

    @property
    def now(self):
        return self._now

    @property
    def events_processed(self):
        return self._events_processed

    @property
    def pending_events(self):
        return len(self._heap)

    @property
    def live_pending_events(self):
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, delay, callback, *args):
        if not (delay >= 0.0):
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        event = _LegacyEvent(self._now + delay, next(self._seq),
                             callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time_us, callback, *args):
        return self.schedule(time_us - self._now, callback, *args)

    # The modern producer API, routed through the object path.
    post = schedule
    post_at = schedule_at

    def post_at_batch(self, items):
        count = 0
        for time_us, callback, args in items:
            self.schedule_at(time_us, callback, *args)
            count += 1
        return count

    def step(self):
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now - 1e-9:
                raise SimulationError(
                    f"event at t={event.time} is behind clock t={self._now}")
            self._now = max(self._now, event.time)
            event.fired = True
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, max_events=None):
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired


@dataclass
class LegacyRequest:
    """The seed's request record: a plain dataclass with a per-instance
    ``__dict__`` (the seed predates the ``__slots__`` conversion)."""

    request_id: int
    size_kb: float = 0.0
    intended_send_us: float = 0.0
    actual_send_us: float = 0.0
    server_arrival_us: float = 0.0
    queue_wait_us: float = 0.0
    service_us: float = 0.0
    server_departure_us: float = 0.0
    client_nic_us: float = 0.0
    measured_complete_us: float = 0.0

    @property
    def send_error_us(self):
        return self.actual_send_us - self.intended_send_us

    @property
    def true_latency_us(self):
        return self.client_nic_us - self.actual_send_us

    @property
    def measured_latency_us(self):
        return self.measured_complete_us - self.actual_send_us


class LegacyRunSamples:
    """The seed sample store: retained Request objects, re-sorted and
    re-materialized into arrays on every accessor call."""

    def __init__(self, warmup_fraction=0.1):
        self._warmup_fraction = warmup_fraction
        self._requests: List[Request] = []

    def record(self, request):
        self._requests.append(request)

    def __len__(self):
        return len(self._requests)

    @property
    def warmup_count(self):
        return int(len(self._requests) * self._warmup_fraction)

    @property
    def measured_count(self):
        return len(self.measured_requests())

    def measured_requests(self):
        ordered = sorted(self._requests, key=lambda r: r.intended_send_us)
        return ordered[self.warmup_count:]

    def latencies_us(self, point=PointOfMeasurement.GENERATOR,
                     params=DEFAULT_PARAMETERS):
        return np.array([latency_at_point(r, point, params)
                         for r in self.measured_requests()])

    def average_latency_us(self, point=PointOfMeasurement.GENERATOR):
        return float(np.mean(self.latencies_us(point)))

    def percentile_latency_us(self, percentile=99.0,
                              point=PointOfMeasurement.GENERATOR):
        return float(np.percentile(self.latencies_us(point), percentile))


#: End-to-end reference for the pre-batching mainline (commit 7be11ee,
#: "Unified typed experiment API"), measured on the same machine and
#: flags as the default full run (50k requests @ 200k QPS, seed 7, best
#: of 3) immediately before the draw-ahead sampling rewrite landed.
#: ``speedup_vs_pre_batching`` is only reported when the current
#: invocation uses that exact configuration; on other hardware the
#: number is indicative, not a measurement.
MAIN_PRE_BATCHING = {
    "commit": "7be11ee",
    "best_seconds": 3.486,
    "events_per_sec": 100398.0,
    "num_requests": 50_000,
    "qps": 200_000.0,
    "seed": 7,
}

#: Pinned observability-off reference: the legacy/columnar speedup
#: ratio measured at the commit that introduced the repro.obs hooks
#: (null-object attribute checks on the request hot path).  The ratio
#: is hardware-neutral -- both flavors run in the same invocation --
#: so the ``--check-overhead`` gate compares the current run's
#: ``speedup_vs_seed`` against the pin for its mode: a drop past
#: ``OVERHEAD_MARGIN`` means the disabled-observability hot path got
#: slower relative to the seed and the gate fails.  The pins carry
#: headroom below the locally measured ratios (quick 1.30-1.50x,
#: full 1.84x) to absorb best-of-1 CI-runner jitter; the margin on
#: top of that is the observability budget proper.
OBS_OFF_REFERENCE = {
    "commit": "obs-hooks",
    "speedup_vs_seed_quick": 1.20,
    "speedup_vs_seed_full": 1.65,
}
#: Allowed relative regression of speedup_vs_seed before the
#: ``--check-overhead`` gate fails (the ISSUE's 3% budget).
OVERHEAD_MARGIN = 0.03

#: Pinned ceiling on the streaming sink's ingest overhead relative to
#: the uninstrumented columnar run.  Batched ingest (chunked latency
#: compute + Welford merges + hoisted P2 updates) brought the locally
#: measured overhead from ~66% down to ~23% full / ~±10% quick; the
#: ceilings carry headroom for best-of-1 CI jitter but sit far below
#: the pre-batching 66%, so a revert to per-request ingest fails the
#: ``--check-overhead`` gate.
STREAMING_OVERHEAD_REFERENCE = {
    "commit": "batched-ingest",
    "max_overhead_pct_quick": 40.0,
    "max_overhead_pct_full": 35.0,
}

#: Floor on the vectorized kernel's event-loop speedup over the
#: reference engine (same invocation, so the ratio is
#: hardware-neutral).  Locally measured: 1.5-1.6x at the full
#: operating point, noisier in quick mode (best of 1 at 5k requests),
#: hence the tolerant quick floor.  The 2x target of the kernel issue
#: is tracked in the README's perf trajectory; the gate pins the
#: *regression* boundary, not the aspiration.
KERNEL_SPEEDUP_FLOOR = {
    "commit": "vectorized-kernel",
    "min_speedup_quick": 1.10,
    "min_speedup_full": 1.35,
}


# ---------------------------------------------------------------- the bench
def build_testbed(sim: Any, seed: int, qps: float,
                  num_requests: int,
                  samples_factory: Optional[Callable[..., Any]] = None,
                  request_cls: type = Request) -> Testbed:
    """The Memcached testbed assembly with an injectable simulator."""
    streams = RandomStreams(seed)
    etc = EtcWorkload(streams.get("etc"))
    station = ServiceStation(
        sim, SERVER_BASELINE, EtcServiceModel(),
        workers=MEMCACHED_WORKERS,
        rng=streams.stream("service"),
        name="memcached",
        env_scale=server_env_scale(streams, DEFAULT_PARAMETERS))
    generator = build_mutilate(
        sim, streams, LP_CLIENT, station, qps, num_requests,
        request_factory=lambda index: request_cls(
            request_id=index, size_kb=etc.sample_message_kb()))
    if samples_factory is not None:
        generator.samples = samples_factory(warmup_fraction=0.1)
    return Testbed(
        sim, streams, generator, station,
        workload="memcached", qps=qps,
        client_config=LP_CLIENT, server_config=SERVER_BASELINE)


def time_path(make_sim, seed, qps, num_requests, repetitions,
              samples_factory=None, request_cls=Request):
    """Best-of-N wall time for one pipeline flavor."""
    best_s = float("inf")
    metrics = None
    events = 0
    for _ in range(repetitions):
        testbed = build_testbed(
            make_sim(), seed, qps, num_requests,
            samples_factory=samples_factory, request_cls=request_cls)
        started = time.perf_counter()
        metrics = testbed.run()
        elapsed = time.perf_counter() - started
        best_s = min(best_s, elapsed)
        events = testbed.sim.events_processed
    return {
        "best_seconds": round(best_s, 4),
        "events_per_sec": round(events / best_s, 1),
        "requests_per_sec": round(num_requests / best_s, 1),
    }, metrics


def time_stages(seed, qps, num_requests):
    """One instrumented run split into its pipeline stages.

    Separate from :func:`time_path` (whose runs stay uninstrumented)
    so stage boundaries cannot perturb the headline timing.
    """
    from repro.loadgen.measurement import PointOfMeasurement
    from repro.sim.engine import Simulator

    testbed = build_testbed(Simulator(), seed, qps, num_requests)
    started = time.perf_counter()
    testbed.generator.start()
    start_s = time.perf_counter() - started

    started = time.perf_counter()
    testbed.sim.run()
    run_s = time.perf_counter() - started

    samples = testbed.generator.samples
    started = time.perf_counter()
    samples.average_latency_us(PointOfMeasurement.GENERATOR)
    samples.percentile_latency_us(99.0, PointOfMeasurement.GENERATOR)
    samples.average_latency_us(PointOfMeasurement.NIC)
    samples.percentile_latency_us(99.0, PointOfMeasurement.NIC)
    summarize_s = time.perf_counter() - started

    streams = testbed.streams.batched_stats()
    return {
        "arrival_train_seconds": round(start_s, 4),
        "event_loop_seconds": round(run_s, 4),
        "summarize_seconds": round(summarize_s, 4),
    }, streams


def time_observability(seed, qps, num_requests, repetitions,
                       baseline, baseline_metrics):
    """Observability-on flavors vs the uninstrumented columnar run.

    Tracing must leave the run metrics bit-identical (asserted, after
    stripping the harvested ``obs_metrics``); the streaming sink is
    an approximation by design, so its latency deltas are reported
    rather than asserted.
    """
    from dataclasses import replace

    from repro.obs import Observability
    from repro.sim.engine import Simulator

    traced, traced_metrics = time_path(
        lambda: Observability(trace=True).install(Simulator()),
        seed, qps, num_requests, repetitions)
    stripped = replace(traced_metrics, obs_metrics=())
    assert stripped == baseline_metrics, (
        f"tracing perturbed the run: traced={stripped} "
        f"baseline={baseline_metrics}")
    traced_overhead = (traced["best_seconds"]
                       / baseline["best_seconds"] - 1.0)

    streaming, streaming_metrics = time_path(
        lambda: Observability(sink="streaming").install(Simulator()),
        seed, qps, num_requests, repetitions)
    streaming_overhead = (streaming["best_seconds"]
                          / baseline["best_seconds"] - 1.0)
    return {
        "traced": traced,
        "tracing_overhead_pct": round(100.0 * traced_overhead, 2),
        "traced_metrics_identical": True,
        "streaming_sink": streaming,
        "streaming_overhead_pct": round(
            100.0 * streaming_overhead, 2),
        "streaming_avg_delta_pct": round(
            100.0 * (streaming_metrics.avg_us
                     / baseline_metrics.avg_us - 1.0), 4),
        "streaming_p99_delta_pct": round(
            100.0 * (streaming_metrics.p99_us
                     / baseline_metrics.p99_us - 1.0), 4),
    }


def time_kernel(seed, qps, num_requests, repetitions):
    """Reference vs vectorized-kernel event-loop timing.

    Both engines run the identical testbed; timing covers the event
    loop only (arrival-train construction and summary excluded), which
    is what the kernel accelerates.  Bit-identity is asserted over
    every telemetry column of the final sample buffer -- not just the
    summary statistics -- so a divergence anywhere in the event order
    or the RNG draw sequence fails loudly.
    """
    import hashlib

    from repro.sim.engine import Simulator
    from repro.sim.kernel import KernelSimulator
    from repro.telemetry.columns import COLUMN_FIELDS

    def loop_time(sim_cls):
        best_s = float("inf")
        events = 0
        testbed = None
        for _ in range(repetitions):
            testbed = build_testbed(sim_cls(), seed, qps, num_requests)
            testbed.generator.start()
            started = time.perf_counter()
            testbed.sim.run()
            best_s = min(best_s, time.perf_counter() - started)
            events = testbed.sim.events_processed
        digest = hashlib.sha256()
        columns = testbed.generator.samples.columns
        for name in COLUMN_FIELDS:
            digest.update(columns.column(name).tobytes())
        return best_s, events, digest.hexdigest(), testbed

    ref_s, ref_events, ref_hash, _ = loop_time(Simulator)
    kern_s, kern_events, kern_hash, kernel_testbed = loop_time(
        KernelSimulator)
    assert ref_events == kern_events, (
        f"event counts diverged: reference={ref_events} "
        f"kernel={kern_events}")
    assert ref_hash == kern_hash, (
        "kernel run is not bit-identical to the reference "
        f"(payload hashes {ref_hash[:12]} != {kern_hash[:12]})")
    counters = kernel_testbed.sim.kernel_counters()
    return {
        "reference_loop_seconds": round(ref_s, 4),
        "reference_events_per_sec": round(ref_events / ref_s, 1),
        "kernel_loop_seconds": round(kern_s, 4),
        "kernel_events_per_sec": round(kern_events / kern_s, 1),
        "kernel_speedup": round(ref_s / kern_s, 3),
        "bit_identical": True,
        "events": ref_events,
        "counters": counters,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="5k requests, 1 repetition (CI smoke)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per run (default 50000)")
    parser.add_argument("--qps", type=float, default=200_000.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repetitions", type=int, default=None,
                        help="take the best of N runs (default 3)")
    parser.add_argument("--json", default="BENCH_hotpath.json",
                        help="output path (default ./BENCH_hotpath.json)")
    parser.add_argument("--check-overhead", action="store_true",
                        help="fail (exit 1) when the obs-off hot path "
                             "regresses more than "
                             f"{OVERHEAD_MARGIN:.0%} below the pinned "
                             "speedup reference")
    args = parser.parse_args(argv)

    num_requests = args.requests or (5_000 if args.quick else 50_000)
    repetitions = args.repetitions or (1 if args.quick else 3)

    print(f"open-loop memcached, {num_requests} requests @ "
          f"{args.qps:g} QPS, seed {args.seed}, best of {repetitions}")

    legacy, legacy_metrics = time_path(
        LegacySimulator, args.seed, args.qps, num_requests, repetitions,
        samples_factory=LegacyRunSamples, request_cls=LegacyRequest)
    print(f"  legacy object path : {legacy['best_seconds']:8.3f}s  "
          f"({legacy['events_per_sec']:>10.0f} ev/s)")

    from repro.sim.engine import Simulator
    columnar, columnar_metrics = time_path(
        Simulator, args.seed, args.qps, num_requests, repetitions)
    print(f"  columnar pipeline  : {columnar['best_seconds']:8.3f}s  "
          f"({columnar['events_per_sec']:>10.0f} ev/s)")

    identical = legacy_metrics == columnar_metrics
    assert identical, (
        f"pipelines diverged: legacy={legacy_metrics} "
        f"columnar={columnar_metrics}")

    speedup = legacy["best_seconds"] / columnar["best_seconds"]
    print(f"  speedup            : {speedup:8.2f}x  "
          f"(metrics bit-identical: {identical})")

    observability = time_observability(
        args.seed, args.qps, num_requests, repetitions,
        columnar, columnar_metrics)
    print(f"  tracing on         : "
          f"{observability['traced']['best_seconds']:8.3f}s  "
          f"({observability['tracing_overhead_pct']:+.1f}%, "
          f"metrics bit-identical)")
    print(f"  streaming sink     : "
          f"{observability['streaming_sink']['best_seconds']:8.3f}s  "
          f"({observability['streaming_overhead_pct']:+.1f}%, "
          f"p99 {observability['streaming_p99_delta_pct']:+.3f}%)")

    stages, stream_stats = time_stages(args.seed, args.qps, num_requests)
    print(f"  stages             : arrival train "
          f"{stages['arrival_train_seconds']:.3f}s, event loop "
          f"{stages['event_loop_seconds']:.3f}s, summarize "
          f"{stages['summarize_seconds']:.3f}s")

    kernel = time_kernel(args.seed, args.qps, num_requests, repetitions)
    print(f"  vectorized kernel  : "
          f"{kernel['kernel_loop_seconds']:8.3f}s loop  "
          f"({kernel['kernel_events_per_sec']:>10.0f} ev/s, "
          f"{kernel['kernel_speedup']:.2f}x vs reference loop "
          f"{kernel['reference_loop_seconds']:.3f}s, bit-identical, "
          f"mean batch {kernel['counters']['mean_batch_len']:.1f})")

    payload = {
        "benchmark": "hotpath",
        "workload": "memcached-open-loop",
        "qps": args.qps,
        "num_requests": num_requests,
        "seed": args.seed,
        "repetitions": repetitions,
        "quick": bool(args.quick),
        "legacy_object_path": legacy,
        "columnar_path": columnar,
        "speedup_vs_seed": round(speedup, 3),
        # Kept under the historical key too so existing trajectory
        # tooling keeps parsing older artifacts alongside new ones.
        "speedup": round(speedup, 3),
        "metrics_identical": identical,
        "observability": observability,
        "per_stage": stages,
        "sampling_streams": stream_stats,
        "kernel": kernel,
        "kernel_speedup_floor": KERNEL_SPEEDUP_FLOOR,
        "main_pre_batching": MAIN_PRE_BATCHING,
        "obs_off_reference": OBS_OFF_REFERENCE,
        "streaming_overhead_reference": STREAMING_OVERHEAD_REFERENCE,
        "avg_us": columnar_metrics.avg_us,
        "p99_us": columnar_metrics.p99_us,
    }
    reference_config = (
        num_requests == MAIN_PRE_BATCHING["num_requests"]
        and args.qps == MAIN_PRE_BATCHING["qps"]
        and args.seed == MAIN_PRE_BATCHING["seed"])
    if reference_config:
        vs_main = (MAIN_PRE_BATCHING["best_seconds"]
                   / columnar["best_seconds"])
        payload["speedup_vs_pre_batching"] = round(vs_main, 3)
        print(f"  vs pre-batching    : {vs_main:8.2f}x  "
              f"(mainline {MAIN_PRE_BATCHING['commit']}, "
              f"{MAIN_PRE_BATCHING['best_seconds']}s)")

    sampling_path = os.path.join(
        os.path.dirname(os.path.abspath(args.json)), "BENCH_sampling.json")
    if os.path.exists(sampling_path):
        with open(sampling_path) as handle:
            payload["sampling_microbench"] = json.load(handle)

    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  wrote {args.json}")

    if args.check_overhead:
        pin_key = ("speedup_vs_seed_quick" if args.quick
                   else "speedup_vs_seed_full")
        pinned = OBS_OFF_REFERENCE[pin_key]
        floor = pinned * (1.0 - OVERHEAD_MARGIN)
        if speedup < floor:
            print(f"  obs-overhead gate  : FAIL -- speedup_vs_seed "
                  f"{speedup:.2f}x fell below {floor:.2f}x "
                  f"(pinned {pinned}x - {OVERHEAD_MARGIN:.0%} margin)")
            return 1
        print(f"  obs-overhead gate  : ok ({speedup:.2f}x >= "
              f"{floor:.2f}x)")
        ceiling_key = ("max_overhead_pct_quick" if args.quick
                       else "max_overhead_pct_full")
        ceiling = STREAMING_OVERHEAD_REFERENCE[ceiling_key]
        streaming_pct = observability["streaming_overhead_pct"]
        if streaming_pct > ceiling:
            print(f"  streaming gate     : FAIL -- streaming-sink "
                  f"overhead {streaming_pct:+.1f}% exceeded the "
                  f"pinned {ceiling:.0f}% ceiling")
            return 1
        print(f"  streaming gate     : ok ({streaming_pct:+.1f}% <= "
              f"{ceiling:.0f}%)")
        floor_key = ("min_speedup_quick" if args.quick
                     else "min_speedup_full")
        kernel_floor = KERNEL_SPEEDUP_FLOOR[floor_key]
        if kernel["kernel_speedup"] < kernel_floor:
            print(f"  kernel gate        : FAIL -- kernel speedup "
                  f"{kernel['kernel_speedup']:.2f}x fell below the "
                  f"pinned {kernel_floor:.2f}x floor")
            return 1
        print(f"  kernel gate        : ok "
              f"({kernel['kernel_speedup']:.2f}x >= "
              f"{kernel_floor:.2f}x, bit-identical)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
