"""Fig. 9: frequency chart for the HP-SMToff 400K configuration.

The paper shows this high-QPS configuration's run averages clustered
just below/around the median with a sparse scatter far above -- a
right-skewed distribution that fails normality.  We regenerate the
chart (with the median bin marked) and assert the skew.
"""

import numpy as np

from benchmarks.conftest import BENCH_REQUESTS, run_once
from repro.api import experiment
from repro.config.presets import HP_CLIENT, server_with_smt
from repro.stats.normality import render_frequency_chart

RUNS = 50  # the paper's histogram uses all 50 runs
QPS = 400_000


def build_samples():
    result = (experiment("memcached")
              .client(HP_CLIENT)
              .server(server_with_smt(False), label="SMToff")
              .load(qps=QPS, num_requests=BENCH_REQUESTS)
              .policy(runs=RUNS, base_seed=4_000)
              .run())
    return result.avg_samples()


def test_fig9_histogram(benchmark):
    samples = run_once(benchmark, build_samples)
    print()
    print(f"Fig 9: Frequency chart, HP-SMToff @ {QPS / 1000:.0f}K "
          f"(average response time, {RUNS} runs)")
    print(render_frequency_chart(samples, num_bins=17))

    # --- shape assertions -------------------------------------------------
    median = float(np.median(samples))
    mean = float(np.mean(samples))
    assert mean > median, "distribution must be right-skewed"
    # Most mass sits below/near the median; a sparse tail sits above.
    near = np.sum(samples <= median * 1.05)
    assert near >= 0.6 * len(samples)
    assert samples.max() > median * 1.05
