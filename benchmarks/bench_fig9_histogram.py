"""Fig. 9: frequency chart for the HP-SMToff 400K configuration.

The paper shows this high-QPS configuration's run averages clustered
just below/around the median with a sparse scatter far above -- a
right-skewed distribution that fails normality.  We regenerate the
chart (with the median bin marked) and assert the skew.
"""

import numpy as np

from benchmarks.conftest import BENCH_REQUESTS, run_once
from repro.config.presets import HP_CLIENT, server_with_smt
from repro.core.experiment import run_experiment
from repro.stats.normality import render_frequency_chart
from repro.workloads.memcached import build_memcached_testbed

RUNS = 50  # the paper's histogram uses all 50 runs
QPS = 400_000


def build_samples():
    result = run_experiment(
        lambda seed: build_memcached_testbed(
            seed, client_config=HP_CLIENT,
            server_config=server_with_smt(False),
            qps=QPS, num_requests=BENCH_REQUESTS),
        runs=RUNS, base_seed=4_000)
    return result.avg_samples()


def test_fig9_histogram(benchmark):
    samples = run_once(benchmark, build_samples)
    print()
    print(f"Fig 9: Frequency chart, HP-SMToff @ {QPS / 1000:.0f}K "
          f"(average response time, {RUNS} runs)")
    print(render_frequency_chart(samples, num_bins=17))

    # --- shape assertions -------------------------------------------------
    median = float(np.median(samples))
    mean = float(np.mean(samples))
    assert mean > median, "distribution must be right-skewed"
    # Most mass sits below/near the median; a sparse tail sits above.
    near = np.sum(samples <= median * 1.05)
    assert near >= 0.6 * len(samples)
    assert samples.max() > median * 1.05
