"""Fig. 2: SMT impact on Memcached latency with LP and HP clients.

Regenerates all four panels:
(a) average response time, (b) 99th-percentile latency,
(c) SMT_OFF/SMT_ON ratio of the average, (d) the same for p99.

Paper shapes asserted:
* LP's end-to-end average sits far above HP's (80-150% in the paper);
* the HP client measures a larger SMT p99 benefit than the LP client
  (13% vs 3% in the paper).
"""

import numpy as np

from benchmarks.conftest import BENCH_REQUESTS, BENCH_RUNS, run_once
from repro.analysis.figures import (
    MEMCACHED_QPS,
    memcached_study,
    render_latency_series,
    render_ratio_series,
)


def build_grid():
    return memcached_study(
        knob="smt", qps_list=MEMCACHED_QPS,
        runs=BENCH_RUNS, num_requests=BENCH_REQUESTS)


def test_fig2_memcached_smt(benchmark):
    grid = run_once(benchmark, build_grid)
    print()
    print(render_latency_series(
        grid, "avg", title="Fig 2a: Average Response Time (us, median)"))
    print()
    print(render_latency_series(
        grid, "p99", title="Fig 2b: 99th Percentile Latency (us, median)"))
    print()
    print(render_ratio_series(
        grid, "SMToff", "SMTon", "avg",
        title="Fig 2c: SMT_OFF / SMT_ON (avg)"))
    print()
    print(render_ratio_series(
        grid, "SMToff", "SMTon", "p99",
        title="Fig 2d: SMT_OFF / SMT_ON (99th)"))

    # --- shape assertions -------------------------------------------------
    for qps, gap in grid.client_gap_series("SMToff", "avg"):
        assert gap > 1.4, f"LP/HP avg gap at {qps}: {gap:.2f}"

    lp_p99 = dict(grid.ratio_series("LP", "SMToff", "SMTon", "p99"))
    hp_p99 = dict(grid.ratio_series("HP", "SMToff", "SMTon", "p99"))
    high_load = [q for q in grid.qps_list if q >= 300_000]
    assert (np.mean([hp_p99[q] for q in high_load])
            > np.mean([lp_p99[q] for q in high_load])), \
        "HP must measure a larger SMT p99 benefit than LP"
    assert max(hp_p99.values()) > 1.04
