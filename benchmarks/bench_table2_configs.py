"""Table II: client- and server-side hardware configurations.

Renders the LP/HP/baseline knob table and verifies that the host
tuning toolkit can realize each configuration on a (fake) Skylake
host -- i.e. the table is not just documentation but an executable
configuration.
"""

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table2
from repro.config.presets import HP_CLIENT, LP_CLIENT, SERVER_BASELINE
from repro.host.filesystem import FakeFilesystem, make_skylake_tree
from repro.host.tuner import HostTuner


def apply_all_configs():
    results = {}
    for config in (LP_CLIENT, HP_CLIENT):
        fs = FakeFilesystem(make_skylake_tree())
        results[config.name] = HostTuner(fs).apply_config(config)
    # The server baseline expects acpi-cpufreq to be active.
    fs = FakeFilesystem(make_skylake_tree(
        driver="acpi-cpufreq", governor="performance"))
    fs.files["/sys/devices/system/cpu/cpu0/cpufreq/"
             "scaling_available_governors"] = "performance powersave"
    results["baseline"] = HostTuner(fs).apply_config(SERVER_BASELINE)
    return results


def test_table2_configs(benchmark):
    results = run_once(benchmark, apply_all_configs)
    print()
    print(render_table2())
    for name, result in results.items():
        assert result.performed, f"{name}: no actions applied"
        assert result.needs_reboot  # driver/grub knobs are boot-time
