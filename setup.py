"""Legacy setup shim.

The offline environment ships setuptools but not ``wheel``, so PEP 517
editable installs (which need ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-build-isolation`` take the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
