"""Legacy setup shim.

All metadata lives in ``pyproject.toml``; this file exists so
environments with old setuptools can still take the legacy
``setup.py develop`` install path.  Fully offline environments that
lack ``wheel`` cannot ``pip install -e .`` at all (PEP 660 editable
builds need ``bdist_wheel``) -- there, run from source with
``PYTHONPATH=src`` as the README describes.
"""

from setuptools import setup

setup()
