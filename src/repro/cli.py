"""Command-line interface.

Eleven subcommands mirror the library's faces::

    repro run --workload memcached --qps 100000 --workers 4
    repro study --workload memcached --knob smt --qps 10000 100000
    repro tune --config HP [--real] [--apply]
    repro autotune --tunable hardware.server.smt=bool --search grid
    repro recommend --loop open --interarrival block-wait
    repro capacity --qos-p99 400 --target-qps 1000000
    repro campaign run --preset memcached-smt --store results.sqlite
    repro plan --preset memcached-smt
    repro cluster --workload memcached --nodes 4 --policy power-of-two
    repro graph --graph memcached-cached --arrival diurnal
    repro trace --workload memcached --output trace.json

``repro run`` executes one experiment -- optionally sharded across
worker processes with ``--workers`` (see :mod:`repro.parallel`) --
and prints the repetition summary; ``repro study`` runs a scaled
study grid and prints the paper-style series; ``repro tune`` plans
(and optionally applies) a host configuration; ``repro autotune``
searches a declared tunable space for the max-capacity configuration
(see :mod:`repro.tune`); ``repro recommend``
prints the Section VI advice;
``repro capacity`` runs the provisioning analysis of Section V-A;
``repro campaign`` runs declarative experiment sweeps in parallel
against a persistent result store (``run``/``status``/``report``) --
killed campaigns resume, finished ones are served from cache; ``repro
plan`` validates and expands a campaign into its condition list with
content hashes and seed schedules *without running anything* (the
dry run for expensive sweeps); ``repro cluster`` deploys a workload
on a load-balanced, optionally sharded multi-server topology and
reports fan-out tail latency plus per-node utilization; ``repro
graph`` deploys a workload on a multi-tier service-graph topology
(cache tiers, tail-resilience policies, optionally time-varying
load) and reports tail latency plus cache/retry/hedge counters;
``repro trace`` runs one experiment with request-lifecycle tracing on and
writes a Chrome trace-event JSON (load it at https://ui.perfetto.dev)
plus a per-stage latency-breakdown table.

Every experiment the CLI launches is constructed through the
:mod:`repro.api` plan layer.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

import numpy as np

from repro.analysis.figures import (
    hdsearch_study,
    memcached_study,
    render_latency_series,
    render_ratio_series,
    socialnetwork_study,
)
from repro.config.presets import client_by_name
from repro.core.provisioning import (
    capacity_under_qos,
    provisioning_error,
    provisioning_plan,
)
from repro.core.recommendations import recommend
from repro.host.filesystem import (
    FakeFilesystem,
    RealFilesystem,
    make_skylake_tree,
)
from repro.host.tuner import HostTuner
from repro.loadgen.base import GeneratorDesign


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Client-side hardware configuration toolkit "
                    "(IISWC'24 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run one experiment, optionally sharded across "
                    "worker processes")
    run.add_argument("--workload", default="memcached",
                     help="registered workload name")
    run.add_argument("--client", default="LP",
                     help="client preset (LP or HP)")
    run.add_argument("--qps", type=float, default=None,
                     help="offered load (default: the workload's)")
    run.add_argument("--requests", type=int, default=None,
                     help="requests per run "
                          "(default: the workload's)")
    run.add_argument("--runs", type=int, default=5,
                     help="repetitions (the paper: 50)")
    run.add_argument("--seed", type=int, default=0,
                     help="base seed for the repetition protocol")
    run.add_argument("--workers", type=int, default=1,
                     help="shard width W: decompose each run into W "
                          "striped full-replica shards at qps/W "
                          "(part of the plan's content hash)")
    run.add_argument("--processes", type=int, default=None,
                     help="processes to spread shards over (default: "
                          "min(workers, cores); 1 = serial placement, "
                          "bit-identical to any other)")
    run.add_argument("--sink", default=None,
                     help="telemetry sink (columnar or streaming)")
    run.add_argument("--engine", default=None,
                     help="event-loop engine (reference or "
                          "vectorized)")

    study = commands.add_parser(
        "study", help="run a client-vs-server study grid")
    study.add_argument("--workload", default="memcached",
                       choices=["memcached", "hdsearch",
                                "socialnetwork"])
    study.add_argument("--knob", default="smt",
                       choices=["smt", "c1e"],
                       help="server-side knob under study")
    study.add_argument("--qps", type=float, nargs="+",
                       default=[10_000, 100_000, 500_000])
    study.add_argument("--runs", type=int, default=10)
    study.add_argument("--requests", type=int, default=500)
    study.add_argument("--metric", default="avg",
                       choices=["avg", "p99", "true_avg", "stdev_avg"])
    study.add_argument("--seed", type=int, default=0,
                       help="base seed for the repetition protocol")

    tune = commands.add_parser(
        "tune",
        help="plan/apply a host configuration (the measurement-"
             "config advisor; for the capacity optimizer see "
             "'repro autotune')",
        description="Plan (and optionally apply) the paper's "
                    "measurement host configuration on /sys.  To "
                    "*search* the simulated policy space for a "
                    "max-capacity configuration instead, see "
                    "'repro autotune'.")
    tune.add_argument("--config", default="HP",
                      help="LP or HP")
    tune.add_argument("--real", action="store_true",
                      help="operate on the live /sys and /dev/cpu "
                           "(requires root) instead of a fake host")
    tune.add_argument("--apply", action="store_true",
                      help="apply the plan (default: dry run)")

    from repro.tune.cli import add_autotune_parser
    add_autotune_parser(commands)

    advise = commands.add_parser(
        "recommend", help="Section VI configuration recommendation")
    advise.add_argument("--loop", default="open",
                        choices=["open", "closed"])
    advise.add_argument("--interarrival", default="block-wait",
                        choices=["block-wait", "busy-wait"])
    advise.add_argument("--target", default=None,
                        help="known target environment (LP/HP)")

    capacity = commands.add_parser(
        "capacity", help="QoS capacity + provisioning analysis")
    capacity.add_argument("--qos-p99", type=float, default=400.0,
                          help="99th-percentile QoS target in us")
    capacity.add_argument("--target-qps", type=float,
                          default=1_000_000.0)
    capacity.add_argument("--qps", type=float, nargs="+",
                          default=[100_000, 200_000, 300_000,
                                   400_000, 500_000])
    capacity.add_argument("--runs", type=int, default=10)
    capacity.add_argument("--requests", type=int, default=500)
    capacity.add_argument("--seed", type=int, default=0,
                          help="base seed for the repetition protocol")

    campaign = commands.add_parser(
        "campaign", help="parallel, resumable experiment sweeps")
    campaign_commands = campaign.add_subparsers(
        dest="campaign_command", required=True)
    for verb, help_text in (
            ("run", "execute a campaign (skips stored conditions)"),
            ("status", "show completion state against the store"),
            ("report", "render paper-style series from the store")):
        sub = campaign_commands.add_parser(verb, help=help_text)
        source = sub.add_mutually_exclusive_group(required=True)
        source.add_argument("--spec", metavar="FILE",
                            help="campaign spec JSON file")
        source.add_argument("--preset",
                            help="named preset, e.g. memcached-smt "
                                 "(see repro.campaign.presets)")
        sub.add_argument("--store", default="campaign-results.sqlite",
                         help="SQLite result store path")
        sub.add_argument("--qps", type=float, nargs="+", default=None,
                         help="override the spec's QPS sweep")
        sub.add_argument("--runs", type=int, default=None,
                         help="override repetitions per condition")
        sub.add_argument("--requests", type=int, default=None,
                         help="override requests per run")
        sub.add_argument("--seed", type=int, default=None,
                         help="override the campaign base seed")
        sub.add_argument("--engine", default=None,
                         help="event-loop engine (reference or "
                              "vectorized; validated before any "
                              "condition runs)")
        if verb == "run":
            parallelism = sub.add_mutually_exclusive_group()
            parallelism.add_argument(
                "--workers", type=int, default=None,
                help="worker processes (default: all cores)")
            parallelism.add_argument(
                "--serial", action="store_true",
                help="run inline in this process")
            sub.add_argument("--chunksize", type=int, default=1,
                             help="conditions per worker task")
        if verb == "report":
            sub.add_argument("--metric", default="avg",
                             choices=["avg", "p99", "true_avg",
                                      "stdev_avg"])

    plan = commands.add_parser(
        "plan", help="validate + expand a campaign without running "
                     "(dry run)")
    plan_source = plan.add_mutually_exclusive_group(required=True)
    plan_source.add_argument("--spec", metavar="FILE",
                             help="campaign spec JSON file")
    plan_source.add_argument("--preset",
                             help="named preset, e.g. memcached-smt")
    plan_source.add_argument("--workload",
                             help="build an ad-hoc campaign for this "
                                  "workload instead")
    plan.add_argument("--knob", default=None,
                      choices=["smt", "c1e"],
                      help="server knob for an ad-hoc --workload "
                           "campaign (default: baseline server only)")
    plan.add_argument("--clients", nargs="+", default=None,
                      metavar="NAME",
                      help="client presets for an ad-hoc campaign "
                           "(default: LP HP)")
    plan.add_argument("--param", action="append", default=[],
                      metavar="KEY=VALUE",
                      help="workload parameter, e.g. "
                           "added_delay_us=200 (repeatable)")
    plan.add_argument("--qps", type=float, nargs="+", default=None,
                      help="override the QPS sweep")
    plan.add_argument("--runs", type=int, default=None,
                      help="override repetitions per condition")
    plan.add_argument("--requests", type=int, default=None,
                      help="override requests per run")
    plan.add_argument("--seed", type=int, default=None,
                      help="override the campaign base seed")
    plan.add_argument("--sink", default=None,
                      help="telemetry sink the run policy would use "
                           "(columnar or streaming)")
    plan.add_argument("--trace", action="store_true",
                      help="preview the policy with lifecycle "
                           "tracing on")
    plan.add_argument("--engine", default=None,
                      help="event-loop engine the conditions would "
                           "run on (reference or vectorized)")
    plan.add_argument("--graph", default=None, metavar="PRESET",
                      help="service-graph preset for an ad-hoc "
                           "--workload campaign (validated with "
                           "did-you-mean before expansion)")
    plan.add_argument("--tunable", action="append", default=None,
                      metavar="FIELD=SPEC",
                      help="validate an autotune tunable against the "
                           "campaign's plans (repeatable; unknown "
                           "fields fail with a did-you-mean before "
                           "anything executes -- see "
                           "'repro autotune')")

    from repro.cluster.spec import LB_POLICIES
    cluster = commands.add_parser(
        "cluster", help="run a workload on a multi-server cluster "
                        "topology")
    cluster.add_argument("--workload", default="memcached",
                         help="registered workload name")
    cluster.add_argument("--nodes", type=int, default=4,
                         help="server groups behind the load balancer")
    cluster.add_argument("--policy", default="power-of-two",
                         choices=list(LB_POLICIES),
                         help="load-balancing policy")
    cluster.add_argument("--shards", type=int, default=1,
                         help="shard stations per server group")
    cluster.add_argument("--fanout", type=int, default=0,
                         help="shards touched per request (0 = all)")
    cluster.add_argument("--quorum", type=int, default=0,
                         help="responses completing a request "
                              "(0 = all of fanout)")
    cluster.add_argument("--replication", type=int, default=1,
                         help="replicas per shard")
    cluster.add_argument("--client", default="LP",
                         help="client preset (LP or HP)")
    cluster.add_argument("--qps", type=float, default=None,
                         help="aggregate offered load (default: the "
                              "workload's default, scaled by nodes)")
    cluster.add_argument("--runs", type=int, default=5)
    cluster.add_argument("--requests", type=int, default=500)
    cluster.add_argument("--seed", type=int, default=0,
                         help="base seed for the repetition protocol")

    from repro.graph.presets import graph_preset_names
    graph = commands.add_parser(
        "graph", help="run a workload on a multi-tier service-graph "
                      "topology (cache tiers + resilience policies)")
    graph.add_argument("--workload", default="memcached",
                       help="registered workload name")
    graph.add_argument("--graph", default="memcached-cached",
                       metavar="PRESET",
                       help="graph topology preset: "
                            + ", ".join(graph_preset_names()))
    graph.add_argument("--client", default="LP",
                       help="client preset (LP or HP)")
    graph.add_argument("--qps", type=float, default=None,
                       help="offered load (default: the workload's)")
    graph.add_argument("--arrival", default=None,
                       choices=["poisson", "diurnal", "flash-crowd"],
                       help="arrival process shape "
                            "(default: stationary Poisson)")
    graph.add_argument("--runs", type=int, default=5)
    graph.add_argument("--requests", type=int, default=500)
    graph.add_argument("--seed", type=int, default=0,
                       help="base seed for the repetition protocol")
    graph.add_argument("--engine", default=None,
                       help="event-loop engine (reference or "
                            "vectorized)")

    trace = commands.add_parser(
        "trace", help="run one traced experiment and export a "
                      "Chrome trace (Perfetto-loadable)")
    trace.add_argument("--workload", default="memcached",
                       help="registered workload name")
    trace.add_argument("--client", default="LP",
                       help="client preset (LP or HP)")
    trace.add_argument("--qps", type=float, default=None,
                       help="offered load (default: the workload's)")
    trace.add_argument("--requests", type=int, default=None,
                       help="requests to simulate "
                            "(default: the workload's)")
    trace.add_argument("--seed", type=int, default=0,
                       help="root seed for the traced run")
    trace.add_argument("--sink", default=None,
                       help="telemetry sink (columnar or streaming)")
    trace.add_argument("--engine", default=None,
                       help="event-loop engine (reference or "
                            "vectorized); the engine.kernel.* metrics "
                            "report batch-dequeue engagement")
    trace.add_argument("--output", "-o", default="trace.json",
                       help="Chrome trace JSON output path")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    """Run one experiment (optionally sharded) and summarize it."""
    from repro.api import experiment
    from repro.errors import ReproError

    try:
        builder = (experiment(args.workload)
                   .client(client_by_name(args.client)))
        load_kwargs = {}
        if args.qps is not None:
            load_kwargs["qps"] = args.qps
        if args.requests is not None:
            load_kwargs["num_requests"] = args.requests
        if load_kwargs:
            builder = builder.load(**load_kwargs)
        plan = (builder
                .policy(runs=args.runs, base_seed=args.seed,
                        sink=args.sink, engine=args.engine,
                        workers=args.workers)
                .build())
        if plan.policy.workers > 1:
            from repro.parallel.runner import run_sharded
            result = run_sharded(plan, processes=args.processes)
        else:
            result = plan.run()
        avg = float(np.median(result.avg_samples()))
        p99 = float(np.median(result.p99_samples()))
        true_p99 = float(np.median(result.true_p99_samples()))
        sharding = (f", {plan.policy.workers} shard workers"
                    if plan.policy.workers > 1 else "")
        print(f"{args.workload} @ {plan.load.qps:g} QPS "
              f"({plan.policy.runs} runs x "
              f"{plan.load.num_requests} requests, "
              f"seed {args.seed}{sharding})")
        print(f"plan hash: {plan.content_hash()[:12]}")
        print(f"  median avg latency:  {avg:10.1f} us")
        print(f"  median p99 latency:  {p99:10.1f} us")
        print(f"  median true p99:     {true_p99:10.1f} us")
        print(f"  server utilization:  "
              f"{result.mean_server_utilization():10.3f}")
        return 0
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_study(args: argparse.Namespace) -> int:
    builders = {
        "memcached": lambda: memcached_study(
            knob=args.knob, qps_list=args.qps, runs=args.runs,
            num_requests=args.requests, base_seed=args.seed),
        "hdsearch": lambda: hdsearch_study(
            knob=args.knob, qps_list=args.qps, runs=args.runs,
            num_requests=args.requests, base_seed=args.seed),
        "socialnetwork": lambda: socialnetwork_study(
            qps_list=args.qps, runs=args.runs,
            num_requests=args.requests, base_seed=args.seed),
    }
    grid = builders[args.workload]()
    print(render_latency_series(grid, args.metric))
    conditions = list(grid.conditions)
    if len(conditions) == 2:
        print()
        print(render_ratio_series(
            grid, conditions[0], conditions[1], "avg"))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    config = client_by_name(args.config)
    fs = RealFilesystem() if args.real else FakeFilesystem(
        make_skylake_tree())
    tuner = HostTuner(fs)
    plan = tuner.plan(config)
    print(plan.render())
    if args.apply:
        result = tuner.apply(plan)
        print(f"\napplied {len(result.performed)} actions"
              + ("; reboot required for boot-time knobs"
                 if result.needs_reboot else ""))
    else:
        print("\n(dry run; pass --apply to execute)")
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    """Closed-loop policy search; the heavy lifting lives in
    :mod:`repro.tune.cli` to keep this module import-light."""
    from repro.tune.cli import cmd_autotune

    return cmd_autotune(args)


def _cmd_recommend(args: argparse.Namespace) -> int:
    design = GeneratorDesign(
        loop=args.loop,
        time_sensitive=args.interarrival == "block-wait")
    target = client_by_name(args.target) if args.target else None
    advice = recommend(design, target_config=target,
                       target_known=target is not None)
    print(f"Generator design: {design.describe()} "
          f"({design.interarrival_impl})\n")
    print(advice.render())
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    from repro.api import experiment

    observers = {}
    for name in ("LP", "HP"):
        config = client_by_name(name)
        base_plan = (experiment("memcached")
                     .client(config)
                     .load(num_requests=args.requests)
                     .policy(runs=args.runs, base_seed=args.seed)
                     .build())
        latency_by_qps = {}
        for qps in args.qps:
            result = base_plan.with_qps(qps).run()
            latency_by_qps[qps] = float(
                np.median(result.p99_samples()))
        observers[name] = capacity_under_qos(
            latency_by_qps, args.qos_p99, metric="p99")
        capacity = observers[name]
        print(f"{name}: capacity {capacity.capacity_qps:g} QPS under "
              f"p99 <= {args.qos_p99:g} us"
              + (" (sweep-limited)" if capacity.sweep_limited else ""))

    usable = {name: cap for name, cap in observers.items()
              if cap.capacity_qps > 0}
    if len(usable) >= 2:
        ratios = provisioning_error(usable, args.target_qps)
        print(f"\nFleet sizes for {args.target_qps:g} QPS:")
        for name, capacity in usable.items():
            plan = provisioning_plan(args.target_qps, capacity)
            print(f"  {name}: {plan.machines} machines "
                  f"({ratios[name]:.2f}x the optimistic observer)")
    return 0


def _spec_overrides(args: argparse.Namespace) -> dict:
    """CampaignSpec overrides from the shared CLI flags."""
    overrides = {}
    if args.qps is not None:
        overrides["qps_list"] = tuple(args.qps)
    if args.runs is not None:
        overrides["runs"] = args.runs
    if args.requests is not None:
        overrides["num_requests"] = args.requests
    if args.seed is not None:
        overrides["base_seed"] = args.seed
    if getattr(args, "engine", None) is not None:
        # Validated by CampaignSpec.__post_init__ -- an unknown name
        # fails with a did-you-mean before any condition executes.
        overrides["engine"] = args.engine
    return overrides


def _load_campaign_spec(args: argparse.Namespace):
    """The campaign spec named by --spec/--preset, with overrides."""
    from repro.campaign.presets import campaign_by_name
    from repro.campaign.spec import CampaignSpec

    if args.spec:
        spec = CampaignSpec.load(args.spec)
    else:
        spec = campaign_by_name(args.preset)
    overrides = _spec_overrides(args)
    return spec.with_overrides(**overrides) if overrides else spec


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign.executor import CampaignExecutor
    from repro.campaign.report import (
        render_campaign_report,
        render_campaign_status,
    )
    from repro.campaign.store import ResultStore, require_store
    from repro.errors import ReproError

    try:
        spec = _load_campaign_spec(args)
        if args.campaign_command == "run":
            workers = 1 if args.serial else args.workers
            with ResultStore(args.store) as store:
                executor = CampaignExecutor(
                    store=store, max_workers=workers,
                    chunksize=args.chunksize)

                def progress(outcome, completed, total):
                    condition = outcome.spec
                    timing = ("cached" if outcome.status == "hit"
                              else f"{outcome.elapsed_s:.2f}s")
                    detail = (f" [{outcome.error}]"
                              if outcome.status == "failed" else "")
                    print(f"[{completed}/{total}] {outcome.status:<6} "
                          f"{condition.label} @ {condition.qps:g} "
                          f"({timing}){detail}")

                outcome = executor.run(spec, progress=progress)
            print()
            print(outcome.summary())
            print(f"store: {args.store}")
            return 0 if outcome.ok else 1
        with require_store(args.store) as store:
            if args.campaign_command == "status":
                print(render_campaign_status(spec, store))
                return 0
            print(render_campaign_report(spec, store, args.metric))
            return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _parse_param(text: str):
    """``KEY=VALUE`` -> (key, value), numbers parsed as floats."""
    from repro.errors import ExperimentError

    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise ExperimentError(
            f"--param expects KEY=VALUE, got {text!r}")
    try:
        value = float(raw)
    except ValueError:
        value = raw
    return key, value


def _plan_campaign_spec(args: argparse.Namespace):
    """The campaign named by --spec/--preset, or an ad-hoc one."""
    from repro.campaign.spec import CampaignSpec
    from repro.config.presets import SERVER_BASELINE, knob_conditions
    from repro.errors import ExperimentError
    from repro.workloads.registry import find_workload

    if args.workload is None:
        # A dry run must never show a different campaign than the
        # flags describe: the ad-hoc-only flags are meaningless next
        # to --spec/--preset, so reject them instead of dropping them.
        for flag, value in (("--param", args.param or None),
                            ("--knob", args.knob),
                            ("--clients", args.clients),
                            ("--graph", args.graph)):
            if value is not None:
                raise ExperimentError(
                    f"{flag} only applies to an ad-hoc --workload "
                    f"campaign; a --spec/--preset campaign already "
                    f"defines it")
        return _load_campaign_spec(args)
    conditions = (knob_conditions(args.knob) if args.knob is not None
                  else {"baseline": SERVER_BASELINE})
    clients = None
    if args.clients is not None:
        try:
            clients = {name: client_by_name(name)
                       for name in args.clients}
        except ValueError as exc:
            raise ExperimentError(str(exc)) from None
    definition = find_workload(args.workload)
    if definition is not None and definition.qps_sweep:
        default_sweep = definition.qps_sweep
    elif definition is not None:
        default_sweep = (definition.default_qps,)
    else:
        # Unregistered workload: expansion below raises the
        # did-you-mean error; any placeholder sweep will do.
        default_sweep = (1_000.0,)
    graph = None
    if args.graph is not None:
        # Resolve the preset now so an unknown topology fails with
        # the registry's did-you-mean before any expansion output.
        from repro.graph.presets import graph_preset
        graph = graph_preset(args.graph)
    spec = CampaignSpec(
        name=f"{args.workload}-plan",
        workload=args.workload,
        conditions=conditions,
        qps_list=default_sweep,
        extra=dict(_parse_param(p) for p in args.param),
        graph=graph,
    )
    if clients is not None:
        spec = spec.with_overrides(clients=clients)
    overrides = _spec_overrides(args)
    return spec.with_overrides(**overrides) if overrides else spec


def _cmd_plan(args: argparse.Namespace) -> int:
    """Dry run: validate, expand and print -- simulate nothing."""
    from repro.errors import ReproError
    from repro.obs.sinks import describe_sink, validate_sink_name
    from repro.sim.kernel import describe_engine, validate_engine_name

    try:
        # Validate the sink, engine, and any declared tunables first
        # so a typo fails with the registry's did-you-mean before any
        # campaign expansion output.
        sink = (validate_sink_name(args.sink)
                if args.sink is not None else None)
        if args.engine is not None:
            validate_engine_name(args.engine)
        tune_space = None
        if args.tunable:
            from repro.tune.cli import space_from_tunable_args
            tune_space = space_from_tunable_args(args.tunable)
        spec = _plan_campaign_spec(args)
        conditions = spec.expand()
        plans = [c.to_plan() for c in conditions]
        if tune_space is not None:
            # Prove the space applies to this campaign's plans (field
            # paths, workload params, graph presets) -- still a dry
            # run; nothing simulates.
            tune_space.validate_against(plans[0])
        total_runs = sum(c.runs for c in conditions)
        total_requests = sum(c.runs * c.num_requests
                             for c in conditions)
        print(f"campaign {spec.name!r}: workload={spec.workload}, "
              f"{len(spec.clients)} clients x "
              f"{len(spec.conditions)} conditions x "
              f"{len(spec.qps_list)} loads = {len(conditions)} "
              f"experiments")
        print(f"totals: {total_runs} runs, {total_requests} "
              f"simulated requests")
        if spec.extra:
            print(f"workload parameters: {spec.extra}")
        if spec.cluster is not None:
            print(f"cluster topology: {spec.cluster.describe()}")
        if spec.graph is not None:
            print("service graph:")
            for line in spec.graph.describe().splitlines():
                print(f"  {line}")
        if spec.arrival is not None:
            print(f"arrival process: {spec.arrival.describe()}")
        if tune_space is not None:
            print(f"tunable space ({tune_space.size()} candidates):")
            for line in tune_space.describe().splitlines():
                print(f"  {line}")
        policy = plans[0].policy
        overrides = {}
        if sink is not None:
            overrides["sink"] = sink
        if args.trace:
            overrides["trace"] = True
        if overrides:
            policy = replace(policy, **overrides)
        print(f"observability: sink={policy.sink} "
              f"({describe_sink(policy.sink)}), "
              f"tracing={'on' if policy.trace else 'off'}"
              + ("" if policy.observed
                 else " -- hot path runs unobserved"))
        print(f"engine: {policy.engine} "
              f"({describe_engine(policy.engine)})")
        print()
        header = (f"{'#':>4} {'label':<16}{'qps':>10}  "
                  f"{'seed schedule':<24}{'condition hash':<16}"
                  f"{'plan hash':<16}")
        print(header)
        for index, (condition, plan) in enumerate(
                zip(conditions, plans), start=1):
            seeds = plan.policy.seed_schedule()
            schedule = (f"{seeds[0]}" if len(seeds) == 1
                        else f"{seeds[0]}..{seeds[-1]}")
            print(f"{index:>4} {condition.label:<16}"
                  f"{condition.qps:>10g}  {schedule:<24}"
                  f"{condition.content_hash()[:12]:<16}"
                  f"{plan.content_hash()[:12]:<16}")
        print()
        print(f"dry run: validated {len(plans)} plans; "
              "nothing executed")
        return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Run one cluster experiment and summarize it per node."""
    from repro.api import experiment
    from repro.errors import ReproError
    from repro.workloads.registry import workload_by_name

    try:
        definition = workload_by_name(args.workload)
        qps = (args.qps if args.qps is not None
               else definition.default_qps * args.nodes)
        plan = (experiment(args.workload)
                .client(client_by_name(args.client))
                .load(qps=qps, num_requests=args.requests)
                .policy(runs=args.runs, base_seed=args.seed)
                .cluster(nodes=args.nodes, lb_policy=args.policy,
                         shards=args.shards, fanout=args.fanout,
                         quorum=args.quorum,
                         replication=args.replication)
                .build())
        result = plan.run()
        avg = float(np.median(result.avg_samples()))
        p99 = float(np.median(result.p99_samples()))
        true_p99 = float(np.median(result.true_p99_samples()))
        print(f"{args.workload} on {plan.cluster.describe()} "
              f"@ {qps:g} QPS ({args.runs} runs x "
              f"{args.requests} requests, seed {args.seed})")
        print(f"plan hash: {plan.content_hash()[:12]}")
        print(f"  median avg latency:  {avg:10.1f} us")
        print(f"  median p99 latency:  {p99:10.1f} us")
        print(f"  median true p99:     {true_p99:10.1f} us")
        utils = result.mean_node_utilizations()
        if utils:
            print(f"  per-node utilization "
                  f"(mean {result.mean_server_utilization():.3f}):")
            for index, value in enumerate(utils):
                print(f"    node {index}: {value:.3f}")
        else:
            print(f"  server utilization: "
                  f"{result.mean_server_utilization():.3f}")
        return 0
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_graph(args: argparse.Namespace) -> int:
    """Run one service-graph experiment and summarize it per tier."""
    from repro.api import ArrivalSpec, experiment
    from repro.errors import ReproError

    try:
        arrival = None
        if args.arrival == "diurnal":
            arrival = ArrivalSpec(shape="diurnal",
                                  period_us=20_000.0, amplitude=0.5)
        elif args.arrival == "flash-crowd":
            arrival = ArrivalSpec(shape="flash-crowd",
                                  spike_start_us=5_000.0,
                                  spike_duration_us=5_000.0,
                                  spike_factor=4.0)
        builder = (experiment(args.workload)
                   .client(client_by_name(args.client))
                   .graph(args.graph)
                   .policy(runs=args.runs, base_seed=args.seed,
                           metrics=True, engine=args.engine))
        load_kwargs = {"num_requests": args.requests,
                       "arrival": arrival}
        if args.qps is not None:
            load_kwargs["qps"] = args.qps
        plan = builder.load(**load_kwargs).build()
        result = plan.run()
        avg = float(np.median(result.avg_samples()))
        p99 = float(np.median(result.p99_samples()))
        true_p99 = float(np.median(result.true_p99_samples()))
        print(f"{args.workload} on service graph "
              f"{args.graph!r} @ {plan.load.qps:g} QPS "
              f"({args.runs} runs x {args.requests} requests, "
              f"seed {args.seed})")
        for line in plan.graph.describe().splitlines():
            print(f"  {line}")
        if arrival is not None:
            print(f"arrival process: {arrival.describe()}")
        print(f"plan hash: {plan.content_hash()[:12]}")
        print(f"  median avg latency:  {avg:10.1f} us")
        print(f"  median p99 latency:  {p99:10.1f} us")
        print(f"  median true p99:     {true_p99:10.1f} us")
        tier_metrics = [(name, value)
                        for name, value in result.runs[0].obs_metrics
                        if name.startswith(("cache.", "resilience."))]
        if tier_metrics:
            print(f"  tier counters (seed "
                  f"{plan.policy.seed_schedule()[0]} run):")
            for name, value in tier_metrics:
                print(f"    {name:<34} {value:>12g}")
        return 0
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one traced experiment; write the trace, print the table."""
    from repro.api import experiment
    from repro.errors import ReproError
    from repro.obs.export import (
        latency_breakdown,
        render_breakdown_table,
        write_chrome_trace,
    )

    try:
        builder = (experiment(args.workload)
                   .client(client_by_name(args.client)))
        load_kwargs = {}
        if args.qps is not None:
            load_kwargs["qps"] = args.qps
        if args.requests is not None:
            load_kwargs["num_requests"] = args.requests
        if load_kwargs:
            builder = builder.load(**load_kwargs)
        plan = (builder
                .policy(runs=1, base_seed=args.seed, trace=True,
                        sink=args.sink, engine=args.engine)
                .build())
        testbed = plan.testbed(args.seed)
        metrics = testbed.run()
        tracer = testbed.sim.obs.tracer
        label = (f"{args.workload} @ {plan.load.qps:g} QPS "
                 f"(seed {args.seed})")
        payload = write_chrome_trace(tracer, args.output, label=label)
        breakdown = latency_breakdown(tracer)
        request_total = breakdown.get("request", {}).get("total_us")
        print(f"{args.workload} @ {plan.load.qps:g} QPS, "
              f"{plan.load.num_requests} requests, seed {args.seed}: "
              f"{metrics.requests} measured, "
              f"avg {metrics.avg_us:.1f} us, "
              f"p99 {metrics.p99_us:.1f} us")
        print(f"wrote {len(payload['traceEvents'])} trace events to "
              f"{args.output} (load at https://ui.perfetto.dev)")
        if tracer.dropped:
            print(f"warning: {tracer.dropped} spans dropped at the "
                  f"{tracer.max_spans} span cap")
        print()
        print(render_breakdown_table(breakdown, request_total))
        kernel_metrics = [(name, value)
                          for name, value in metrics.obs_metrics
                          if name.startswith("engine.kernel.")]
        if kernel_metrics:
            print()
            print("vectorized kernel engagement:")
            for name, value in kernel_metrics:
                print(f"  {name:<34} {value:>12g}")
        return 0
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "study": _cmd_study,
        "tune": _cmd_tune,
        "autotune": _cmd_autotune,
        "recommend": _cmd_recommend,
        "capacity": _cmd_capacity,
        "campaign": _cmd_campaign,
        "plan": _cmd_plan,
        "cluster": _cmd_cluster,
        "graph": _cmd_graph,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
