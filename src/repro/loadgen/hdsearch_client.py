"""HDSearch client preset (MicroSuite experiments).

MicroSuite's accompanying client is an **open-loop, time-insensitive**
generator: it draws Poisson inter-arrivals but implements them with a
**busy-wait** loop that actively polls for elapsed time, measuring
inside the generator.  Because the polling core never sleeps, the
client-side C-state/wake machinery is out of the picture; what remains
is the clock frequency at which the client's (substantial) per-request
marshalling work runs -- which is why the LP/HP gap on HDSearch is
present but much smaller than on Memcached (Fig. 4).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config.knobs import HardwareConfig
from repro.loadgen.client_machine import ClientMachine
from repro.loadgen.interarrival import ExponentialInterarrival
from repro.loadgen.open_loop import OpenLoopGenerator
from repro.net.link import NetworkLink
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.server.request import Request
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

#: Per-request client CPU cost at nominal frequency.  HDSearch queries
#: carry a feature vector that the gRPC client serializes (send) and a
#: response image set it deserializes and ranks (receive).  Only the
#: receive-side work sits on the measurement path, so it dominates.
HDSEARCH_SEND_WORK_US = 30.0
HDSEARCH_RECV_WORK_US = 150.0


def build_hdsearch_client(
        sim: Simulator, streams: RandomStreams,
        client_config: HardwareConfig, service, qps: float,
        num_requests: int,
        request_factory: Optional[Callable[[int], Request]] = None,
        warmup_fraction: float = 0.1,
        params: SkylakeParameters = DEFAULT_PARAMETERS,
        interarrival=None,
        ) -> OpenLoopGenerator:
    """Assemble the HDSearch busy-wait client (one machine)."""
    machine = ClientMachine(
        sim, client_config, time_sensitive=False,
        rng=streams.get("client-0"),
        params=params,
        send_work_us=HDSEARCH_SEND_WORK_US,
        recv_work_us=HDSEARCH_RECV_WORK_US,
        name="hdsearch-client")
    link_rng = streams.stream("network")
    return OpenLoopGenerator(
        sim, [machine], service,
        link_to_server=NetworkLink(params, link_rng),
        link_to_client=NetworkLink(params, link_rng),
        interarrival=(interarrival if interarrival is not None
                      else ExponentialInterarrival(qps)),
        arrival_rng=streams.stream("arrivals"),
        time_sensitive=False,
        num_requests=num_requests,
        warmup_fraction=warmup_fraction,
        request_factory=request_factory,
    )
