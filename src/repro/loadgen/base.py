"""Generator taxonomy and the shared generator skeleton."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.loadgen.client_machine import ClientMachine
from repro.loadgen.measurement import PointOfMeasurement, RunSamples
from repro.net.link import NetworkLink
from repro.server.request import Request
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class GeneratorDesign:
    """Classification of a workload generator (paper Section II).

    Attributes:
        loop: ``"open"`` or ``"closed"``.
        time_sensitive: True for block-wait inter-arrival timing (the
            generator sleeps and must be woken), False for busy-wait.
        point_of_measurement: where latency is timestamped.
    """

    loop: str
    time_sensitive: bool
    point_of_measurement: PointOfMeasurement = PointOfMeasurement.GENERATOR

    def __post_init__(self) -> None:
        if self.loop not in ("open", "closed"):
            raise ConfigurationError(
                f"loop must be 'open' or 'closed', got {self.loop!r}"
            )

    def describe(self) -> str:
        """The paper's phrasing, e.g. ``"open-loop time-sensitive"``."""
        sensitivity = (
            "time-sensitive" if self.time_sensitive else "time-insensitive")
        return f"{self.loop}-loop {sensitivity}"

    @property
    def interarrival_impl(self) -> str:
        """``"block-wait"`` or ``"busy-wait"``."""
        return "block-wait" if self.time_sensitive else "busy-wait"


class LoadGenerator:
    """Shared plumbing for open- and closed-loop generators.

    Subclasses implement :meth:`start`; the request round-trip path
    (send -> network -> service -> network -> NIC -> generator
    timestamp) is common and lives here.
    """

    def __init__(self, sim: Simulator, machines: Sequence[ClientMachine],
                 service, link_to_server: NetworkLink,
                 link_to_client: NetworkLink,
                 design: GeneratorDesign,
                 num_requests: int,
                 warmup_fraction: float = 0.1,
                 request_factory: Optional[Callable[[int], Request]] = None,
                 ) -> None:
        if not machines:
            raise ConfigurationError("at least one client machine needed")
        if num_requests <= 0:
            raise ConfigurationError(
                f"num_requests must be positive, got {num_requests}"
            )
        for machine in machines:
            if machine.time_sensitive != design.time_sensitive:
                raise ConfigurationError(
                    f"machine {machine.name} is "
                    f"{'block' if machine.time_sensitive else 'busy'}-wait "
                    f"but the design says {design.interarrival_impl}"
                )
        self._sim = sim
        self.machines: List[ClientMachine] = list(machines)
        self.service = service
        self._link_to_server = link_to_server
        self._link_to_client = link_to_client
        self.design = design
        self.num_requests = int(num_requests)
        self.samples = RunSamples(warmup_fraction=warmup_fraction)
        self._request_factory = request_factory or (
            lambda index: Request(request_id=index))
        self.completed = 0
        self._on_all_done: Optional[Callable[[], None]] = None
        # Observability (null-object contract): when the run carries
        # an Observability context it may swap in a different sink and
        # hands out the tracer; otherwise _trace stays None and every
        # hook below is a single attribute check.
        obs = getattr(sim, "obs", None)
        self._trace = None
        if obs is not None:
            obs.on_generator(self)
            self._trace = obs.tracer
        # Accelerated-kernel handshake: the batch-dequeue engine fuses
        # this generator's hot-path callbacks when they are the stock
        # implementations (see repro.sim.kernel).
        adopt = getattr(sim, "adopt_generator", None)
        if adopt is not None:
            adopt(self)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the run's requests. Implemented by subclasses."""
        raise NotImplementedError

    def on_all_done(self, callback: Callable[[], None]) -> None:
        """Register a callback fired when the last request completes."""
        self._on_all_done = callback

    @property
    def drained(self) -> bool:
        """True when every request completed and no live work remains.

        The testbed's end-of-run check: ``completed`` catches requests
        lost *or double-counted* in the round-trip wiring (exact
        equality, as the seed implementation enforced),
        ``live_pending_events`` catches stray work still armed after
        the last completion (cancelled events awaiting lazy removal do
        not count).
        """
        return (self.completed == self.num_requests
                and self._sim.live_pending_events == 0)

    # ------------------------------------------------------------------
    def _launch(self, machine: ClientMachine, request: Request) -> None:
        """Begin the send path for *request* on *machine* (at its
        intended send time, which must be the current sim time)."""
        machine.begin_send(
            request.intended_send_us, self._sent, machine, request)

    def _sent(self, machine: ClientMachine, request: Request,
              actual_send_us: float) -> None:
        request.actual_send_us = actual_send_us
        delay = self._link_to_server.sample_latency_us(request.size_kb)
        trace = self._trace
        if trace is not None:
            rid = request.request_id
            trace.span("client.send", request.intended_send_us,
                       actual_send_us, rid, "client")
            trace.span("net.out", actual_send_us,
                       actual_send_us + delay, rid, "net")
        self._sim.post(
            delay, self.service.submit, request, self._served, machine)

    def _served(self, request: Request, machine: ClientMachine) -> None:
        delay = self._link_to_client.sample_latency_us(request.size_kb)
        trace = self._trace
        if trace is not None:
            now = self._sim.now
            trace.span("net.in", now, now + delay,
                       request.request_id, "net")
        self._sim.post(delay, self._at_client_nic, machine, request)

    def _at_client_nic(self, machine: ClientMachine,
                       request: Request) -> None:
        request.client_nic_us = self._sim.now
        machine.deliver_response(self._measured, machine, request)

    def _measured(self, machine: ClientMachine, request: Request,
                  timestamp_us: float) -> None:
        request.measured_complete_us = timestamp_us
        trace = self._trace
        if trace is not None:
            rid = request.request_id
            trace.span("client.recv", request.client_nic_us,
                       timestamp_us, rid, "client")
            # The root span: dur is exactly the measured latency.
            trace.span("request", request.actual_send_us,
                       timestamp_us, rid, "client")
        # Columnar recording: the timestamps land in SampleColumns and
        # the Request object is dropped once in-flight use ends.
        self.samples.record(request)
        self.completed += 1
        self._after_completion(machine, request)
        if self.completed >= self.num_requests and self._on_all_done:
            self._on_all_done()

    def _after_completion(self, machine: ClientMachine,
                          request: Request) -> None:
        """Hook for closed-loop continuation; no-op for open loop."""
