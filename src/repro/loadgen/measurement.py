"""Points of measurement and per-run sample collection.

The *point of measurement* (Section II, citing Lancet [24]) is where
the reply is timestamped.  An in-generator point includes every
client-side delay between the NIC and the generator's own clock read;
a NIC point is the ground truth the hardware delivered.  Comparing the
two is exactly how this library quantifies client-caused measurement
error.

Samples live in a :class:`~repro.telemetry.SampleColumns`
struct-of-arrays buffer: recording a completion stores the request's
timestamps into preallocated numpy columns (the request object itself
is not retained), and every accessor is vectorized column arithmetic
over a cached, warmup-trimmed sort order instead of a re-sorted Python
list.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import InsufficientSamplesError
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.server.request import Request
from repro.telemetry import SampleColumns


class PointOfMeasurement(enum.Enum):
    """Where end-to-end latency is timestamped."""

    GENERATOR = "generator"
    KERNEL = "kernel"
    NIC = "nic"


def latency_at_point(request: Request, point: PointOfMeasurement,
                     params: SkylakeParameters = DEFAULT_PARAMETERS) -> float:
    """Latency of *request* as observed at *point*.

    The kernel point sits one RX-stack traversal above the NIC; the
    generator point is wherever the generator's own timestamping
    landed (all client hardware overheads included).
    """
    if point is PointOfMeasurement.NIC:
        return request.true_latency_us
    if point is PointOfMeasurement.KERNEL:
        return request.true_latency_us + params.kernel_stack_us
    return request.measured_latency_us


class RunSamples:
    """All completed requests of one run, with warmup trimming.

    One *run* of an experiment produces one :class:`RunSamples`; the
    summary statistics derived from it (average, 99th percentile) are
    the per-run samples on which the paper's confidence intervals and
    normality tests operate.

    Derived arrays (sort order, per-point latencies) are cached and
    invalidated on :meth:`record`, so computing a run summary touches
    each column once no matter how many accessors consume it.  Cached
    arrays are returned read-only; copy before mutating.
    """

    def __init__(self, warmup_fraction: float = 0.1) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        self._warmup_fraction = warmup_fraction
        self._columns = SampleColumns()
        self._order: np.ndarray = None
        self._latency_cache: Dict[Tuple[PointOfMeasurement, float],
                                  np.ndarray] = {}
        self._array_cache: Dict[str, np.ndarray] = {}

    @classmethod
    def from_columns(cls, columns: SampleColumns,
                     warmup_fraction: float = 0.1) -> "RunSamples":
        """Wrap an already-filled columnar buffer as run samples.

        The accessor surface (stable send-order sort, warmup trim,
        cached latency arrays) applies to *columns* exactly as if its
        rows had been recorded one by one -- this is how the sharded
        runner's merged per-shard columns become one run's samples
        (:mod:`repro.parallel`).
        """
        out = cls(warmup_fraction=warmup_fraction)
        out._columns = columns
        return out

    # ------------------------------------------------------------------
    def record(self, request: Request) -> None:
        """Record one completed request (the request is not retained)."""
        self._columns.append(request)
        self._order = None
        self._latency_cache.clear()
        self._array_cache.clear()

    def record_batch(self, requests: List[Request]) -> None:
        """Record many completed requests at once (bulk ingest).

        The final state is identical to calling :meth:`record` in a
        loop over *requests*; the columnar stores and the cache
        invalidation happen once per batch instead of once per
        request.  The accelerated kernel drains its deferred
        completion buffer through this path.
        """
        if not requests:
            return
        self._columns.extend(requests)
        self._order = None
        self._latency_cache.clear()
        self._array_cache.clear()

    def __len__(self) -> int:
        return len(self._columns)

    @property
    def warmup_fraction(self) -> float:
        """Leading fraction of samples discarded as warmup."""
        return self._warmup_fraction

    @property
    def columns(self) -> SampleColumns:
        """The underlying struct-of-arrays buffer (warmup included)."""
        return self._columns

    @property
    def warmup_count(self) -> int:
        """Completed requests discarded as warmup."""
        return int(len(self._columns) * self._warmup_fraction)

    @property
    def measured_count(self) -> int:
        """Completed requests after warmup trimming."""
        return len(self._columns) - self.warmup_count

    def measured_order(self) -> np.ndarray:
        """Row indices after warmup, sorted by intended send time.

        The stable sort matches the seed implementation's
        ``sorted(key=intended_send_us)`` tie-breaking exactly, so
        every derived array is bit-identical to the object path.
        """
        if self._order is None:
            send = self._columns.column("intended_send_us")
            order = np.argsort(send, kind="stable")[self.warmup_count:]
            # Shared with every derived array; freeze it like them.
            order.setflags(write=False)
            self._order = order
        return self._order

    def measured_requests(self) -> List[Request]:
        """Requests after warmup, in send order, materialized on demand.

        The object-shaped escape hatch (timeline validation, tests);
        summary statistics stay columnar and never call this.
        """
        columns = self._columns
        return [columns.row(int(index)) for index in self.measured_order()]

    # ------------------------------------------------------------------
    def _measured(self, values: np.ndarray, what: str) -> np.ndarray:
        """Warmup-trim and order a full-length derived column."""
        order = self.measured_order()
        if order.size == 0:
            raise InsufficientSamplesError(1, 0, what)
        out = values[order]
        out.setflags(write=False)
        return out

    def latencies_us(self, point: PointOfMeasurement
                     = PointOfMeasurement.GENERATOR,
                     params: SkylakeParameters = DEFAULT_PARAMETERS
                     ) -> np.ndarray:
        """Per-request latencies at *point*, warmup excluded."""
        key = (point, params.kernel_stack_us)
        cached = self._latency_cache.get(key)
        if cached is not None:
            return cached
        columns = self._columns
        actual = columns.column("actual_send_us")
        if point is PointOfMeasurement.GENERATOR:
            values = columns.column("measured_complete_us") - actual
        elif point is PointOfMeasurement.NIC:
            values = columns.column("client_nic_us") - actual
        else:  # KERNEL: one RX-stack traversal above the NIC.
            values = (columns.column("client_nic_us") - actual
                      + params.kernel_stack_us)
        out = self._measured(values, "latency array")
        self._latency_cache[key] = out
        return out

    def average_latency_us(self, point: PointOfMeasurement
                           = PointOfMeasurement.GENERATOR) -> float:
        """The run's average response time at *point*."""
        return float(np.mean(self.latencies_us(point)))

    def percentile_latency_us(self, percentile: float = 99.0,
                              point: PointOfMeasurement
                              = PointOfMeasurement.GENERATOR) -> float:
        """The run's tail latency at *point* (default: 99th)."""
        if not 0.0 < percentile <= 100.0:
            raise ValueError(
                f"percentile must be in (0, 100], got {percentile}"
            )
        return float(np.percentile(self.latencies_us(point), percentile))

    def send_errors_us(self) -> np.ndarray:
        """Per-request send-timing errors (inter-arrival disruption)."""
        cached = self._array_cache.get("send_errors")
        if cached is not None:
            return cached
        columns = self._columns
        values = (columns.column("actual_send_us")
                  - columns.column("intended_send_us"))
        out = self._measured(values, "send error array")
        self._array_cache["send_errors"] = out
        return out

    def client_overheads_us(self) -> np.ndarray:
        """Per-request client measurement error (generator - NIC)."""
        cached = self._array_cache.get("client_overheads")
        if cached is not None:
            return cached
        columns = self._columns
        actual = columns.column("actual_send_us")
        measured = columns.column("measured_complete_us") - actual
        true = columns.column("client_nic_us") - actual
        out = self._measured(measured - true, "overhead array")
        self._array_cache["client_overheads"] = out
        return out
