"""Points of measurement and per-run sample collection.

The *point of measurement* (Section II, citing Lancet [24]) is where
the reply is timestamped.  An in-generator point includes every
client-side delay between the NIC and the generator's own clock read;
a NIC point is the ground truth the hardware delivered.  Comparing the
two is exactly how this library quantifies client-caused measurement
error.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

import numpy as np

from repro.errors import InsufficientSamplesError
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.server.request import Request


class PointOfMeasurement(enum.Enum):
    """Where end-to-end latency is timestamped."""

    GENERATOR = "generator"
    KERNEL = "kernel"
    NIC = "nic"


def latency_at_point(request: Request, point: PointOfMeasurement,
                     params: SkylakeParameters = DEFAULT_PARAMETERS) -> float:
    """Latency of *request* as observed at *point*.

    The kernel point sits one RX-stack traversal above the NIC; the
    generator point is wherever the generator's own timestamping
    landed (all client hardware overheads included).
    """
    if point is PointOfMeasurement.NIC:
        return request.true_latency_us
    if point is PointOfMeasurement.KERNEL:
        return request.true_latency_us + params.kernel_stack_us
    return request.measured_latency_us


class RunSamples:
    """All completed requests of one run, with warmup trimming.

    One *run* of an experiment produces one :class:`RunSamples`; the
    summary statistics derived from it (average, 99th percentile) are
    the per-run samples on which the paper's confidence intervals and
    normality tests operate.
    """

    def __init__(self, warmup_fraction: float = 0.1) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        self._warmup_fraction = warmup_fraction
        self._requests: List[Request] = []

    # ------------------------------------------------------------------
    def record(self, request: Request) -> None:
        """Record one completed request."""
        self._requests.append(request)

    def __len__(self) -> int:
        return len(self._requests)

    @property
    def warmup_count(self) -> int:
        """Completed requests discarded as warmup."""
        return int(len(self._requests) * self._warmup_fraction)

    def measured_requests(self) -> Sequence[Request]:
        """Requests after warmup, in send order."""
        ordered = sorted(self._requests, key=lambda r: r.intended_send_us)
        return ordered[self.warmup_count:]

    # ------------------------------------------------------------------
    def latencies_us(self, point: PointOfMeasurement
                     = PointOfMeasurement.GENERATOR,
                     params: SkylakeParameters = DEFAULT_PARAMETERS
                     ) -> np.ndarray:
        """Per-request latencies at *point*, warmup excluded."""
        requests = self.measured_requests()
        if not requests:
            raise InsufficientSamplesError(1, 0, "latency array")
        return np.array(
            [latency_at_point(r, point, params) for r in requests])

    def average_latency_us(self, point: PointOfMeasurement
                           = PointOfMeasurement.GENERATOR) -> float:
        """The run's average response time at *point*."""
        return float(np.mean(self.latencies_us(point)))

    def percentile_latency_us(self, percentile: float = 99.0,
                              point: PointOfMeasurement
                              = PointOfMeasurement.GENERATOR) -> float:
        """The run's tail latency at *point* (default: 99th)."""
        if not 0.0 < percentile <= 100.0:
            raise ValueError(
                f"percentile must be in (0, 100], got {percentile}"
            )
        return float(np.percentile(self.latencies_us(point), percentile))

    def send_errors_us(self) -> np.ndarray:
        """Per-request send-timing errors (inter-arrival disruption)."""
        requests = self.measured_requests()
        if not requests:
            raise InsufficientSamplesError(1, 0, "send error array")
        return np.array([r.send_error_us for r in requests])

    def client_overheads_us(self) -> np.ndarray:
        """Per-request client measurement error (generator - NIC)."""
        requests = self.measured_requests()
        if not requests:
            raise InsufficientSamplesError(1, 0, "overhead array")
        return np.array([r.client_overhead_us for r in requests])
