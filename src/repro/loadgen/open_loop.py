"""Open-loop generator: requests follow an inter-arrival process.

An open-loop generator models an infinite client population [24]: the
next request is sent when the inter-arrival distribution says so,
regardless of whether earlier requests completed.  Client-side timing
error therefore shifts requests in time and deviates the generated
workload from the target distribution -- the first risk of Table III.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.loadgen.base import GeneratorDesign, LoadGenerator
from repro.loadgen.client_machine import ClientMachine
from repro.loadgen.interarrival import InterarrivalProcess
from repro.loadgen.measurement import PointOfMeasurement
from repro.net.link import NetworkLink
from repro.server.request import Request
from repro.sim.engine import Simulator


class OpenLoopGenerator(LoadGenerator):
    """Open-loop load with round-robin placement over client machines."""

    def __init__(self, sim: Simulator, machines: Sequence[ClientMachine],
                 service, link_to_server: NetworkLink,
                 link_to_client: NetworkLink,
                 interarrival: InterarrivalProcess,
                 arrival_rng: Optional[np.random.Generator],
                 time_sensitive: bool,
                 num_requests: int,
                 warmup_fraction: float = 0.1,
                 request_factory: Optional[Callable[[int], Request]] = None,
                 point_of_measurement: PointOfMeasurement
                 = PointOfMeasurement.GENERATOR) -> None:
        design = GeneratorDesign(
            loop="open",
            time_sensitive=time_sensitive,
            point_of_measurement=point_of_measurement,
        )
        super().__init__(
            sim, machines, service, link_to_server, link_to_client,
            design, num_requests, warmup_fraction, request_factory)
        self.interarrival = interarrival
        self._arrival_rng = arrival_rng

    def start(self) -> None:
        """Draw the whole arrival schedule and arm the send events.

        The gaps for the entire run are pulled as **one vector draw**
        (bit-identical to per-request scalar sampling, see
        :mod:`repro.sim.sampling`) and turned into absolute send times
        by a cumulative sum -- the first gap is rebased onto the
        current clock before summing, so the float accumulation order
        matches the scalar ``send_at += gap`` loop exactly.  The train
        is then armed in one batch: the entries land in the
        simulator's tuple fast path and are heapified once, so a run's
        startup cost is O(n) instead of n sift-ups.
        """
        gaps = self.interarrival.sample_train_us(
            self._arrival_rng, self.num_requests)
        gaps[0] += self._sim.now
        send_times = np.cumsum(gaps).tolist()
        factory = self._request_factory
        machines = self.machines
        num_machines = len(machines)
        launch = self._launch

        def arrivals():
            index = 0
            for send_at in send_times:
                request = factory(index)
                request.intended_send_us = send_at
                yield (send_at, launch,
                       (machines[index % num_machines], request))
                index += 1

        self._sim.post_at_batch(arrivals())
