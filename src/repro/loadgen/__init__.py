"""Workload generators and the paper's generator taxonomy (Section II).

A generator is classified along three axes:

* **loop** -- open (requests follow an inter-arrival distribution) or
  closed (a finite set of blocking clients);
* **inter-arrival implementation** -- *time-sensitive* (block-wait: the
  generator thread sleeps until the next send and must be woken) or
  *time-insensitive* (busy-wait: the thread polls for elapsed time and
  never sleeps);
* **point of measurement** -- where latency is timestamped: inside the
  generator, at the kernel socket layer, or at the NIC.

The concrete generators mirror the paper's tools: Mutilate (Memcached),
the MicroSuite HDSearch client, and wrk2 (Social Network).
"""

from repro.loadgen.base import GeneratorDesign, LoadGenerator
from repro.loadgen.client_machine import ClientMachine
from repro.loadgen.closed_loop import ClosedLoopGenerator
from repro.loadgen.interarrival import (
    DeterministicInterarrival,
    ExponentialInterarrival,
    InterarrivalProcess,
    LognormalInterarrival,
)
from repro.loadgen.measurement import (
    PointOfMeasurement,
    RunSamples,
    latency_at_point,
)
from repro.loadgen.open_loop import OpenLoopGenerator
from repro.loadgen.mutilate import build_mutilate
from repro.loadgen.hdsearch_client import build_hdsearch_client
from repro.loadgen.wrk2 import build_wrk2

__all__ = [
    "GeneratorDesign",
    "LoadGenerator",
    "ClientMachine",
    "InterarrivalProcess",
    "ExponentialInterarrival",
    "DeterministicInterarrival",
    "LognormalInterarrival",
    "PointOfMeasurement",
    "RunSamples",
    "latency_at_point",
    "OpenLoopGenerator",
    "ClosedLoopGenerator",
    "build_mutilate",
    "build_hdsearch_client",
    "build_wrk2",
]
