"""Inter-arrival time processes for open-loop generators.

The *load intensity* of a workload generator is its inter-arrival
distribution (Section II).  Mutilate and wrk2 default to exponential
inter-arrivals (a Poisson process); deterministic and lognormal
processes are provided for the generator-design ablations.

Arrival schedules are drawn as whole vectors (:meth:`sample_train_us`):
one block draw replaces tens of thousands of scalar generator calls
when an open-loop train is constructed, and numpy block draws are
bit-identical to the equivalent scalar sequence (see
:mod:`repro.sim.sampling`).  :meth:`sample_us` remains as the
single-draw path for closed-loop think-time-style consumers and tests.

Time-varying load is modelled by **nonhomogeneous** Poisson processes
(:class:`DiurnalInterarrival`, :class:`FlashCrowdInterarrival`) drawn
via Lewis-Shedler thinning, and by :class:`TraceReplayInterarrival`,
which replays a recorded timestamp trace.  The thinning draw protocol
is chunked so the vector path stays bit-identical to a scalar
reference: each round draws the *remaining-needed* candidate gaps and
acceptance uniforms as two whole vectors, then scans them in order --
the number of draws per round depends only on how many arrivals were
still missing at round start, which is itself deterministic.

:class:`ArrivalSpec` is the plan-level description of an arrival
shape: frozen, validated data with an exact round-trip, carried by
:class:`~repro.api.specs.LoadSpec` (and omitted from the serialized
form when it names the default Poisson process, so every pre-existing
plan hash and store key is unchanged).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Mapping, Optional, Protocol

import numpy as np

from repro.errors import ConfigurationError, SpecValidationError
from repro.units import qps_to_interarrival_us


class InterarrivalProcess(Protocol):
    """Protocol: sample gaps to upcoming requests, in microseconds."""

    def sample_us(self, rng: Optional[np.random.Generator]) -> float:
        """Sample one inter-arrival gap."""
        ...

    def sample_train_us(self, rng: Optional[np.random.Generator],
                        size: int) -> np.ndarray:
        """Sample *size* consecutive gaps as one vector."""
        ...

    def mean_us(self) -> float:
        """Mean gap (i.e. 1e6 / QPS)."""
        ...


class _RateBased:
    """Shared QPS plumbing for concrete processes."""

    def __init__(self, qps: float) -> None:
        self._mean_us = qps_to_interarrival_us(qps)
        self._qps = float(qps)

    @property
    def qps(self) -> float:
        """The configured request rate."""
        return self._qps

    def mean_us(self) -> float:
        return self._mean_us


class ExponentialInterarrival(_RateBased):
    """Poisson arrivals: exponential gaps with mean ``1e6/qps``."""

    def sample_us(self, rng=None) -> float:
        if rng is None:
            return self._mean_us
        return self._mean_us * float(rng.standard_exponential())

    def sample_train_us(self, rng=None, size: int = 1) -> np.ndarray:
        if rng is None:
            return np.full(size, self._mean_us)
        # scale * standard_exponential(size) is bit-identical to size
        # scalar Generator.exponential(scale) calls.
        return rng.standard_exponential(size) * self._mean_us


class DeterministicInterarrival(_RateBased):
    """Perfectly paced arrivals (a rate limiter with no jitter)."""

    def sample_us(self, rng=None) -> float:
        return self._mean_us

    def sample_train_us(self, rng=None, size: int = 1) -> np.ndarray:
        return np.full(size, self._mean_us)


class LognormalInterarrival(_RateBased):
    """Bursty arrivals: lognormal gaps with configurable sigma."""

    def __init__(self, qps: float, sigma: float = 1.0) -> None:
        super().__init__(qps)
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self._sigma = float(sigma)
        self._mu = math.log(self._mean_us) - 0.5 * self._sigma ** 2

    def sample_us(self, rng=None) -> float:
        if rng is None or self._sigma == 0:
            return self._mean_us
        return float(rng.lognormal(self._mu, self._sigma))

    def sample_train_us(self, rng=None, size: int = 1) -> np.ndarray:
        if rng is None or self._sigma == 0:
            return np.full(size, self._mean_us)
        return np.asarray(rng.lognormal(self._mu, self._sigma, size))


# --------------------------------------------------- nonhomogeneous load
class _ThinnedInterarrival(_RateBased):
    """Nonhomogeneous Poisson arrivals via Lewis-Shedler thinning.

    Candidate arrivals are drawn from a homogeneous process at the
    peak rate and accepted with probability ``rate(t) / peak_rate``.
    The draw protocol is chunked (see the module docstring): every
    round consumes exactly ``remaining`` candidate gaps and
    ``remaining`` acceptance uniforms, so the batched-facade vector
    path and a scalar-draw reference consume the same underlying
    stream bit-for-bit.  The rate function is always evaluated with
    scalar :mod:`math` calls -- never a numpy array ufunc, whose SIMD
    loops may differ from the scalar libm by an ULP.
    """

    def __init__(self, qps: float, peak_qps: float) -> None:
        super().__init__(qps)
        self._peak_qps = float(peak_qps)
        self._peak_mean_us = qps_to_interarrival_us(peak_qps)
        #: absolute clock of the scalar :meth:`sample_us` path only;
        #: :meth:`sample_train_us` always starts its train at t=0.
        self._clock_us = 0.0

    def _rate_qps(self, t_us: float) -> float:
        """Instantaneous rate at absolute train time *t_us*."""
        raise NotImplementedError

    def sample_train_us(self, rng=None, size: int = 1) -> np.ndarray:
        if rng is None:
            return np.full(size, self._mean_us)
        gaps = np.empty(size)
        peak = self._peak_qps
        peak_mean = self._peak_mean_us
        rate = self._rate_qps
        t = 0.0
        last = 0.0
        count = 0
        while count < size:
            need = size - count
            candidates = rng.standard_exponential(need) * peak_mean
            accepts = rng.random(need)
            for gap, u in zip(candidates.tolist(), accepts.tolist()):
                t += gap
                if u * peak <= rate(t):
                    gaps[count] = t - last
                    last = t
                    count += 1
        return gaps

    def sample_us(self, rng=None) -> float:
        if rng is None:
            return self._mean_us
        t = self._clock_us
        while True:
            t += self._peak_mean_us * float(rng.standard_exponential())
            if float(rng.random()) * self._peak_qps <= self._rate_qps(t):
                gap = t - self._clock_us
                self._clock_us = t
                return gap


class DiurnalInterarrival(_ThinnedInterarrival):
    """Sinusoidal-rate arrivals: the day/night load cycle.

    ``rate(t) = qps * (1 + amplitude * sin(2*pi*(t + phase)/period))``
    -- the time-averaged rate equals the configured ``qps``, the peak
    is ``qps * (1 + amplitude)``.
    """

    def __init__(self, qps: float, period_us: float,
                 amplitude: float = 0.5, phase_us: float = 0.0) -> None:
        if period_us <= 0:
            raise ConfigurationError(
                f"diurnal period_us must be > 0, got {period_us}")
        if not 0.0 <= amplitude <= 1.0:
            raise ConfigurationError(
                f"diurnal amplitude must be in [0, 1], got {amplitude}")
        super().__init__(qps, qps * (1.0 + float(amplitude)))
        self._period_us = float(period_us)
        self._amplitude = float(amplitude)
        self._phase_us = float(phase_us)
        self._omega = 2.0 * math.pi / self._period_us

    def _rate_qps(self, t_us: float) -> float:
        return self._qps * (1.0 + self._amplitude * math.sin(
            self._omega * (t_us + self._phase_us)))


class FlashCrowdInterarrival(_ThinnedInterarrival):
    """Piecewise-constant spike: base rate with one flash crowd.

    The rate is ``qps * spike_factor`` inside
    ``[spike_start_us, spike_start_us + spike_duration_us)`` and
    ``qps`` everywhere else.  ``mean_us()`` reports the off-spike
    (base) gap.
    """

    def __init__(self, qps: float, spike_start_us: float,
                 spike_duration_us: float,
                 spike_factor: float = 4.0) -> None:
        if spike_start_us < 0:
            raise ConfigurationError(
                f"spike_start_us must be >= 0, got {spike_start_us}")
        if spike_duration_us <= 0:
            raise ConfigurationError(
                f"spike_duration_us must be > 0, "
                f"got {spike_duration_us}")
        if spike_factor < 1.0:
            raise ConfigurationError(
                f"spike_factor must be >= 1, got {spike_factor}")
        super().__init__(qps, qps * float(spike_factor))
        self._spike_start_us = float(spike_start_us)
        self._spike_end_us = float(spike_start_us) + float(
            spike_duration_us)
        self._spike_factor = float(spike_factor)

    def _rate_qps(self, t_us: float) -> float:
        if self._spike_start_us <= t_us < self._spike_end_us:
            return self._qps * self._spike_factor
        return self._qps


class TraceReplayInterarrival:
    """Deterministic replay of a recorded arrival-timestamp trace.

    Args:
        timestamps_us: non-decreasing absolute arrival times in
            microseconds; the first gap is the first timestamp (the
            trace starts at t=0).
        qps: optional target rate; when given, all gaps are rescaled
            so the trace's mean rate matches it (the way a plan's
            ``qps`` stays meaningful under trace replay).
    """

    def __init__(self, timestamps_us: Iterable[float],
                 qps: Optional[float] = None) -> None:
        times = np.asarray([float(t) for t in timestamps_us])
        if times.size == 0:
            raise ConfigurationError("arrival trace is empty")
        if times[0] < 0:
            raise ConfigurationError(
                f"trace timestamps must be >= 0, got {times[0]}")
        if times.size > 1 and np.any(np.diff(times) < 0):
            raise ConfigurationError(
                "trace timestamps must be non-decreasing")
        gaps = np.diff(times, prepend=0.0)
        if qps is not None:
            if qps <= 0:
                raise ConfigurationError(
                    f"qps must be > 0, got {qps}")
            mean_gap = float(gaps.mean())
            if mean_gap <= 0:
                raise ConfigurationError(
                    "trace spans zero time; cannot rescale to a "
                    "target qps")
            gaps = gaps * (qps_to_interarrival_us(qps) / mean_gap)
        self._gaps = gaps
        self._cursor = 0

    @classmethod
    def from_file(cls, path: str,
                  qps: Optional[float] = None
                  ) -> "TraceReplayInterarrival":
        """Parse one timestamp (microseconds) per line; ``#``
        comments and blank lines are skipped."""
        timestamps = []
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                text = line.split("#", 1)[0].strip()
                if not text:
                    continue
                try:
                    timestamps.append(float(text))
                except ValueError:
                    raise ConfigurationError(
                        f"{path}:{lineno}: not a timestamp: "
                        f"{text!r}") from None
        if not timestamps:
            raise ConfigurationError(
                f"{path}: no timestamps found")
        return cls(timestamps, qps=qps)

    def __len__(self) -> int:
        return int(self._gaps.size)

    def mean_us(self) -> float:
        return float(self._gaps.mean())

    @property
    def qps(self) -> float:
        """The trace's mean request rate."""
        return 1e6 / self.mean_us()

    def sample_us(self, rng=None) -> float:
        if self._cursor >= self._gaps.size:
            raise ConfigurationError(
                f"arrival trace exhausted after {self._gaps.size} "
                f"arrivals")
        gap = float(self._gaps[self._cursor])
        self._cursor += 1
        return gap

    def sample_train_us(self, rng=None, size: int = 1) -> np.ndarray:
        if size > self._gaps.size:
            raise ConfigurationError(
                f"arrival trace holds {self._gaps.size} arrivals; "
                f"{size} requested")
        return self._gaps[:size].copy()


# ------------------------------------------------------------ ArrivalSpec
ARRIVAL_POISSON = "poisson"
ARRIVAL_DIURNAL = "diurnal"
ARRIVAL_FLASH_CROWD = "flash-crowd"
ARRIVAL_TRACE = "trace"

ARRIVAL_SHAPES = (ARRIVAL_POISSON, ARRIVAL_DIURNAL,
                  ARRIVAL_FLASH_CROWD, ARRIVAL_TRACE)

_ARRIVAL_FIELDS = ("shape", "period_us", "amplitude", "phase_us",
                   "spike_start_us", "spike_duration_us",
                   "spike_factor", "path")


@dataclass(frozen=True)
class ArrivalSpec:
    """The arrival-shape half of a load spec, as frozen data.

    Every field beyond ``shape`` belongs to exactly one shape and
    must be left at its default for the others, so a spec's dict form
    (which omits defaults) is canonical and two specs describing the
    same process always hash identically.

    Attributes:
        shape: one of :data:`ARRIVAL_SHAPES`.
        period_us: diurnal cycle length.
        amplitude: diurnal rate swing, in [0, 1].
        phase_us: diurnal phase offset.
        spike_start_us: flash-crowd onset.
        spike_duration_us: flash-crowd length.
        spike_factor: flash-crowd rate multiplier (>= 1).
        path: trace-replay timestamp file.
    """

    shape: str = ARRIVAL_POISSON
    period_us: float = 0.0
    amplitude: float = 0.0
    phase_us: float = 0.0
    spike_start_us: float = 0.0
    spike_duration_us: float = 0.0
    spike_factor: float = 0.0
    path: str = ""

    def __post_init__(self) -> None:
        shape = str(self.shape)
        if shape not in ARRIVAL_SHAPES:
            import difflib
            close = difflib.get_close_matches(
                shape, list(ARRIVAL_SHAPES), n=1)
            hint = f" -- did you mean {close[0]!r}?" if close else ""
            raise SpecValidationError(
                f"unknown arrival shape {shape!r}; valid shapes: "
                f"{', '.join(ARRIVAL_SHAPES)}{hint}")
        object.__setattr__(self, "shape", shape)
        for name in ("period_us", "amplitude", "phase_us",
                     "spike_start_us", "spike_duration_us",
                     "spike_factor"):
            object.__setattr__(self, name, float(getattr(self, name)))
        object.__setattr__(self, "path", str(self.path))
        self._require(shape == ARRIVAL_DIURNAL,
                      ("period_us", "amplitude", "phase_us"))
        self._require(shape == ARRIVAL_FLASH_CROWD,
                      ("spike_start_us", "spike_duration_us",
                       "spike_factor"))
        self._require(shape == ARRIVAL_TRACE, ("path",))
        if shape == ARRIVAL_DIURNAL:
            if self.period_us <= 0:
                raise SpecValidationError(
                    f"diurnal arrivals need period_us > 0, "
                    f"got {self.period_us}")
            if not 0.0 <= self.amplitude <= 1.0:
                raise SpecValidationError(
                    f"diurnal amplitude must be in [0, 1], "
                    f"got {self.amplitude}")
        elif shape == ARRIVAL_FLASH_CROWD:
            if self.spike_duration_us <= 0:
                raise SpecValidationError(
                    f"flash-crowd arrivals need spike_duration_us "
                    f"> 0, got {self.spike_duration_us}")
            if self.spike_factor < 1.0:
                raise SpecValidationError(
                    f"flash-crowd spike_factor must be >= 1, "
                    f"got {self.spike_factor}")
            if self.spike_start_us < 0:
                raise SpecValidationError(
                    f"spike_start_us must be >= 0, "
                    f"got {self.spike_start_us}")
        elif shape == ARRIVAL_TRACE and not self.path:
            raise SpecValidationError(
                "trace arrivals need a timestamp file path")

    def _require(self, owned: bool, names: tuple) -> None:
        """Fields owned by another shape must stay at their default."""
        if owned:
            return
        for name in names:
            value = getattr(self, name)
            if value not in (0.0, ""):
                raise SpecValidationError(
                    f"arrival field {name!r} only applies to "
                    f"another shape, not {self.shape!r} "
                    f"(got {value!r})")

    # ------------------------------------------------------------------
    @property
    def is_poisson(self) -> bool:
        """True for the default (homogeneous Poisson) shape."""
        return self.shape == ARRIVAL_POISSON

    def make_process(self, qps: float) -> InterarrivalProcess:
        """The runtime process driving *qps* with this shape."""
        if self.shape == ARRIVAL_DIURNAL:
            return DiurnalInterarrival(
                qps, period_us=self.period_us,
                amplitude=self.amplitude, phase_us=self.phase_us)
        if self.shape == ARRIVAL_FLASH_CROWD:
            return FlashCrowdInterarrival(
                qps, spike_start_us=self.spike_start_us,
                spike_duration_us=self.spike_duration_us,
                spike_factor=self.spike_factor)
        if self.shape == ARRIVAL_TRACE:
            return TraceReplayInterarrival.from_file(
                self.path, qps=qps)
        return ExponentialInterarrival(qps)

    def describe(self) -> str:
        """One-line summary for listings and ``repro plan``."""
        if self.shape == ARRIVAL_DIURNAL:
            extra = (f" +{self.phase_us:g}us phase"
                     if self.phase_us else "")
            return (f"diurnal (period {self.period_us:g}us, "
                    f"amplitude {self.amplitude:g}{extra})")
        if self.shape == ARRIVAL_FLASH_CROWD:
            return (f"flash-crowd ({self.spike_factor:g}x at "
                    f"{self.spike_start_us:g}us for "
                    f"{self.spike_duration_us:g}us)")
        if self.shape == ARRIVAL_TRACE:
            return f"trace replay ({self.path})"
        return "poisson"

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form; fields at their default are omitted."""
        data: Dict[str, Any] = {"shape": self.shape}
        for name in _ARRIVAL_FIELDS[1:]:
            value = getattr(self, name)
            if value not in (0.0, ""):
                data[name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrivalSpec":
        """Rebuild (and re-validate) a spec from its dict form."""
        unknown = sorted(set(map(str, data)) - set(_ARRIVAL_FIELDS))
        if unknown:
            raise SpecValidationError(
                f"unknown key(s) {', '.join(map(repr, unknown))} in "
                f"arrival spec; valid keys: "
                f"{', '.join(_ARRIVAL_FIELDS)}")
        return cls(**{name: data[name] for name in _ARRIVAL_FIELDS
                      if name in data})

    def with_fields(self, **changes: Any) -> "ArrivalSpec":
        """Copy with some fields replaced (re-validated)."""
        return replace(self, **changes)


def as_arrival_spec(value: Any) -> Optional[ArrivalSpec]:
    """Coerce to an :class:`ArrivalSpec`, canonicalized.

    ``None`` and the default Poisson spec both mean "the workload's
    stock exponential process" and normalize to ``None``, so a plan
    naming the default explicitly hashes identically to one that
    omits it.
    """
    if value is None:
        return None
    if isinstance(value, str):
        value = ArrivalSpec(shape=value)
    elif isinstance(value, Mapping):
        value = ArrivalSpec.from_dict(value)
    if not isinstance(value, ArrivalSpec):
        raise SpecValidationError(
            f"arrival must be an ArrivalSpec, shape name or dict, "
            f"got {type(value).__name__}")
    return None if value.is_poisson else value


def arrival_process(arrival: Any,
                    qps: float) -> Optional[InterarrivalProcess]:
    """The runtime process for an optional arrival spec.

    The shared helper workload builders use to thread a plan's
    ``arrival`` through to their generator: ``None`` (or the default
    Poisson spec) returns ``None``, which keeps the builder's stock
    exponential process.
    """
    spec = as_arrival_spec(arrival)
    return None if spec is None else spec.make_process(qps)
