"""Inter-arrival time processes for open-loop generators.

The *load intensity* of a workload generator is its inter-arrival
distribution (Section II).  Mutilate and wrk2 default to exponential
inter-arrivals (a Poisson process); deterministic and lognormal
processes are provided for the generator-design ablations.

Arrival schedules are drawn as whole vectors (:meth:`sample_train_us`):
one block draw replaces tens of thousands of scalar generator calls
when an open-loop train is constructed, and numpy block draws are
bit-identical to the equivalent scalar sequence (see
:mod:`repro.sim.sampling`).  :meth:`sample_us` remains as the
single-draw path for closed-loop think-time-style consumers and tests.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol

import numpy as np

from repro.errors import ConfigurationError
from repro.units import qps_to_interarrival_us


class InterarrivalProcess(Protocol):
    """Protocol: sample gaps to upcoming requests, in microseconds."""

    def sample_us(self, rng: Optional[np.random.Generator]) -> float:
        """Sample one inter-arrival gap."""
        ...

    def sample_train_us(self, rng: Optional[np.random.Generator],
                        size: int) -> np.ndarray:
        """Sample *size* consecutive gaps as one vector."""
        ...

    def mean_us(self) -> float:
        """Mean gap (i.e. 1e6 / QPS)."""
        ...


class _RateBased:
    """Shared QPS plumbing for concrete processes."""

    def __init__(self, qps: float) -> None:
        self._mean_us = qps_to_interarrival_us(qps)
        self._qps = float(qps)

    @property
    def qps(self) -> float:
        """The configured request rate."""
        return self._qps

    def mean_us(self) -> float:
        return self._mean_us


class ExponentialInterarrival(_RateBased):
    """Poisson arrivals: exponential gaps with mean ``1e6/qps``."""

    def sample_us(self, rng=None) -> float:
        if rng is None:
            return self._mean_us
        return self._mean_us * float(rng.standard_exponential())

    def sample_train_us(self, rng=None, size: int = 1) -> np.ndarray:
        if rng is None:
            return np.full(size, self._mean_us)
        # scale * standard_exponential(size) is bit-identical to size
        # scalar Generator.exponential(scale) calls.
        return rng.standard_exponential(size) * self._mean_us


class DeterministicInterarrival(_RateBased):
    """Perfectly paced arrivals (a rate limiter with no jitter)."""

    def sample_us(self, rng=None) -> float:
        return self._mean_us

    def sample_train_us(self, rng=None, size: int = 1) -> np.ndarray:
        return np.full(size, self._mean_us)


class LognormalInterarrival(_RateBased):
    """Bursty arrivals: lognormal gaps with configurable sigma."""

    def __init__(self, qps: float, sigma: float = 1.0) -> None:
        super().__init__(qps)
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self._sigma = float(sigma)
        self._mu = math.log(self._mean_us) - 0.5 * self._sigma ** 2

    def sample_us(self, rng=None) -> float:
        if rng is None or self._sigma == 0:
            return self._mean_us
        return float(rng.lognormal(self._mu, self._sigma))

    def sample_train_us(self, rng=None, size: int = 1) -> np.ndarray:
        if rng is None or self._sigma == 0:
            return np.full(size, self._mean_us)
        return np.asarray(rng.lognormal(self._mu, self._sigma, size))
