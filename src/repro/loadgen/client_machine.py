"""The client machine: where the generator's timing happens.

:class:`ClientMachine` binds a generator's event loop to one simulated
core of a machine under a given hardware configuration.  It provides
the two timing-sensitive operations a generator performs:

* :meth:`begin_send` -- wait until the scheduled send time (block-wait
  sleeps and must be woken; busy-wait spins) and then execute the send
  path;
* :meth:`deliver_response` -- handle a reply that just hit the NIC and
  produce the generator's completion timestamp.

All client-caused measurement error of the paper flows through these
two calls: C-state exits, DVFS ramps, context switches, timer slack,
low-frequency execution and client-core queueing.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.config.knobs import FrequencyGovernor, HardwareConfig
from repro.hardware.machine import Machine
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.sim.engine import Simulator

#: Default per-event CPU costs at nominal frequency.
DEFAULT_SEND_WORK_US = 1.0
DEFAULT_RECV_WORK_US = 1.2

#: Menu latency tolerance for cores running network event loops: NIC
#: interrupt pressure and menu's performance multiplier keep such
#: cores out of deep package states (C6) even across long gaps.
CLIENT_CSTATE_LATENCY_TOLERANCE_US = 20.0


def sample_env_scale(config: HardwareConfig,
                     rng: Optional[np.random.Generator],
                     params: SkylakeParameters) -> float:
    """Run-level environment factor for one client machine.

    Untuned (utilization-governed) machines carry more uncontrolled
    state between runs -- governor history, thermal, placement -- so
    their per-run overheads spread wider.
    """
    tuned = config.frequency_governor is FrequencyGovernor.PERFORMANCE
    sigma = params.env_sigma_tuned if tuned else params.env_sigma_untuned
    if rng is None or sigma == 0:
        return 1.0
    return float(rng.lognormal(0.0, sigma))


class ClientMachine:
    """One client machine *thread*: a generator event loop pinned to
    one core.  Real generators (mutilate, wrk2) run several such
    threads per physical machine; builders create one
    :class:`ClientMachine` per thread and share the per-machine
    environment factor."""

    def __init__(self, sim: Simulator, config: HardwareConfig,
                 time_sensitive: bool,
                 rng: Optional[np.random.Generator] = None,
                 params: SkylakeParameters = DEFAULT_PARAMETERS,
                 send_work_us: float = DEFAULT_SEND_WORK_US,
                 recv_work_us: float = DEFAULT_RECV_WORK_US,
                 name: str = "client",
                 overhead_scale: Optional[float] = None) -> None:
        self._sim = sim
        self.name = str(name)
        self.time_sensitive = bool(time_sensitive)
        self.params = params
        self._rng = rng
        if overhead_scale is None:
            overhead_scale = sample_env_scale(config, rng, params)
        self.machine = Machine(
            name, config, params=params, rng=rng)
        self.core = self.machine.new_core(
            polling=not time_sensitive, overhead_scale=overhead_scale,
            cstate_latency_limit_us=CLIENT_CSTATE_LATENCY_TOLERANCE_US)
        self.send_work_us = float(send_work_us)
        self.recv_work_us = float(recv_work_us)
        self.requests_sent = 0
        self.responses_handled = 0

    # ------------------------------------------------------------------
    def begin_send(self, intended_send_us: float,
                   on_sent: Callable[..., None], *ctx: Any) -> None:
        """Arrange for a request intended at *intended_send_us* to go out.

        Args:
            intended_send_us: the send time the inter-arrival schedule
                asked for; must be >= the current simulated time.
            on_sent: called at the actual send instant as
                ``on_sent(*ctx, actual_send_us)``.  Passing context
                positionally keeps the callback a stable bound method
                (no per-request closure), which the accelerated kernel
                relies on for dispatch.
        """
        if self.time_sensitive:
            wake = self.core.timed_sleep_until(
                intended_send_us, self._sim.now)
            self._sim.post_at(wake, self._do_send, True, on_sent, ctx)
        else:
            self._sim.post_at(
                intended_send_us, self._do_send, False, on_sent, ctx)

    def _do_send(self, wakes_thread: bool,
                 on_sent: Callable[..., None],
                 ctx: tuple = ()) -> None:
        finish_us = self.core.handle_event_finish_us(
            self._sim.now, self.send_work_us, wakes_thread=wakes_thread)
        self.requests_sent += 1
        self._sim.post_at(finish_us, on_sent, *ctx, finish_us)

    # ------------------------------------------------------------------
    def deliver_response(self, on_measured: Callable[..., None],
                         *ctx: Any) -> None:
        """Handle a reply that reached the NIC at the current sim time.

        Args:
            on_measured: called as ``on_measured(*ctx, timestamp_us)``
                at the instant the generator's clock read completes --
                i.e. the in-generator point of measurement.
        """
        finish_us = self.core.handle_event_finish_us(
            self._sim.now, self.recv_work_us,
            wakes_thread=self.time_sensitive)
        self.responses_handled += 1
        self._sim.post_at(finish_us, on_measured, *ctx, finish_us)
