"""Mutilate-like workload generator preset (Memcached experiments).

The paper drives Memcached with an extended Mutilate [26]: an
**open-loop, time-sensitive** generator (block-wait event loop that
sleeps until the next send) with the point of measurement inside the
generator, running on **4 client machines** (plus a master that does
not generate load) with 160 connections total, replaying the Facebook
ETC workload.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config.knobs import HardwareConfig
from repro.loadgen.client_machine import ClientMachine, sample_env_scale
from repro.loadgen.interarrival import ExponentialInterarrival
from repro.loadgen.open_loop import OpenLoopGenerator
from repro.net.link import NetworkLink
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.server.request import Request
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

#: Client machines generating load (paper Section IV-B).
MUTILATE_CLIENT_MACHINES = 4
#: Generator threads per client machine (mutilate -T); connections are
#: partitioned across threads, so per-thread event rates stay modest
#: even at 500K aggregate QPS -- which is why the LP client's C-state
#: and DVFS wake path stays on the measurement path at every load.
MUTILATE_THREADS_PER_MACHINE = 8
#: Total connections across all machines (documentation only; the
#: open-loop schedule is rate-driven, not connection-driven).
MUTILATE_CONNECTIONS = 160

#: Per-event CPU cost of mutilate's epoll loop at nominal frequency.
MUTILATE_SEND_WORK_US = 1.0
MUTILATE_RECV_WORK_US = 1.4


def build_mutilate(sim: Simulator, streams: RandomStreams,
                   client_config: HardwareConfig, service, qps: float,
                   num_requests: int,
                   request_factory: Optional[Callable[[int], Request]] = None,
                   warmup_fraction: float = 0.1,
                   params: SkylakeParameters = DEFAULT_PARAMETERS,
                   interarrival=None,
                   ) -> OpenLoopGenerator:
    """Assemble the Mutilate-style testbed client side.

    Args:
        sim: the run's simulator.
        streams: the run's random streams.
        client_config: hardware configuration of the client machines
            (LP or HP).
        service: the service under test (station or tiered service).
        qps: aggregate offered load in queries per second.
        num_requests: requests in this run.
        request_factory: per-request construction hook (sizes etc.).
        warmup_fraction: leading fraction of samples to discard.
        params: machine timing constants.
        interarrival: optional arrival process overriding the stock
            Poisson (exponential) process at *qps*.

    Returns:
        A started-but-not-run :class:`OpenLoopGenerator`.
    """
    machines = []
    for machine_index in range(MUTILATE_CLIENT_MACHINES):
        env = sample_env_scale(
            client_config, streams.get(f"client-env-{machine_index}"),
            params)
        for thread_index in range(MUTILATE_THREADS_PER_MACHINE):
            machines.append(ClientMachine(
                sim, client_config, time_sensitive=True,
                rng=streams.get(
                    f"client-{machine_index}-{thread_index}"),
                params=params,
                send_work_us=MUTILATE_SEND_WORK_US,
                recv_work_us=MUTILATE_RECV_WORK_US,
                name=f"mutilate-{machine_index}.{thread_index}",
                overhead_scale=env))
    link_rng = streams.stream("network")
    return OpenLoopGenerator(
        sim, machines, service,
        link_to_server=NetworkLink(params, link_rng),
        link_to_client=NetworkLink(params, link_rng),
        interarrival=(interarrival if interarrival is not None
                      else ExponentialInterarrival(qps)),
        arrival_rng=streams.stream("arrivals"),
        time_sensitive=True,
        num_requests=num_requests,
        warmup_fraction=warmup_fraction,
        request_factory=request_factory,
    )
