"""Closed-loop generator: a finite set of blocking clients.

A closed-loop generator models *connections* that each keep at most one
request outstanding [24]: the next request on a connection is sent a
think-time after the previous response was *observed by the generator*.
Client-side timing error therefore compounds -- a delayed measurement
delays the next send -- which is why the paper singles closed loops out
as doubly sensitive to timing inaccuracy.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.loadgen.base import GeneratorDesign, LoadGenerator
from repro.loadgen.client_machine import ClientMachine
from repro.loadgen.measurement import PointOfMeasurement
from repro.net.link import NetworkLink
from repro.server.request import Request
from repro.sim.engine import Simulator


class ClosedLoopGenerator(LoadGenerator):
    """*connections* blocking clients, round-robin over machines."""

    def __init__(self, sim: Simulator, machines: Sequence[ClientMachine],
                 service, link_to_server: NetworkLink,
                 link_to_client: NetworkLink,
                 connections: int,
                 think_time_us: float,
                 think_rng: Optional[np.random.Generator],
                 time_sensitive: bool,
                 num_requests: int,
                 warmup_fraction: float = 0.1,
                 request_factory: Optional[Callable[[int], Request]] = None,
                 point_of_measurement: PointOfMeasurement
                 = PointOfMeasurement.GENERATOR) -> None:
        if connections <= 0:
            raise ConfigurationError(
                f"connections must be positive, got {connections}"
            )
        if think_time_us < 0:
            raise ConfigurationError(
                f"think_time_us must be >= 0, got {think_time_us}"
            )
        design = GeneratorDesign(
            loop="closed",
            time_sensitive=time_sensitive,
            point_of_measurement=point_of_measurement,
        )
        super().__init__(
            sim, machines, service, link_to_server, link_to_client,
            design, num_requests, warmup_fraction, request_factory)
        self.connections = int(connections)
        self.think_time_us = float(think_time_us)
        self._think_rng = think_rng
        self._next_index = 0

    # ------------------------------------------------------------------
    def _sample_think_us(self) -> float:
        if self.think_time_us == 0.0:
            return 0.0
        if self._think_rng is None:
            return self.think_time_us
        # mean * std_exp == Generator.exponential(mean) bit-for-bit;
        # a BatchedStream think_rng serves this from a block draw.
        return self.think_time_us * float(
            self._think_rng.standard_exponential())

    def _issue_next(self, machine: ClientMachine, at_us: float) -> None:
        if self._next_index >= self.num_requests:
            return
        index = self._next_index
        self._next_index += 1
        request = self._request_factory(index)
        request.intended_send_us = at_us
        self._sim.post_at(at_us, self._launch, machine, request)

    def start(self) -> None:
        """Arm one in-flight request per connection."""
        now = self._sim.now
        for connection in range(min(self.connections, self.num_requests)):
            machine = self.machines[connection % len(self.machines)]
            # Stagger connection starts by one think time to avoid a
            # synchronized burst at t=0.
            offset = self._sample_think_us()
            self._issue_next(machine, now + offset)

    def _after_completion(self, machine: ClientMachine,
                          request: Request) -> None:
        think = self._sample_think_us()
        self._issue_next(machine, request.measured_complete_us + think)
