"""wrk2-like workload generator preset (Social Network experiments).

DeathStarBench ships an extended wrk2: an **open-loop, time-sensitive**
HTTP generator (block-wait event loop) measuring inside the generator.
The paper configures it with 20 connections on one client machine,
exponential inter-arrivals, and read-user-timeline requests only.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config.knobs import HardwareConfig
from repro.loadgen.client_machine import ClientMachine, sample_env_scale
from repro.loadgen.interarrival import ExponentialInterarrival
from repro.loadgen.open_loop import OpenLoopGenerator
from repro.net.link import NetworkLink
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.server.request import Request
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

#: Connections wrk2 keeps open (documentation; load is rate-driven).
WRK2_CONNECTIONS = 20
#: wrk2's default worker-thread count.
WRK2_THREADS = 2

#: Per-event CPU cost: HTTP request formatting / response parsing.
WRK2_SEND_WORK_US = 6.0
WRK2_RECV_WORK_US = 9.0


def build_wrk2(sim: Simulator, streams: RandomStreams,
               client_config: HardwareConfig, service, qps: float,
               num_requests: int,
               request_factory: Optional[Callable[[int], Request]] = None,
               warmup_fraction: float = 0.1,
               params: SkylakeParameters = DEFAULT_PARAMETERS,
               interarrival=None,
               ) -> OpenLoopGenerator:
    """Assemble the wrk2-style client (one machine, 20 connections)."""
    env = sample_env_scale(
        client_config, streams.get("client-env"), params)
    machines = [
        ClientMachine(
            sim, client_config, time_sensitive=True,
            rng=streams.get(f"client-{thread}"),
            params=params,
            send_work_us=WRK2_SEND_WORK_US,
            recv_work_us=WRK2_RECV_WORK_US,
            name=f"wrk2-client.{thread}",
            overhead_scale=env)
        for thread in range(WRK2_THREADS)
    ]
    link_rng = streams.stream("network")
    return OpenLoopGenerator(
        sim, machines, service,
        link_to_server=NetworkLink(params, link_rng),
        link_to_client=NetworkLink(params, link_rng),
        interarrival=(interarrival if interarrival is not None
                      else ExponentialInterarrival(qps)),
        arrival_rng=streams.stream("arrivals"),
        time_sensitive=True,
        num_requests=num_requests,
        warmup_fraction=warmup_fraction,
        request_factory=request_factory,
    )
