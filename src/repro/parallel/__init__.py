"""Multi-core scale-out: sharded single-run execution.

``RunPolicy(workers=W)`` (or ``PlanBuilder.policy(workers=W)``, or
``repro run --workers W``) decomposes each repetition into W striped
shards -- full service replicas at ``qps / W`` -- runs them across
worker processes, and merges their telemetry through the
mergeable-sink protocol: exact concatenation for the default columnar
sink, Chan moment combine + P\N{SUPERSCRIPT TWO} mixture replay for
the streaming sink.

See :mod:`repro.parallel.shard` for the decomposition semantics,
:mod:`repro.parallel.runner` for the placement-independence
(bit-identity) contract, and :mod:`repro.parallel.merge` for the
merge rules.
"""

from repro.parallel.merge import (
    MergedStreamingSamples,
    merge_columnar_payloads,
    merged_run_metrics,
)
from repro.parallel.runner import run_shard, run_sharded
from repro.parallel.shard import ShardSpec, shard_layout

__all__ = [
    "MergedStreamingSamples",
    "ShardSpec",
    "merge_columnar_payloads",
    "merged_run_metrics",
    "run_shard",
    "run_sharded",
    "shard_layout",
]
