"""Merging per-shard telemetry back into one run's summary.

The mergeable-sink protocol has two halves, matching the two
registered sinks:

* **columnar** (exact): each shard ships its raw warmup-included
  :class:`~repro.telemetry.SampleColumns` arrays; the merge
  concatenates them in shard order and wraps the result in a normal
  :class:`~repro.loadgen.measurement.RunSamples`, whose stable
  send-order sort and global warmup trim then apply exactly as if one
  process had recorded every row.  Merging is plain array
  concatenation, so parallel execution is **bit-identical** to running
  the same shards sequentially.
* **streaming** (documented tolerance): each shard ships its sink's
  :meth:`~repro.obs.sinks.StreamingSink.export_state` payload; moments
  Chan-combine exactly (up to float summation order) and P\N{SUPERSCRIPT TWO}
  quantile markers merge by count-weighted mixture-CDF replay
  (:func:`~repro.obs.sinks.merge_marker_states`), within the
  tolerances pinned in ``tests/test_parallel_merge.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.testbed import RunMetrics
from repro.loadgen.measurement import PointOfMeasurement, RunSamples
from repro.obs.sinks import (
    Window,
    _RunningMoments,
    merge_marker_states,
)
from repro.telemetry import SampleColumns
from repro.telemetry.columns import COLUMN_FIELDS

#: A shard's result payload (see :func:`repro.parallel.runner.run_shard`).
ShardPayload = Dict[str, Any]


def merge_columnar_payloads(payloads: Sequence[ShardPayload]
                            ) -> RunSamples:
    """Concatenate shards' raw columns into one run's samples.

    Payloads must arrive in shard order; concatenation order is part
    of the bit-identity contract (the merged buffer's stable sort
    breaks intended-send-time ties by position).
    """
    if not payloads:
        raise ValueError("no shard payloads to merge")
    arrays = {
        name: np.concatenate(
            [np.asarray(p["columns"][name], dtype=np.float64)
             for p in payloads])
        for name in COLUMN_FIELDS
    }
    columns = SampleColumns.from_arrays(arrays)
    return RunSamples.from_columns(
        columns, warmup_fraction=float(payloads[0]["warmup_fraction"]))


class MergedStreamingSamples:
    """The :class:`~repro.obs.sinks.Sink` accessor surface over merged
    per-shard streaming states.

    Shard sinks are built with the run's *global* request count, so
    their id-based warmup trims union exactly to the global trim;
    counters therefore add, moments Chan-combine, and quantiles replay
    as a count-weighted marker mixture.
    """

    def __init__(self, states: Sequence[Dict[str, Any]]) -> None:
        if not states:
            raise ValueError("no shard states to merge")
        self._states = [dict(state) for state in states]
        first = self._states[0]
        self.warmup_fraction = float(first["warmup_fraction"])
        self._kernel_stack_us = float(first["kernel_stack_us"])
        self._tracked = tuple(
            float(q) for q in first["tracked_quantiles"])
        self._recorded = sum(int(s["recorded"]) for s in self._states)
        self._warmup_skipped = sum(
            int(s["warmup_skipped"]) for s in self._states)
        self._moments: Dict[str, _RunningMoments] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._recorded

    @property
    def warmup_count(self) -> int:
        """Completed requests discarded as warmup, over all shards."""
        return self._warmup_skipped

    @property
    def measured_count(self) -> int:
        """Completed requests after warmup trimming, over all shards."""
        return self._recorded - self._warmup_skipped

    @property
    def quantiles(self) -> Tuple[float, ...]:
        """The percentiles the shard sinks tracked."""
        return tuple(sorted(self._tracked))

    @property
    def windows(self) -> List[Window]:
        """All shards' windowed time series, merged by window start."""
        merged = [tuple(window)  # type: ignore[misc]
                  for state in self._states
                  for window in state["windows"]]
        merged.sort(key=lambda window: window[0])
        return merged  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _resolve(self, point: PointOfMeasurement
                 ) -> Tuple[str, float]:
        """The backing channel name and additive offset for *point*
        (the kernel point is the NIC point plus one RX traversal)."""
        if point is PointOfMeasurement.KERNEL:
            return PointOfMeasurement.NIC.value, self._kernel_stack_us
        return point.value, 0.0

    def _moments_for(self, channel: str) -> _RunningMoments:
        moments = self._moments.get(channel)
        if moments is None:
            moments = _RunningMoments.from_states(
                [state["channels"][channel]["moments"]
                 for state in self._states])
            self._moments[channel] = moments
        return moments

    def average_latency_us(self, point: PointOfMeasurement
                           = PointOfMeasurement.GENERATOR) -> float:
        """Chan-combined mean latency at *point* (exact up to float
        summation order)."""
        channel, offset = self._resolve(point)
        moments = self._moments_for(channel)
        if moments.count == 0:
            raise ValueError("no measured samples in any shard")
        return moments.mean + offset

    def percentile_latency_us(self, percentile: float = 99.0,
                              point: PointOfMeasurement
                              = PointOfMeasurement.GENERATOR) -> float:
        """Mixture-replayed tail latency at *point*.

        Raises:
            ValueError: when *percentile* was not tracked by the shard
                sinks (same contract as the unmerged streaming sink).
        """
        pct = float(percentile)
        if pct not in self._tracked:
            tracked = ", ".join(f"{q:g}" for q in self.quantiles)
            raise ValueError(
                f"percentile {pct:g} is not tracked by the merged "
                f"streaming states (tracked: {tracked})")
        channel, offset = self._resolve(point)
        marker_states = [
            state["channels"][channel]["quantiles"][f"{pct:g}"]
            for state in self._states]
        return merge_marker_states(marker_states, pct / 100.0) + offset

    def variance_us2(self, point: PointOfMeasurement
                     = PointOfMeasurement.GENERATOR) -> float:
        """Chan-combined population variance at *point*."""
        channel, _ = self._resolve(point)
        return self._moments_for(channel).variance()

    def min_latency_us(self, point: PointOfMeasurement
                       = PointOfMeasurement.GENERATOR) -> float:
        channel, offset = self._resolve(point)
        return self._moments_for(channel).min + offset

    def max_latency_us(self, point: PointOfMeasurement
                       = PointOfMeasurement.GENERATOR) -> float:
        channel, offset = self._resolve(point)
        return self._moments_for(channel).max + offset


def _merged_obs_metrics(payloads: Sequence[ShardPayload]
                        ) -> Tuple[Tuple[str, float], ...]:
    """Name-wise sums of shard observability counters, preserving
    first-seen order.  Counters (completions, cache hits, retries) add
    across replicas; that summed-counter semantic is the documented
    meaning of a sharded run's ``obs_metrics``."""
    totals: Dict[str, float] = {}
    for payload in payloads:
        for name, value in payload.get("obs_metrics", ()):
            totals[str(name)] = totals.get(str(name), 0.0) + float(value)
    return tuple(totals.items())


def merged_run_metrics(payloads: Sequence[ShardPayload],
                       seed: int) -> RunMetrics:
    """Fold one repetition's shard payloads into its
    :class:`~repro.core.testbed.RunMetrics` sample.

    Latency statistics come from the merged samples (exact columnar
    concat or streaming state merge, by payload kind); utilizations
    average across the shard replicas; observability counters sum.
    """
    if not payloads:
        raise ValueError("no shard payloads to merge")
    kinds = {str(p["kind"]) for p in payloads}
    if len(kinds) != 1:
        raise ValueError(
            f"shard payloads disagree on sink kind: {sorted(kinds)}")
    kind = kinds.pop()
    samples: Any
    if kind == "columnar":
        samples = merge_columnar_payloads(payloads)
    elif kind == "streaming":
        samples = MergedStreamingSamples(
            [p["state"] for p in payloads])
    else:
        raise ValueError(f"unknown shard payload kind {kind!r}")
    utilization = float(np.mean(
        [float(p["server_utilization"]) for p in payloads]))
    per_shard_nodes = [tuple(p.get("node_utilizations") or ())
                       for p in payloads]
    if any(per_shard_nodes):
        node_utilizations = tuple(
            float(v) for v in np.mean(
                [nodes for nodes in per_shard_nodes if nodes], axis=0))
    else:
        node_utilizations = ()
    return RunMetrics(
        avg_us=samples.average_latency_us(PointOfMeasurement.GENERATOR),
        p99_us=samples.percentile_latency_us(
            99.0, PointOfMeasurement.GENERATOR),
        true_avg_us=samples.average_latency_us(PointOfMeasurement.NIC),
        true_p99_us=samples.percentile_latency_us(
            99.0, PointOfMeasurement.NIC),
        requests=samples.measured_count,
        seed=int(seed),
        server_utilization=utilization,
        node_utilizations=node_utilizations,
        obs_metrics=_merged_obs_metrics(payloads),
    )
