"""Sharded execution: one plan's repetitions across worker processes.

:func:`run_sharded` executes a plan whose policy asks for
``workers=W`` by decomposing every repetition into the W striped
shards of :func:`~repro.parallel.shard.shard_layout`, running each
shard as an ordinary single-process testbed, and folding the shard
payloads back into one :class:`~repro.core.testbed.RunMetrics` per
repetition via :mod:`repro.parallel.merge`.

The pinned equivalence contract: the *decomposition* is semantic
(part of the plan, hash-relevant), the *placement* is not -- running
with ``processes=P`` for any P >= 1 yields bit-identical merged
columns, because each shard testbed is deterministic in
``(plan, seed, shard)`` alone:

* its random streams live under the shard's
  :func:`~repro.sim.random.stream_namespace` prefix, independent of
  every other shard and of which process hosts it;
* its request ids are restriped to the shard's global stripe by
  wrapping the generator's request factory, so merged telemetry is
  indistinguishable from one global id space.

``processes=1`` is therefore the serial reference the parallel path
is validated against (``tests/test_parallel.py``,
``benchmarks/bench_parallel.py``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.experiment import ExperimentResult
from repro.errors import ExperimentError
from repro.obs.sinks import SINK_STREAMING, StreamingSink
from repro.parallel.merge import merged_run_metrics
from repro.parallel.shard import ShardSpec, shard_layout
from repro.server.request import Request
from repro.sim.random import stream_namespace
from repro.telemetry.columns import COLUMN_FIELDS

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.api.specs import ExperimentPlan


def run_shard(plan: "ExperimentPlan", seed: int,
              shard: ShardSpec) -> Dict[str, Any]:
    """Run one shard of one repetition; return its merge payload.

    The shard testbed is the plan's own builder compiled at
    ``qps / workers`` offered load over the shard's request count,
    with two post-build adjustments that no workload builder needs to
    know about:

    * the generator's request factory is wrapped to restripe local
      ids ``0..count`` onto the shard's global stripe (factories are
      read at send time, never captured by the kernel, so the swap is
      effective for both loop disciplines and both engines);
    * a streaming-sink policy gets its sink rebuilt with the run's
      **global** request count, so the id-based warmup trims of the W
      shards union exactly to the unsharded trim set.
    """
    shard_plan = plan.with_policy(workers=1).with_load(
        qps=plan.load.qps / shard.workers,
        num_requests=shard.count)
    with stream_namespace(shard.stream_prefix):
        testbed = shard_plan.builder()(int(seed))
    generator = testbed.generator
    base_factory = generator._request_factory

    def striped_factory(local_index: int,
                        _base: Callable[[int], Request] = base_factory,
                        _shard: ShardSpec = shard) -> Request:
        request = _base(local_index)
        request.request_id = _shard.global_id(local_index)
        return request

    generator._request_factory = striped_factory
    if plan.policy.sink == SINK_STREAMING:
        generator.samples = StreamingSink(
            plan.load.num_requests,
            warmup_fraction=generator.samples.warmup_fraction)
    metrics = testbed.run()
    samples = testbed.generator.samples
    payload: Dict[str, Any] = {
        "shard": shard.index,
        "events": int(getattr(testbed.sim, "events_processed", 0)),
        "server_utilization": metrics.server_utilization,
        "node_utilizations": list(metrics.node_utilizations),
        "obs_metrics": [[name, value]
                        for name, value in metrics.obs_metrics],
    }
    if isinstance(samples, StreamingSink):
        payload["kind"] = "streaming"
        payload["state"] = samples.export_state()
    else:
        payload["kind"] = "columnar"
        payload["warmup_fraction"] = samples.warmup_fraction
        payload["columns"] = {
            name: np.array(samples.columns.column(name))
            for name in COLUMN_FIELDS}
    return payload


def _execute_shard(task: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: rebuild the plan and run one shard.

    Top-level (picklable) and fed plain dicts, so it crosses the
    process boundary under any start method.
    """
    from repro.api.specs import ExperimentPlan

    plan = ExperimentPlan.from_dict(task["plan"])
    shard = ShardSpec(index=int(task["shard"]["index"]),
                      workers=int(task["shard"]["workers"]),
                      total_requests=int(
                          task["shard"]["total_requests"]))
    return run_shard(plan, int(task["seed"]), shard)


def run_sharded(plan: "ExperimentPlan",
                processes: Optional[int] = None) -> ExperimentResult:
    """Execute *plan*'s repetition protocol with sharded runs.

    Args:
        plan: the plan to run; ``plan.policy.workers`` fixes the
            decomposition width W.
        processes: worker processes to spread shards over.  Default:
            ``min(W, cpu_count)``.  ``1`` runs every shard inline in
            this process -- the serial placement the parallel one is
            bit-identical to.

    Returns:
        An :class:`~repro.core.experiment.ExperimentResult` with one
        merged :class:`~repro.core.testbed.RunMetrics` per repetition
        and ``metadata={"workers": W}``.
    """
    workers = int(plan.policy.workers)
    if workers <= 1:
        return plan.experiment().run()
    layout = shard_layout(plan.load.num_requests, workers)
    seeds = plan.policy.seed_schedule()
    plan_dict = plan.to_dict()
    tasks = [
        {"plan": plan_dict, "seed": int(seed),
         "shard": {"index": shard.index, "workers": shard.workers,
                   "total_requests": shard.total_requests}}
        for seed in seeds for shard in layout]
    if processes is None:
        processes = min(workers, os.cpu_count() or 1)
    processes = int(processes)
    if processes < 1:
        raise ExperimentError(
            f"processes must be >= 1, got {processes}")
    if processes == 1:
        payloads = [_execute_shard(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            payloads = list(pool.map(_execute_shard, tasks))
    metrics: List[Any] = [
        merged_run_metrics(
            payloads[index * workers:(index + 1) * workers],
            seed=int(seed))
        for index, seed in enumerate(seeds)]
    return ExperimentResult(
        label=plan.label,
        workload=plan.workload.name,
        qps=plan.load.qps,
        runs=metrics,
        metadata={"workers": float(workers)},
    )
