"""Deterministic shard layout for multi-core single-run execution.

``workers=W`` decomposes one run's request population into W
*shards* by striping the global request-id space: shard *k* owns ids
``k, k+W, k+2W, ...``.  Each shard runs a **full replica** of the
plan's service topology at ``qps / W`` offered load -- by Poisson
thinning, statistically equivalent to a W-node cluster of replicas
behind a random-assignment load balancer.  Sharding therefore changes
the modeled system (it is part of the plan's content hash when
``workers != 1``); what it must never change is *placement*: running
the W shards across W processes is bit-identical to running the same
W shards sequentially in one process, which is the equivalence
contract :mod:`repro.parallel.runner` pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ExperimentError

#: Stream-namespace prefix stem for shard testbeds (see
#: :func:`repro.sim.random.stream_namespace`).
SHARD_STREAM_STEM = "pshard"


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a striped request-id decomposition.

    Attributes:
        index: shard number in ``[0, workers)``.
        workers: total shards in the decomposition.
        total_requests: the undecomposed run's request count.
    """

    index: int
    workers: int
    total_requests: int

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ExperimentError(
                f"workers must be >= 1, got {self.workers}")
        if not 0 <= self.index < self.workers:
            raise ExperimentError(
                f"shard index must be in [0, {self.workers}), "
                f"got {self.index}")
        if self.total_requests < self.workers:
            raise ExperimentError(
                f"cannot shard {self.total_requests} requests across "
                f"{self.workers} workers; every shard needs at least "
                f"one request")

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Requests this shard owns."""
        return len(range(self.index, self.total_requests, self.workers))

    @property
    def stream_prefix(self) -> str:
        """The shard's stream-namespace prefix, e.g. ``"pshard2/"``."""
        return f"{SHARD_STREAM_STEM}{self.index}/"

    def global_id(self, local_index: int) -> int:
        """The global request id of the shard's *local_index*-th
        request (the striping map)."""
        return self.index + local_index * self.workers

    def global_ids(self) -> np.ndarray:
        """All global request ids this shard owns, in local order."""
        return np.arange(self.index, self.total_requests, self.workers)


def shard_layout(total_requests: int, workers: int
                 ) -> Tuple[ShardSpec, ...]:
    """The full decomposition of *total_requests* over *workers*.

    Raises:
        ExperimentError: when the population cannot give every shard
            at least one request, or *workers* < 1.
    """
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    return tuple(
        ShardSpec(index=k, workers=workers,
                  total_requests=int(total_requests))
        for k in range(workers))
