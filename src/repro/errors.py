"""Exception hierarchy for the ``repro`` library.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent hardware/software configuration."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class HostToolingError(ReproError):
    """A host-tuning operation (sysfs/MSR/grub) failed."""


class MsrError(HostToolingError):
    """A model-specific-register read or write failed."""


class SysfsError(HostToolingError):
    """A sysfs read or write failed."""


class StatisticsError(ReproError):
    """A statistical routine received unusable input."""


class InsufficientSamplesError(StatisticsError):
    """Too few samples to compute the requested statistic."""

    def __init__(self, needed: int, got: int, what: str = "statistic"):
        self.needed = int(needed)
        self.got = int(got)
        self.what = what
        super().__init__(
            f"{what} requires at least {needed} samples, got {got}"
        )


class ExperimentError(ReproError):
    """An experiment specification or run failed."""


class SpecValidationError(ExperimentError):
    """An experiment/campaign spec failed validation at construction.

    Raised by the :mod:`repro.api` spec layer and the workload
    registry's parameter schemas: unknown workload names (with a
    did-you-mean suggestion), unknown or ill-typed workload
    parameters, and impossible load/policy values.  Always names the
    offending field so a spec file can be fixed without reading
    source.
    """
