"""Cluster testbed assembly: one workload, many servers.

Turns a workload's single-server building blocks into a
load-balanced, optionally sharded cluster deployment behind the same
:class:`~repro.core.testbed.Testbed` interface, so everything above
(experiments, campaigns, figure studies, the CLI) runs cluster
topologies unchanged.

Every workload contributes a :class:`ClusterAdapter` -- its
server-group service factory, its load-generator builder and its
request factory -- and the assembly here composes them by
:class:`~repro.cluster.spec.ClusterSpec`:

* ``nodes`` replicated groups behind a
  :class:`~repro.cluster.balancer.LoadBalancer` (one LB policy draw
  per request, through the batched stream facade);
* ``shards`` shard stations per group wired into a
  :class:`~repro.cluster.fanout.FanoutService` with per-shard links;
* ``replication`` replicas per shard behind a nested per-shard
  balancer.

Random streams are namespaced per node/shard/replica
(``node<i>/shard<j>/rep<k>/...``), so every station draws an
independent, seed-derived stream and cluster runs stay bit-exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.balancer import LoadBalancer
from repro.cluster.fanout import FanoutService
from repro.cluster.spec import ClusterSpec
from repro.config.knobs import HardwareConfig
from repro.config.presets import SERVER_BASELINE
from repro.core.testbed import Testbed
from repro.errors import ExperimentError
from repro.net.link import NetworkLink
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.sim.engine import Simulator
from repro.sim.kernel import make_simulator
from repro.sim.random import RandomStreams
from repro.workloads.common import server_env_scale
from repro.workloads.hdsearch import (
    _hdsearch_request_factory,
    _hdsearch_service,
)
from repro.workloads.memcached import (
    _memcached_request_factory,
    _memcached_service,
)
from repro.loadgen.hdsearch_client import build_hdsearch_client
from repro.loadgen.mutilate import build_mutilate
from repro.loadgen.wrk2 import build_wrk2
from repro.workloads.registry import workload_by_name
from repro.workloads.socialnetwork import (
    _socialnetwork_request_factory,
    _socialnetwork_service,
)
from repro.workloads.synthetic import (
    _synthetic_request_factory,
    _synthetic_service,
)


@dataclass(frozen=True)
class ClusterAdapter:
    """How one workload's pieces assemble into a cluster.

    Attributes:
        workload: registered workload name.
        make_service: ``(sim, streams, server_config, params,
            env_scale=..., name=..., stream_prefix=..., **params) ->
            service`` -- builds one server group (station or tiered
            service).
        make_generator: the workload's load-generator builder
            (``build_mutilate``-shaped).
        make_request_factory: ``(streams) -> (index -> Request)``.
    """

    workload: str
    make_service: Callable[..., Any]
    make_generator: Callable[..., Any]
    make_request_factory: Callable[[RandomStreams], Callable[[int], Any]]


_ADAPTERS: Dict[str, ClusterAdapter] = {}


def register_cluster_adapter(adapter: ClusterAdapter,
                             replace: bool = False) -> None:
    """Register *adapter* under its workload name."""
    key = str(adapter.workload)
    if not replace and key in _ADAPTERS:
        raise ExperimentError(
            f"cluster adapter for {key!r} is already registered; "
            f"pass replace=True to override")
    _ADAPTERS[key] = adapter


def cluster_adapter(workload: str) -> ClusterAdapter:
    """Resolve a workload name to its cluster adapter.

    Raises:
        ExperimentError: when the workload has no adapter (it cannot
            be deployed as a cluster yet).
    """
    try:
        return _ADAPTERS[str(workload)]
    except KeyError:
        raise ExperimentError(
            f"workload {workload!r} has no cluster adapter; "
            f"clustered workloads: {', '.join(sorted(_ADAPTERS))}"
        ) from None


def clustered_workloads() -> tuple:
    """Sorted names of the workloads that can deploy as clusters."""
    return tuple(sorted(_ADAPTERS))


# ------------------------------------------------------------------ assembly
def _build_group(adapter: ClusterAdapter, sim: Simulator,
                 streams: RandomStreams, server_config: HardwareConfig,
                 params: SkylakeParameters, cluster: ClusterSpec,
                 node: int, stream_prefix: str = "",
                 label: Optional[str] = None,
                 **workload_params: Any) -> Any:
    """One server group: a bare service, or a sharded fanout tree."""
    if label is None:
        label = adapter.workload
    prefix = f"{stream_prefix}node{node}/"
    env = server_env_scale(streams, params,
                           stream=prefix + "server-env")
    if cluster.shards == 1 and cluster.replication == 1:
        return adapter.make_service(
            sim, streams, server_config, params,
            env_scale=env,
            name=f"{label}[n{node}]",
            stream_prefix=prefix,
            **workload_params)
    if cluster.shards == 1:
        # Replication without sharding: the group is just a replica
        # balancer -- no fan-out lifecycle, no shard links, none of
        # the per-request sub-Request machinery.
        replicas = [
            adapter.make_service(
                sim, streams, server_config, params,
                env_scale=env,
                name=f"{label}[n{node}.s0.r{replica}]",
                stream_prefix=f"{prefix}shard0/rep{replica}/",
                **workload_params)
            for replica in range(cluster.replication)
        ]
        return LoadBalancer(
            sim, replicas, policy=cluster.lb_policy,
            rng=streams.stream(f"{prefix}shard0/lb"),
            name=f"{label}-lb[n{node}.s0]")
    shard_backends: List[Any] = []
    links: List[Optional[NetworkLink]] = []
    for shard in range(cluster.shards):
        shard_prefix = f"{prefix}shard{shard}/"
        replicas = [
            adapter.make_service(
                sim, streams, server_config, params,
                env_scale=env,
                name=f"{label}[n{node}.s{shard}.r{replica}]",
                stream_prefix=(shard_prefix if cluster.replication == 1
                               else f"{shard_prefix}rep{replica}/"),
                **workload_params)
            for replica in range(cluster.replication)
        ]
        if cluster.replication == 1:
            shard_backends.append(replicas[0])
        else:
            shard_backends.append(LoadBalancer(
                sim, replicas, policy=cluster.lb_policy,
                rng=streams.stream(shard_prefix + "lb"),
                name=f"{label}-lb[n{node}.s{shard}]"))
        links.append(NetworkLink(
            params, streams.stream(f"{prefix}shard-net-{shard}")))
    return FanoutService(
        sim, shard_backends, links,
        fanout=cluster.effective_fanout,
        quorum=cluster.effective_quorum,
        rng=streams.stream(prefix + "fanout"),
        name=f"{label}-fanout[n{node}]")


def build_cluster_service(adapter: ClusterAdapter, sim: Simulator,
                          streams: RandomStreams,
                          server_config: HardwareConfig,
                          params: SkylakeParameters,
                          cluster: ClusterSpec, *,
                          stream_prefix: str = "",
                          label: Optional[str] = None,
                          **workload_params: Any) -> Any:
    """Assemble just the service side of a cluster topology.

    The service-graph builder uses this to give each graph tier its
    own station or cluster shape: a single-server shape is the
    workload's bare service, anything larger is the same group /
    balancer tree ``build_cluster_testbed`` deploys.  With the default
    ``stream_prefix`` and ``label`` this is draw-for-draw and
    name-for-name identical to the assembly inside
    ``build_cluster_testbed``.
    """
    if label is None:
        label = adapter.workload
    if cluster.is_single_server:
        prefix = f"{stream_prefix}node0/"
        env = server_env_scale(streams, params,
                               stream=prefix + "server-env")
        return adapter.make_service(
            sim, streams, server_config, params,
            env_scale=env,
            name=f"{label}[n0]",
            stream_prefix=prefix,
            **workload_params)
    groups = [
        _build_group(adapter, sim, streams, server_config, params,
                     cluster, node, stream_prefix=stream_prefix,
                     label=label, **workload_params)
        for node in range(cluster.nodes)
    ]
    if cluster.nodes == 1:
        return groups[0]
    return LoadBalancer(
        sim, groups, policy=cluster.lb_policy,
        rng=streams.stream(stream_prefix + "cluster-lb"),
        name=f"{label}-cluster-lb")


def build_cluster_testbed(
        workload: str,
        seed: int,
        client_config: HardwareConfig,
        server_config: HardwareConfig = SERVER_BASELINE,
        qps: float = 1_000.0,
        num_requests: int = 1_000,
        cluster: ClusterSpec = ClusterSpec(),
        warmup_fraction: float = 0.1,
        params: SkylakeParameters = DEFAULT_PARAMETERS,
        obs: Any = None,
        engine: Any = None,
        arrival: Any = None,
        **workload_params: Any) -> Testbed:
    """Assemble one single-use cluster testbed for *workload*.

    The default (single-server) cluster spec delegates to the
    workload's registered builder, so the two paths are one path --
    and stay bit-identical by construction.

    Args:
        workload: registered workload name (must have a cluster
            adapter).
        seed: root seed; every node/shard stream derives from it.
        client_config: client hardware configuration.
        server_config: hardware configuration of every server node.
        qps: aggregate offered load across the cluster.
        num_requests: requests per run.
        cluster: the topology to deploy.
        warmup_fraction: leading samples to discard.
        params: machine timing constants.
        obs: optional :class:`~repro.obs.Observability` context,
            installed on the simulator before any component builds.
        engine: event-loop engine name (``None`` keeps the reference
            loop; ``"vectorized"`` selects the bit-identical
            batch-dequeue kernel).
        arrival: optional :class:`~repro.loadgen.interarrival.
            ArrivalSpec` (or dict / shape name) selecting a
            time-varying arrival process; ``None`` keeps the stock
            Poisson process.
        **workload_params: workload-specific parameters (e.g. the
            synthetic workload's ``added_delay_us``).
    """
    if cluster.is_single_server:
        extra = dict(workload_params)
        if obs is not None:
            extra["obs"] = obs
        if engine is not None:
            extra["engine"] = engine
        if arrival is not None:
            extra["arrival"] = arrival
        return workload_by_name(workload).build_testbed(
            seed, client_config=client_config,
            server_config=server_config, qps=qps,
            num_requests=num_requests,
            warmup_fraction=warmup_fraction,
            params=params,
            **extra)
    adapter = cluster_adapter(workload)
    sim = make_simulator(engine)
    if obs is not None:
        obs.install(sim)
    streams = RandomStreams(seed)
    groups = [
        _build_group(adapter, sim, streams, server_config, params,
                     cluster, node, **workload_params)
        for node in range(cluster.nodes)
    ]
    if cluster.nodes == 1:
        service: Any = groups[0]
    else:
        service = LoadBalancer(
            sim, groups, policy=cluster.lb_policy,
            rng=streams.stream("cluster-lb"),
            name=f"{adapter.workload}-cluster-lb")
    request_factory = adapter.make_request_factory(streams)
    gen_extra: Dict[str, Any] = {}
    if arrival is not None:
        from repro.loadgen.interarrival import arrival_process
        gen_extra["interarrival"] = arrival_process(arrival, qps)
    generator = adapter.make_generator(
        sim, streams, client_config, service, qps, num_requests,
        request_factory=request_factory,
        warmup_fraction=warmup_fraction,
        params=params,
        **gen_extra,
    )
    return Testbed(
        sim, streams, generator, service,
        workload=str(workload), qps=qps,
        client_config=client_config, server_config=server_config,
    )


# The paper's four workloads, cluster-ready.
register_cluster_adapter(ClusterAdapter(
    workload="memcached",
    make_service=_memcached_service,
    make_generator=build_mutilate,
    make_request_factory=_memcached_request_factory,
))
register_cluster_adapter(ClusterAdapter(
    workload="hdsearch",
    make_service=_hdsearch_service,
    make_generator=build_hdsearch_client,
    make_request_factory=_hdsearch_request_factory,
))
register_cluster_adapter(ClusterAdapter(
    workload="socialnetwork",
    make_service=_socialnetwork_service,
    make_generator=build_wrk2,
    make_request_factory=_socialnetwork_request_factory,
))
register_cluster_adapter(ClusterAdapter(
    workload="synthetic",
    make_service=_synthetic_service,
    make_generator=build_mutilate,
    make_request_factory=_synthetic_request_factory,
))
