"""Sharded fan-out request lifecycle with quorum completion.

A :class:`FanoutService` models the root/leaf pattern of sharded
services (HDSearch root -> leaf shards, memcached proxy -> shard
pools): a root request fans out to *K* of *N* shard backends through
per-shard network links and completes when the *Q*-th response
arrives -- ``Q == K`` is the classic slowest-shard barrier, ``Q < K``
is quorum/hedged completion where stragglers are ignored (but still
drain their servers, exactly as real stragglers do).

The root request's ``service_us``/``queue_wait_us`` aggregate the
*maximum* over the responses that counted toward the quorum, so
per-request telemetry stays a single columnar row per root request --
sub-requests never reach the samples buffer (request conservation:
one completion per injected request, always).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.cluster.balancer import (
    backend_expected_service_us,
    backend_utilization,
)
from repro.errors import ConfigurationError
from repro.net.link import NetworkLink
from repro.server.request import Request
from repro.sim.engine import Simulator
from repro.sim.sampling import as_stream


class _RootState:
    """Per-root bookkeeping while its shard responses are in flight."""

    __slots__ = ("pending", "max_service_us", "max_queue_wait_us",
                 "completed")

    def __init__(self, pending: int) -> None:
        self.pending = pending
        self.max_service_us = 0.0
        self.max_queue_wait_us = 0.0
        self.completed = False


class FanoutService:
    """Fan a root request out to K of N shards; complete on quorum.

    Args:
        sim: the run's simulator.
        shards: shard backends (stations, tiered services, or nested
            balancers) with ``submit(request, done_fn)``.
        links: one :class:`~repro.net.link.NetworkLink` per shard (the
            root->shard and shard->root hops), or ``None`` for
            co-located shards.
        fanout: shards touched per root request (0 = all).
        quorum: responses completing the root (0 = all of fanout).
        rng: randomness for the K-of-N shard subset draw (batched
            facade); required when ``fanout < len(shards)``.
        name: diagnostic name.
    """

    def __init__(self, sim: Simulator, shards: Sequence[Any],
                 links: Optional[Sequence[Optional[NetworkLink]]] = None,
                 fanout: int = 0, quorum: int = 0,
                 rng: Optional[Any] = None,
                 name: str = "fanout") -> None:
        if not shards:
            raise ConfigurationError("a fanout service needs >= 1 shard")
        self._sim = sim
        self._shards: List[Any] = list(shards)
        count = len(self._shards)
        if links is None:
            links = [None] * count
        if len(links) != count:
            raise ConfigurationError(
                f"got {len(links)} links for {count} shards")
        self._links: List[Optional[NetworkLink]] = list(links)
        self.fanout = int(fanout) or count
        if not 1 <= self.fanout <= count:
            raise ConfigurationError(
                f"fanout must be in [1, {count}], got {self.fanout}")
        self.quorum = int(quorum) or self.fanout
        if not 1 <= self.quorum <= self.fanout:
            raise ConfigurationError(
                f"quorum must be in [1, fanout={self.fanout}], "
                f"got {self.quorum}")
        self._rng = as_stream(rng)
        if self._rng is None and self.fanout < count:
            raise ConfigurationError(
                f"fanout {self.fanout} < {count} shards needs an rng "
                f"for the subset draw")
        self.name = str(name)
        #: Root requests completed (exactly one per submit).
        self.roots_completed = 0
        #: Shard sub-requests issued / completed (stragglers included).
        self.subs_issued = 0
        self.subs_completed = 0
        #: Sub-requests dispatched per shard (conservation checks).
        self.shard_dispatched: List[int] = [0] * count
        obs = getattr(sim, "obs", None)
        self._trace = obs.tracer if obs is not None else None
        if obs is not None:
            obs.on_fanout(self)

    # ------------------------------------------------------------------
    @property
    def shards(self) -> Sequence[Any]:
        """The shard backends, in index order."""
        return tuple(self._shards)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def select_shards(self) -> List[int]:
        """The shard subset for one root request, in dispatch order.

        ``fanout == shards`` touches every shard without consuming a
        draw; a partial fanout draws a uniform partial Fisher-Yates
        shuffle (K draws, all served from one draw-ahead block).
        """
        count = len(self._shards)
        if self.fanout == count:
            return list(range(count))
        pool = list(range(count))
        rng = self._rng
        chosen: List[int] = []
        for position in range(self.fanout):
            pick = position + rng.next_index(count - position)
            pool[position], pool[pick] = pool[pick], pool[position]
            chosen.append(pool[position])
        return chosen

    # ------------------------------------------------------------------
    def submit(self, request: Request,
               done_fn: Callable[..., None], *ctx: Any) -> None:
        """Fan *request* out; call ``done_fn(request, *ctx)`` on the
        quorum response."""
        if request.server_arrival_us == 0.0:
            request.server_arrival_us = self._sim.now
        if ctx:
            inner = done_fn

            def done_fn(job: Request) -> None:
                inner(job, *ctx)
        selected = self.select_shards()
        state = _RootState(pending=self.quorum)
        sub_size_kb = request.size_kb / len(selected)
        for shard_index in selected:
            self.subs_issued += 1
            self.shard_dispatched[shard_index] += 1
            sub = Request(
                request_id=request.request_id,
                size_kb=sub_size_kb,
                intended_send_us=request.intended_send_us,
                actual_send_us=request.actual_send_us,
            )
            link = self._links[shard_index]
            collector = self._make_collector(
                request, state, shard_index, done_fn, self._sim.now)
            if link is None:
                self._shards[shard_index].submit(sub, collector)
            else:
                self._sim.post(
                    link.sample_latency_us(sub.size_kb),
                    self._shards[shard_index].submit, sub, collector)

    def _make_collector(self, root: Request, state: _RootState,
                        shard_index: int,
                        done_fn: Callable[[Request], None],
                        dispatched_at: float = 0.0):
        def shard_served(sub: Request) -> None:
            # The shard finished serving; the response still crosses
            # the shard's return link before it reaches the root.
            link = self._links[shard_index]
            if link is None:
                self._at_root(root, state, sub, done_fn,
                              shard_index, dispatched_at)
            else:
                self._sim.post(
                    link.sample_latency_us(sub.size_kb),
                    self._at_root, root, state, sub, done_fn,
                    shard_index, dispatched_at)
        return shard_served

    def _at_root(self, root: Request, state: _RootState, sub: Request,
                 done_fn: Callable[[Request], None],
                 shard_index: int = -1,
                 dispatched_at: float = 0.0) -> None:
        self.subs_completed += 1
        trace = self._trace
        if trace is not None:
            # One child span per shard sub-request: root dispatch to
            # response back at the root (stragglers included).
            trace.span("fanout.rpc", dispatched_at, self._sim.now,
                       root.request_id, self.name, detail=shard_index)
        if state.completed:
            return  # straggler past the quorum: drains, never counts
        if sub.service_us > state.max_service_us:
            state.max_service_us = sub.service_us
        if sub.queue_wait_us > state.max_queue_wait_us:
            state.max_queue_wait_us = sub.queue_wait_us
        state.pending -= 1
        if state.pending > 0:
            return
        state.completed = True
        root.service_us += state.max_service_us
        root.queue_wait_us += state.max_queue_wait_us
        root.server_departure_us = self._sim.now
        self.roots_completed += 1
        done_fn(root)

    # ------------------------------------------------------------- metrics
    def node_utilizations(self) -> tuple:
        """Time-averaged utilization of every shard, in order."""
        return tuple(backend_utilization(shard)
                     for shard in self._shards)

    def utilization(self) -> float:
        """Mean utilization across the shards."""
        utils = self.node_utilizations()
        return sum(utils) / len(utils)

    def expected_service_us(self) -> float:
        """Mean root service demand: the slowest of *fanout* shards
        approximated by one shard's mean (a lower bound; sizing
        heuristics only)."""
        per_shard = (sum(backend_expected_service_us(s)
                         for s in self._shards) / len(self._shards))
        return per_shard
