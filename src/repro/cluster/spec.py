"""The cluster topology spec: how many servers, wired how.

A :class:`ClusterSpec` describes the server side of a deployment as
data: *nodes* replicated server groups behind a load balancer, each
group internally split into *shards* shard stations (each shard
optionally *replication*-way replicated), with a root request fanning
out to *fanout* shards and completing on the *quorum*-th response.
The default spec -- one node, one shard, no replication -- is the
paper's single-server testbed, and every existing plan, campaign and
stored result hashes exactly as before (a default cluster is omitted
from the serialized form entirely).

Like every spec in :mod:`repro.api`, a ``ClusterSpec`` is frozen,
hashable data with an exact dict/JSON round-trip, so cluster
topologies participate in plan content hashes, result-store keys and
cross-process shipping unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Tuple

from repro.errors import SpecValidationError

#: Load-balancing policies a :class:`ClusterSpec` may name.
LB_ROUND_ROBIN = "round-robin"
LB_RANDOM = "random"
LB_LEAST_OUTSTANDING = "least-outstanding"
LB_POWER_OF_TWO = "power-of-two"

LB_POLICIES: Tuple[str, ...] = (
    LB_ROUND_ROBIN,
    LB_RANDOM,
    LB_LEAST_OUTSTANDING,
    LB_POWER_OF_TWO,
)

_FIELDS = ("nodes", "replication", "shards", "fanout", "quorum",
           "lb_policy")


@dataclass(frozen=True)
class ClusterSpec:
    """Server-side cluster topology, as validated frozen data.

    Attributes:
        nodes: replicated server groups behind the front load
            balancer; each request is dispatched to exactly one group
            by ``lb_policy``.
        replication: replicas of each shard station inside a group; a
            shard sub-request is routed to one replica by the same
            policy.
        shards: shard stations per group.  A root request fans out to
            ``fanout`` of them through per-shard links.
        fanout: shards touched per root request; ``0`` means all.
        quorum: responses that complete the root request; ``0`` means
            all of the fanout (the classic slowest-shard barrier).
        lb_policy: one of :data:`LB_POLICIES`.
    """

    nodes: int = 1
    replication: int = 1
    shards: int = 1
    fanout: int = 0
    quorum: int = 0
    lb_policy: str = LB_ROUND_ROBIN

    def __post_init__(self) -> None:
        for name in ("nodes", "replication", "shards", "fanout",
                     "quorum"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(
                    value, (int, float)) or not float(value).is_integer():
                raise SpecValidationError(
                    f"cluster {name} must be an integer, got {value!r}")
            object.__setattr__(self, name, int(value))
        object.__setattr__(self, "lb_policy", str(self.lb_policy))
        if self.nodes < 1:
            raise SpecValidationError(
                f"cluster nodes must be >= 1, got {self.nodes}")
        if self.replication < 1:
            raise SpecValidationError(
                f"cluster replication must be >= 1, "
                f"got {self.replication}")
        if self.shards < 1:
            raise SpecValidationError(
                f"cluster shards must be >= 1, got {self.shards}")
        if not 0 <= self.fanout <= self.shards:
            raise SpecValidationError(
                f"cluster fanout must be in [0, shards={self.shards}], "
                f"got {self.fanout}")
        if not 0 <= self.quorum <= self.effective_fanout:
            raise SpecValidationError(
                f"cluster quorum must be in [0, "
                f"fanout={self.effective_fanout}], got {self.quorum}")
        if self.lb_policy not in LB_POLICIES:
            raise SpecValidationError(
                f"unknown lb_policy {self.lb_policy!r}; valid policies: "
                f"{', '.join(LB_POLICIES)}")
        # Canonicalize: specs are content-hash keys, so the same
        # deployment must always be the same spec.  An explicit "all
        # shards" fanout (and an "all of fanout" quorum) becomes the
        # 0 default, and a topology that never instantiates a load
        # balancer (one node, no replicas) drops its dead lb_policy.
        # Canonical form is also the *merge* base: a later
        # ``with_fields(shards=...)`` on a fanout-equal-to-shards
        # spec keeps meaning "all shards" -- pin fanout below shards
        # if it must survive a shard-count change.
        if self.fanout == self.shards:
            object.__setattr__(self, "fanout", 0)
        if self.quorum == self.effective_fanout:
            object.__setattr__(self, "quorum", 0)
        if self.nodes == 1 and self.replication == 1:
            object.__setattr__(self, "lb_policy", LB_ROUND_ROBIN)

    # ------------------------------------------------------------------
    @property
    def effective_fanout(self) -> int:
        """Shards actually touched per root request (0 resolved)."""
        return self.fanout or self.shards

    @property
    def effective_quorum(self) -> int:
        """Responses that complete a root request (0 resolved)."""
        return self.quorum or self.effective_fanout

    @property
    def is_single_server(self) -> bool:
        """True for the paper's one-box topology (the default)."""
        return (self.nodes == 1 and self.shards == 1
                and self.replication == 1)

    @property
    def total_stations(self) -> int:
        """Server groups' station count across the whole cluster."""
        return self.nodes * self.shards * self.replication

    def describe(self) -> str:
        """One-line topology summary for listings and reports."""
        if self.is_single_server:
            return "single-server"
        parts = [f"{self.nodes} node{'s' if self.nodes != 1 else ''}"]
        if self.nodes > 1 or self.replication > 1:
            parts.append(self.lb_policy)
        if self.shards > 1:
            parts.append(
                f"{self.shards} shards (fanout {self.effective_fanout}, "
                f"quorum {self.effective_quorum})")
        if self.replication > 1:
            parts.append(f"x{self.replication} replicas")
        return ", ".join(parts)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the hash input and wire format)."""
        return {
            "nodes": self.nodes,
            "replication": self.replication,
            "shards": self.shards,
            "fanout": self.fanout,
            "quorum": self.quorum,
            "lb_policy": self.lb_policy,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        """Rebuild (and re-validate) a spec from its dict form."""
        unknown = sorted(set(map(str, data)) - set(_FIELDS))
        if unknown:
            raise SpecValidationError(
                f"unknown key(s) {', '.join(map(repr, unknown))} in "
                f"cluster spec; valid keys: {', '.join(_FIELDS)}")
        return cls(**{name: data[name] for name in _FIELDS
                      if name in data})

    def with_fields(self, **changes: Any) -> "ClusterSpec":
        """Copy with some fields replaced (re-validated)."""
        return replace(self, **changes)


#: The default topology: the paper's single-server testbed.
SINGLE_SERVER = ClusterSpec()


def as_cluster_spec(value: Any) -> ClusterSpec:
    """Coerce a :class:`ClusterSpec`, dict, or ``None`` into a spec."""
    if value is None:
        return SINGLE_SERVER
    if isinstance(value, ClusterSpec):
        return value
    if isinstance(value, Mapping):
        return ClusterSpec.from_dict(value)
    raise SpecValidationError(
        f"cluster must be a ClusterSpec or dict, "
        f"got {type(value).__name__}")
