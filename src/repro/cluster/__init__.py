"""repro.cluster: load-balanced, sharded multi-server topologies.

The paper's testbed is one server; this package scales it out.  A
:class:`ClusterSpec` describes the topology as frozen data (nodes
behind a load balancer, shards with fan-out and quorum, per-shard
replication); :class:`LoadBalancer` and :class:`FanoutService`
implement the request lifecycle with the same ``submit(request,
done_fn)`` interface as a single
:class:`~repro.server.station.ServiceStation`; and
:func:`build_cluster_testbed` assembles any adapter-registered
workload into a cluster :class:`~repro.core.testbed.Testbed`.

Plans carry the topology::

    from repro.api import experiment

    result = (experiment("memcached")
              .client("LP")
              .cluster(nodes=4, lb_policy="power-of-two")
              .load(qps=400_000)
              .policy(runs=10)
              .run())
"""

from repro.cluster.balancer import (
    LoadBalancer,
    least_outstanding_choice,
    power_of_two_choice,
)
from repro.cluster.fanout import FanoutService
from repro.cluster.spec import (
    LB_LEAST_OUTSTANDING,
    LB_POLICIES,
    LB_POWER_OF_TWO,
    LB_RANDOM,
    LB_ROUND_ROBIN,
    SINGLE_SERVER,
    ClusterSpec,
    as_cluster_spec,
)
from repro.cluster.testbed import (
    ClusterAdapter,
    build_cluster_testbed,
    cluster_adapter,
    clustered_workloads,
    register_cluster_adapter,
)

__all__ = [
    "ClusterAdapter",
    "ClusterSpec",
    "FanoutService",
    "LB_LEAST_OUTSTANDING",
    "LB_POLICIES",
    "LB_POWER_OF_TWO",
    "LB_RANDOM",
    "LB_ROUND_ROBIN",
    "LoadBalancer",
    "SINGLE_SERVER",
    "as_cluster_spec",
    "build_cluster_testbed",
    "cluster_adapter",
    "clustered_workloads",
    "least_outstanding_choice",
    "power_of_two_choice",
    "register_cluster_adapter",
]
