"""A load-balancer station fronting replicated server groups.

:class:`LoadBalancer` presents the same ``submit(request, done_fn)``
interface as a :class:`~repro.server.station.ServiceStation`, so a
workload generator drives a cluster exactly as it drives one server.
Each incoming request is dispatched to one backend chosen by a
:data:`~repro.cluster.spec.LB_POLICIES` policy; the balancer tracks
per-backend outstanding and dispatch counts, which the policies read
and the tests (request conservation, least-outstanding invariants)
assert against.

Stochastic policies (``random``, ``power-of-two``) draw uniform
primitives through the :class:`~repro.sim.sampling.BatchedStream`
facade, so cluster runs keep the simulator's bit-exact determinism
and the draw-ahead fast path.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.cluster.spec import (
    LB_LEAST_OUTSTANDING,
    LB_POLICIES,
    LB_POWER_OF_TWO,
    LB_RANDOM,
    LB_ROUND_ROBIN,
)
from repro.core.testbed import service_utilization
from repro.errors import ConfigurationError
from repro.server.request import Request
from repro.sim.engine import Simulator
from repro.sim.sampling import as_stream


def least_outstanding_choice(outstanding: Sequence[int]) -> int:
    """The least-loaded backend index; ties break to the lowest index.

    Deterministic on purpose: a tie must not consume a random draw,
    or two runs of the same seed could diverge on scheduling noise.
    """
    best = 0
    best_load = outstanding[0]
    for index in range(1, len(outstanding)):
        load = outstanding[index]
        if load < best_load:
            best = index
            best_load = load
    return best


def power_of_two_choice(outstanding: Sequence[int],
                        first: int, second: int) -> int:
    """Pick the less-loaded of two sampled backends (ties: first)."""
    if outstanding[second] < outstanding[first]:
        return second
    return first


class LoadBalancer:
    """Dispatch requests over *backends* under one LB policy.

    Args:
        sim: the run's simulator (kept for interface symmetry with
            stations; dispatch itself is instantaneous).
        backends: server groups with a station-compatible
            ``submit(request, done_fn)``.
        policy: one of :data:`~repro.cluster.spec.LB_POLICIES`.
        rng: randomness source for the stochastic policies; wrapped
            in a :class:`~repro.sim.sampling.BatchedStream` so uniform
            draws ride the draw-ahead block path.  Required for
            ``random`` and ``power-of-two``.
        name: diagnostic name.
    """

    def __init__(self, sim: Simulator, backends: Sequence[Any],
                 policy: str = LB_ROUND_ROBIN,
                 rng: Optional[Any] = None,
                 name: str = "load-balancer") -> None:
        if not backends:
            raise ConfigurationError(
                "a load balancer needs >= 1 backend")
        if policy not in LB_POLICIES:
            raise ConfigurationError(
                f"unknown lb policy {policy!r}; valid policies: "
                f"{', '.join(LB_POLICIES)}")
        self._sim = sim
        self._backends: List[Any] = list(backends)
        self.policy = str(policy)
        self._rng = as_stream(rng)
        if (self._rng is None
                and policy in (LB_RANDOM, LB_POWER_OF_TWO)):
            raise ConfigurationError(
                f"lb policy {policy!r} needs an rng")
        self.name = str(name)
        count = len(self._backends)
        #: In-flight requests per backend (policy input + invariants).
        self.outstanding: List[int] = [0] * count
        #: Total requests ever dispatched per backend.
        self.dispatched: List[int] = [0] * count
        #: Total requests completed through this balancer.
        self.completed = 0
        self._next_round_robin = 0
        #: Test/diagnostic hook: called ``(chosen_index,
        #: outstanding_snapshot)`` at each dispatch decision.
        self.on_dispatch: Optional[
            Callable[[int, List[int]], None]] = None
        #: Peak in-flight requests on any single backend (tracked only
        #: under an Observability context).
        self.peak_outstanding = 0
        obs = getattr(sim, "obs", None)
        self._obs = obs
        self._trace = obs.tracer if obs is not None else None
        if obs is not None:
            obs.on_balancer(self)

    # ------------------------------------------------------------------
    @property
    def backends(self) -> Sequence[Any]:
        """The backend server groups, in index order."""
        return tuple(self._backends)

    @property
    def num_backends(self) -> int:
        return len(self._backends)

    def choose(self) -> int:
        """The policy's pick for the next request (consumes draws)."""
        policy = self.policy
        if policy == LB_ROUND_ROBIN:
            index = self._next_round_robin
            self._next_round_robin = (
                index + 1) % len(self._backends)
            return index
        if policy == LB_RANDOM:
            return self._rng.next_index(len(self._backends))
        if policy == LB_LEAST_OUTSTANDING:
            return least_outstanding_choice(self.outstanding)
        # power-of-two-choices: two uniform draws picking a *distinct*
        # pair (the classic formulation -- comparing a backend against
        # itself would degenerate to a blind random pick), keep the
        # less loaded one.
        count = len(self._backends)
        if count == 1:
            return 0
        first = self._rng.next_index(count)
        second = (first + 1 + self._rng.next_index(count - 1)) % count
        return power_of_two_choice(self.outstanding, first, second)

    # ------------------------------------------------------------------
    def submit(self, request: Request,
               done_fn: Callable[..., None], *ctx: Any) -> None:
        """Dispatch *request* to one backend; forward its completion
        as ``done_fn(request, *ctx)``."""
        index = self.choose()
        if self.on_dispatch is not None:
            self.on_dispatch(index, list(self.outstanding))
        self.outstanding[index] += 1
        self.dispatched[index] += 1
        if self._obs is not None:
            if self.outstanding[index] > self.peak_outstanding:
                self.peak_outstanding = self.outstanding[index]
            trace = self._trace
            if trace is not None:
                trace.instant("lb.dispatch", self._sim.now,
                              request.request_id, self.name,
                              detail=index)

        def backend_done(job: Request) -> None:
            self.outstanding[index] -= 1
            self.completed += 1
            done_fn(job, *ctx)

        self._backends[index].submit(request, backend_done)

    # ------------------------------------------------------------- metrics
    def node_utilizations(self) -> tuple:
        """Time-averaged utilization of every backend, in order."""
        return tuple(backend_utilization(backend)
                     for backend in self._backends)

    def utilization(self) -> float:
        """Mean utilization across the backends."""
        utils = self.node_utilizations()
        return sum(utils) / len(utils)

    def expected_service_us(self) -> float:
        """Mean per-request service demand of one backend."""
        return (sum(backend_expected_service_us(b)
                    for b in self._backends) / len(self._backends))


# ---------------------------------------------------------------- helpers
def backend_utilization(backend: Any) -> float:
    """Utilization of a station, tiered service, or nested cluster
    (the shared :func:`~repro.core.testbed.service_utilization`
    probe, so per-node and top-level numbers always agree)."""
    return service_utilization(backend)


def backend_expected_service_us(backend: Any) -> float:
    """Mean service demand of any backend shape (0 when unknown)."""
    expected = getattr(backend, "expected_service_us", None)
    if expected is not None:
        return float(expected())
    return 0.0
