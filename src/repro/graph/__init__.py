"""Multi-tier service graphs: DAG topologies over workload services.

The graph layer generalizes :mod:`repro.cluster` from one
load-balanced tier to a DAG of named tiers -- frontend, cache, leaf
shards -- with per-edge resilience policies (timeout + bounded retry
with backoff, hedged duplicates) and a hit-ratio cache model that
short-circuits downstream fan-out on hits.

Everything composes with the existing stack: tiers reuse the cluster
assembly for their own shapes, randomness flows through the batched
stream facade, telemetry lands in the observability registry, and
plans carry a frozen :class:`ServiceGraphSpec` exactly the way they
carry a :class:`~repro.cluster.spec.ClusterSpec`.
"""

from repro.graph.cache import CacheTier
from repro.graph.presets import (
    GRAPH_PRESETS,
    graph_preset,
    graph_preset_names,
)
from repro.graph.resilience import ResilientDispatcher
from repro.graph.spec import (
    NO_RESILIENCE,
    TIER_CACHE,
    TIER_KINDS,
    TIER_SERVICE,
    GraphTierSpec,
    ResiliencePolicy,
    ServiceGraphSpec,
    as_graph_spec,
    as_resilience_policy,
)
from repro.graph.testbed import (
    GraphStage,
    ServiceGraph,
    build_graph_testbed,
    build_service_graph,
)

__all__ = [
    "CacheTier",
    "GRAPH_PRESETS",
    "GraphStage",
    "GraphTierSpec",
    "NO_RESILIENCE",
    "ResiliencePolicy",
    "ResilientDispatcher",
    "ServiceGraph",
    "ServiceGraphSpec",
    "TIER_CACHE",
    "TIER_KINDS",
    "TIER_SERVICE",
    "as_graph_spec",
    "as_resilience_policy",
    "build_graph_testbed",
    "build_service_graph",
    "graph_preset",
    "graph_preset_names",
]
