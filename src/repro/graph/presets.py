"""Named service-graph topologies for CLI and campaign use.

Each preset is a zero-argument factory returning a fresh
:class:`~repro.graph.spec.ServiceGraphSpec`, looked up by name with
did-you-mean suggestions -- mirroring the campaign preset registry.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Tuple

from repro.cluster.spec import ClusterSpec
from repro.errors import ExperimentError
from repro.graph.spec import (
    GraphTierSpec,
    ResiliencePolicy,
    ServiceGraphSpec,
)


def _memcached_cached() -> ServiceGraphSpec:
    """Frontend -> look-aside cache -> 8 hedged leaf shards.

    The canonical 3-tier deployment of the paper's memcached
    workload: a single frontend, an 80%-hit cache answering in a few
    microseconds, and a sharded leaf tier whose inbound edge hedges a
    duplicate request when the first attempt is slow.
    """
    return ServiceGraphSpec(tiers=(
        GraphTierSpec(name="frontend", downstream=("cache",)),
        GraphTierSpec(
            name="cache", kind="cache", downstream=("leaf",),
            hit_ratio=0.8, hit_service_us=4.0,
            fill_penalty_us=6.0),
        GraphTierSpec(
            name="leaf",
            shape=ClusterSpec(shards=8),
            policy=ResiliencePolicy(hedge_after_us=48.0, hedges=1)),
    ))


def _hdsearch_graph() -> ServiceGraphSpec:
    """Frontend -> hedged leaf shards, the MicroSuite HDSearch shape.

    HDSearch's midtier fans a query to bucket servers; the graph
    models it as a frontend ahead of a 4-shard leaf tier with
    timeout+retry and a hedged duplicate on the leaf edge.
    """
    return ServiceGraphSpec(tiers=(
        GraphTierSpec(name="frontend", downstream=("leaf",)),
        GraphTierSpec(
            name="leaf",
            shape=ClusterSpec(shards=4),
            policy=ResiliencePolicy(
                timeout_us=650.0, max_retries=1,
                backoff_us=50.0,
                hedge_after_us=500.0, hedges=1)),
    ))


GRAPH_PRESETS: Dict[str, Callable[[], ServiceGraphSpec]] = {
    "memcached-cached": _memcached_cached,
    "hdsearch-graph": _hdsearch_graph,
}


def graph_preset_names() -> Tuple[str, ...]:
    """Sorted names of the built-in graph topologies."""
    return tuple(sorted(GRAPH_PRESETS))


def graph_preset(name: str) -> ServiceGraphSpec:
    """Build the named topology (did-you-mean on a miss)."""
    try:
        factory = GRAPH_PRESETS[str(name)]
    except KeyError:
        close = difflib.get_close_matches(
            str(name), list(GRAPH_PRESETS), n=1)
        hint = f" -- did you mean {close[0]!r}?" if close else ""
        raise ExperimentError(
            f"unknown graph preset {name!r}; available presets: "
            f"{', '.join(graph_preset_names())}{hint}") from None
    return factory()
