"""Hit-ratio cache tier: hits answer locally, misses traverse & fill.

:class:`CacheTier` sits in front of a downstream service and models a
look-aside cache with a fixed hit probability.  On a hit the request
is answered after ``hit_service_us`` of local work; on a miss it
traverses the downstream service, then pays ``fill_penalty_us`` to
install the result before completing.  Hit decisions draw one uniform
from the tier's :class:`~repro.sim.sampling.BatchedStream`; the
degenerate ratios 0 and 1 consume no randomness at all (mirroring the
``next_index(1)`` idiom), so an always-miss cache is draw-for-draw
identical to no cache.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.server.request import Request
from repro.sim.sampling import as_stream


class CacheTier:
    """A hit-ratio cache stage honoring the ``submit`` contract.

    Args:
        sim: the simulator.
        downstream: service (or stage) misses traverse.
        hit_ratio: probability a request hits, in [0, 1].
        hit_service_us: local service time charged on a hit.
        fill_penalty_us: extra time charged after a miss returns,
            modelling the cache fill.
        rng: random stream for hit decisions; required only when
            ``0 < hit_ratio < 1``.
        name: label used in metrics and trace spans.
    """

    def __init__(self, sim, downstream, *, hit_ratio: float,
                 hit_service_us: float = 0.0,
                 fill_penalty_us: float = 0.0,
                 rng=None, name: str = "cache") -> None:
        if not 0.0 <= hit_ratio <= 1.0:
            raise ConfigurationError(
                f"hit_ratio must be in [0, 1], got {hit_ratio}")
        if hit_service_us < 0 or fill_penalty_us < 0:
            raise ConfigurationError(
                "cache service costs must be >= 0")
        if 0.0 < hit_ratio < 1.0 and rng is None:
            raise ConfigurationError(
                f"cache {name!r} with fractional hit_ratio needs an "
                f"rng stream")
        self._sim = sim
        self.downstream = downstream
        self.hit_ratio = float(hit_ratio)
        self.hit_service_us = float(hit_service_us)
        self.fill_penalty_us = float(fill_penalty_us)
        self._rng = as_stream(rng) if rng is not None else None
        self.name = name
        self.hits = 0
        self.misses = 0
        obs = getattr(sim, "obs", None)
        if obs is not None:
            obs.on_cache(self)

    @property
    def lookups(self) -> int:
        """Total hit decisions made."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Empirical hit rate so far (0.0 before any lookup)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def _is_hit(self) -> bool:
        # Degenerate ratios consume no draw so an always-miss cache
        # leaves the stream bit-identical to having no cache at all.
        if self.hit_ratio >= 1.0:
            return True
        if self.hit_ratio <= 0.0:
            return False
        return self._rng.next_uniform() < self.hit_ratio

    def submit(self, request: Request, done_fn: Callable,
               *ctx: Any) -> None:
        sim = self._sim
        if request.server_arrival_us == 0.0:
            request.server_arrival_us = sim.now
        if ctx:
            inner = done_fn
            def done(req, _inner=inner, _ctx=ctx):
                _inner(req, *_ctx)
            done_fn = done
        if self._is_hit():
            self.hits += 1
            request.service_us += self.hit_service_us
            sim.post(self.hit_service_us, self._finish_hit,
                     request, done_fn, sim.now)
        else:
            self.misses += 1
            self.downstream.submit(request, self._filled, done_fn,
                                   sim.now)

    def _finish_hit(self, request: Request, done_fn: Callable,
                    started_us: float) -> None:
        sim = self._sim
        request.server_departure_us = sim.now
        obs = getattr(sim, "obs", None)
        if obs is not None and obs.tracer is not None:
            obs.tracer.span("cache.hit", started_us, sim.now,
                            request.request_id, self.name)
        done_fn(request)

    def _filled(self, request: Request, done_fn: Callable,
                started_us: float) -> None:
        request.service_us += self.fill_penalty_us
        self._sim.post(self.fill_penalty_us, self._finish_miss,
                       request, done_fn, started_us)

    def _finish_miss(self, request: Request, done_fn: Callable,
                     started_us: float) -> None:
        sim = self._sim
        request.server_departure_us = sim.now
        obs = getattr(sim, "obs", None)
        if obs is not None and obs.tracer is not None:
            obs.tracer.span("cache.miss", started_us, sim.now,
                            request.request_id, self.name)
        done_fn(request)

    # ------------------------------------------------------- metrics
    def utilization(self) -> float:
        """Caches are a model, not a station; no busy time to report."""
        return 0.0

    def expected_service_us(self) -> float:
        """Mean local cost per lookup under the configured ratio."""
        return (self.hit_ratio * self.hit_service_us
                + (1.0 - self.hit_ratio) * self.fill_penalty_us)
