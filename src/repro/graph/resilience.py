"""Timeout/retry/hedge dispatch on a service-graph edge.

:class:`ResilientDispatcher` wraps one backend and applies a
:class:`~repro.graph.spec.ResiliencePolicy` to every call: a
per-attempt timeout that abandons the attempt and retries (with
backoff) while budget remains, and hedged duplicate attempts launched
when the first response is slow.  The first response to arrive wins;
late responses from abandoned or duplicated attempts drain without
double-counting -- the same contract the fanout-quorum machinery
enforces for stragglers.

Attempts carry *copies* of the root request so concurrent attempts
never race on one mutable record; the winning attempt's timings are
folded back into the root before the caller's completion runs.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.graph.spec import ResiliencePolicy
from repro.server.request import Request


class _CallState:
    """Book-keeping for one root request in flight."""

    __slots__ = ("root", "done_fn", "completed", "retries_used",
                 "hedges_used", "timeout_event", "hedge_event")

    def __init__(self, root: Request, done_fn: Callable) -> None:
        self.root = root
        self.done_fn = done_fn
        self.completed = False
        self.retries_used = 0
        self.hedges_used = 0
        self.timeout_event = None
        self.hedge_event = None


class ResilientDispatcher:
    """Apply a resilience policy to calls into *backend*.

    Args:
        sim: the simulator.
        backend: the wrapped service (honors the ``submit`` contract).
        policy: the (non-noop) policy to enforce.
        name: label used in metrics and trace spans.
    """

    def __init__(self, sim, backend, policy: ResiliencePolicy,
                 name: str = "edge") -> None:
        self._sim = sim
        self.backend = backend
        self.policy = policy
        self.name = name
        self.calls = 0
        self.roots_completed = 0
        self.retries = 0
        self.hedges = 0
        self.timeouts = 0
        self.attempts_issued = 0
        self.attempts_completed = 0
        obs = getattr(sim, "obs", None)
        if obs is not None:
            obs.on_resilience(self)

    def submit(self, request: Request, done_fn: Callable,
               *ctx: Any) -> None:
        sim = self._sim
        if request.server_arrival_us == 0.0:
            request.server_arrival_us = sim.now
        if ctx:
            inner = done_fn
            def done(req, _inner=inner, _ctx=ctx):
                _inner(req, *_ctx)
            done_fn = done
        self.calls += 1
        state = _CallState(request, done_fn)
        self._launch_attempt(state, arm_timeout=True)
        if self.policy.hedges:
            state.hedge_event = sim.schedule(
                self.policy.hedge_after_us, self._hedge, state)

    def _launch_attempt(self, state: _CallState,
                        arm_timeout: bool) -> None:
        self.attempts_issued += 1
        root = state.root
        attempt = Request(
            request_id=root.request_id,
            size_kb=root.size_kb,
            intended_send_us=root.intended_send_us,
            actual_send_us=root.actual_send_us,
        )
        policy = self.policy
        if (arm_timeout and policy.timeout_us
                and state.retries_used < policy.max_retries):
            state.timeout_event = self._sim.schedule(
                policy.timeout_us, self._timed_out, state)
        self.backend.submit(attempt, self._responded, state)

    def _timed_out(self, state: _CallState) -> None:
        if state.completed:
            return
        sim = self._sim
        self.timeouts += 1
        state.retries_used += 1
        self.retries += 1
        state.timeout_event = None
        obs = getattr(sim, "obs", None)
        if obs is not None and obs.tracer is not None:
            obs.tracer.span("retry",
                            sim.now - self.policy.timeout_us,
                            sim.now, state.root.request_id,
                            self.name)
        if self.policy.backoff_us:
            sim.post(self.policy.backoff_us, self._retry, state)
        else:
            self._retry(state)

    def _retry(self, state: _CallState) -> None:
        # A straggler response may have landed during the backoff.
        if state.completed:
            return
        self._launch_attempt(state, arm_timeout=True)

    def _hedge(self, state: _CallState) -> None:
        state.hedge_event = None
        if state.completed:
            return
        sim = self._sim
        state.hedges_used += 1
        self.hedges += 1
        obs = getattr(sim, "obs", None)
        if obs is not None and obs.tracer is not None:
            obs.tracer.span("hedge",
                            sim.now - self.policy.hedge_after_us,
                            sim.now, state.root.request_id,
                            self.name)
        # Hedged duplicates never arm timeouts: retries govern the
        # primary attempt chain, hedges race it.
        self._launch_attempt(state, arm_timeout=False)
        if state.hedges_used < self.policy.hedges:
            state.hedge_event = sim.schedule(
                self.policy.hedge_after_us, self._hedge, state)

    def _responded(self, attempt: Request,
                   state: _CallState) -> None:
        self.attempts_completed += 1
        if state.completed:
            return  # straggler: drains, never double-counts
        state.completed = True
        if state.timeout_event is not None:
            state.timeout_event.cancel()
            state.timeout_event = None
        if state.hedge_event is not None:
            state.hedge_event.cancel()
            state.hedge_event = None
        root = state.root
        root.service_us += attempt.service_us
        root.queue_wait_us += attempt.queue_wait_us
        root.server_departure_us = self._sim.now
        self.roots_completed += 1
        state.done_fn(root)

    # ------------------------------------------------------- metrics
    def node_utilizations(self):
        """Per-node utilizations of the wrapped backend, if any."""
        probe = getattr(self.backend, "node_utilizations", None)
        return probe() if probe is not None else []

    def utilization(self) -> float:
        probe = getattr(self.backend, "utilization", None)
        return probe() if probe is not None else 0.0

    def expected_service_us(self) -> float:
        probe = getattr(self.backend, "expected_service_us", None)
        return probe() if probe is not None else 0.0
