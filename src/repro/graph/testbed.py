"""Service-graph testbed assembly: one workload, many tiers.

Builds a :class:`~repro.graph.spec.ServiceGraphSpec` into a live
service tree and wraps it in the same
:class:`~repro.core.testbed.Testbed` everything above consumes.  Each
tier reuses the cluster layer's assembly for its own shape (so a
leaf-shard tier is literally a :class:`~repro.cluster.fanout.
FanoutService` with the same streams a standalone cluster would
draw), cache tiers become :class:`~repro.graph.cache.CacheTier`
stages, and a tier with a non-noop policy gets a
:class:`~repro.graph.resilience.ResilientDispatcher` on its inbound
edge.

Tiers are assembled back-to-front (the spec's tuple order is the
topological order), and every tier's random streams are namespaced by
its name (``<tier>/node<i>/...``), so graph runs are bit-exactly
reproducible and adding a tier never perturbs another tier's draws.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.cluster.fanout import FanoutService
from repro.cluster.testbed import (
    ClusterAdapter,
    build_cluster_service,
    cluster_adapter,
)
from repro.config.knobs import HardwareConfig
from repro.config.presets import SERVER_BASELINE
from repro.core.testbed import Testbed
from repro.graph.cache import CacheTier
from repro.graph.resilience import ResilientDispatcher
from repro.graph.spec import (
    TIER_CACHE,
    GraphTierSpec,
    ServiceGraphSpec,
    as_graph_spec,
)
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.sim.engine import Simulator
from repro.sim.kernel import make_simulator
from repro.sim.random import RandomStreams


class GraphStage:
    """One service tier: local work, then an optional downstream hop.

    Honors the ``submit(request, done_fn, *ctx)`` contract: the local
    service runs first (stamping arrival and accumulating service
    time), then the request forwards downstream; the downstream's
    completion is the stage's completion.
    """

    def __init__(self, local, downstream=None,
                 name: str = "stage") -> None:
        self.local = local
        self.downstream = downstream
        self.name = name

    def submit(self, request, done_fn: Callable, *ctx: Any) -> None:
        if self.downstream is None:
            self.local.submit(request, done_fn, *ctx)
            return
        if ctx:
            inner = done_fn
            def done(req, _inner=inner, _ctx=ctx):
                _inner(req, *_ctx)
            done_fn = done
        self.local.submit(request, self._forward, done_fn)

    def _forward(self, request, done_fn: Callable) -> None:
        self.downstream.submit(request, done_fn)

    # ------------------------------------------------------- metrics
    def node_utilizations(self) -> List[float]:
        return _node_utilizations(self.local)

    def utilization(self) -> float:
        probe = getattr(self.local, "utilization", None)
        return probe() if probe is not None else 0.0

    def expected_service_us(self) -> float:
        probe = getattr(self.local, "expected_service_us", None)
        return probe() if probe is not None else 0.0


def _node_utilizations(service) -> List[float]:
    """Per-node utilizations of *service*, via duck-probes."""
    probe = getattr(service, "node_utilizations", None)
    if probe is not None:
        return list(probe() if callable(probe) else probe)
    probe = getattr(service, "utilization", None)
    return [probe()] if probe is not None else []


class ServiceGraph:
    """A built service graph behind the ``submit`` contract.

    Attributes:
        spec: the topology this graph was built from.
        entries: tier name -> the submit target for calls into that
            tier (the dispatcher when the tier has a policy).
        caches: cache tiers by name.
        dispatchers: resilient dispatchers by tier name.
    """

    def __init__(self, spec: ServiceGraphSpec,
                 entries: Dict[str, Any],
                 caches: Dict[str, CacheTier],
                 dispatchers: Dict[str, ResilientDispatcher]) -> None:
        self.spec = spec
        self.entries = entries
        self.caches = caches
        self.dispatchers = dispatchers
        self._entry = entries[spec.entry.name]
        self.name = f"graph[{'>'.join(spec.names)}]"

    def submit(self, request, done_fn: Callable, *ctx: Any) -> None:
        self._entry.submit(request, done_fn, *ctx)

    def tier_entry(self, name: str) -> Any:
        """The live submit target for tier *name*."""
        self.spec.tier(name)  # did-you-mean on unknown names
        return self.entries[name]

    # ------------------------------------------------------- metrics
    def node_utilizations(self) -> List[float]:
        values: List[float] = []
        for tier in self.spec.tiers:
            values.extend(_node_utilizations(self.entries[tier.name]))
        return values

    def utilization(self) -> float:
        values = self.node_utilizations()
        return sum(values) / len(values) if values else 0.0

    def expected_service_us(self) -> float:
        total = 0.0
        for tier in self.spec.tiers:
            probe = getattr(self.entries[tier.name],
                            "expected_service_us", None)
            if probe is not None:
                total += probe()
        return total


def build_service_graph(adapter: ClusterAdapter, sim: Simulator,
                        streams: RandomStreams,
                        server_config: HardwareConfig,
                        params: SkylakeParameters,
                        spec: ServiceGraphSpec,
                        **workload_params: Any) -> ServiceGraph:
    """Assemble the service side of a graph topology.

    Tiers build in reverse declaration order so every downstream
    reference is already live; a tier forwarding to several children
    joins them through an all-children :class:`FanoutService` barrier
    (which consumes no randomness when fanout == children).
    """
    entries: Dict[str, Any] = {}
    caches: Dict[str, CacheTier] = {}
    dispatchers: Dict[str, ResilientDispatcher] = {}
    for tier in reversed(spec.tiers):
        if not tier.downstream:
            downstream = None
        elif len(tier.downstream) == 1:
            downstream = entries[tier.downstream[0]]
        else:
            downstream = FanoutService(
                sim, [entries[name] for name in tier.downstream],
                links=None, fanout=0, quorum=0,
                name=f"{tier.name}-join")
        if tier.kind == TIER_CACHE:
            rng = (streams.stream(f"{tier.name}/cache")
                   if 0.0 < tier.hit_ratio < 1.0 else None)
            stage: Any = CacheTier(
                sim, downstream,
                hit_ratio=tier.hit_ratio,
                hit_service_us=tier.hit_service_us,
                fill_penalty_us=tier.fill_penalty_us,
                rng=rng, name=tier.name)
            caches[tier.name] = stage
        else:
            local = build_cluster_service(
                adapter, sim, streams, server_config, params,
                tier.shape,
                stream_prefix=f"{tier.name}/",
                label=f"{adapter.workload}.{tier.name}",
                **workload_params)
            stage = GraphStage(local, downstream, name=tier.name)
        if tier.policy.is_noop:
            entries[tier.name] = stage
        else:
            dispatcher = ResilientDispatcher(
                sim, stage, tier.policy, name=tier.name)
            dispatchers[tier.name] = dispatcher
            entries[tier.name] = dispatcher
    return ServiceGraph(spec, entries, caches, dispatchers)


def build_graph_testbed(
        workload: str,
        seed: int,
        client_config: HardwareConfig,
        server_config: HardwareConfig = SERVER_BASELINE,
        qps: float = 1_000.0,
        num_requests: int = 1_000,
        graph: Any = None,
        warmup_fraction: float = 0.1,
        params: SkylakeParameters = DEFAULT_PARAMETERS,
        obs: Any = None,
        engine: Any = None,
        arrival: Any = None,
        **workload_params: Any) -> Testbed:
    """Assemble one single-use service-graph testbed for *workload*.

    Args:
        workload: registered workload name (must have a cluster
            adapter; the graph reuses its service and generator
            pieces).
        seed: root seed; every tier's streams derive from it.
        client_config: client hardware configuration.
        server_config: hardware configuration of every server node.
        qps: offered load at the graph's entry tier.
        num_requests: requests per run.
        graph: the topology (:class:`ServiceGraphSpec` or dict).
        warmup_fraction: leading samples to discard.
        params: machine timing constants.
        obs: optional :class:`~repro.obs.Observability` context.
        engine: event-loop engine name; the vectorized kernel takes
            its scalar-fallback path at graph fronts, staying
            bit-identical to the reference loop.
        arrival: optional arrival-shape spec (or dict / shape name)
            selecting a time-varying process.
        **workload_params: workload-specific parameters.
    """
    spec = as_graph_spec(graph)
    if spec is None:
        raise ValueError("build_graph_testbed needs a graph spec")
    adapter = cluster_adapter(workload)
    sim = make_simulator(engine)
    if obs is not None:
        obs.install(sim)
    streams = RandomStreams(seed)
    service = build_service_graph(
        adapter, sim, streams, server_config, params, spec,
        **workload_params)
    request_factory = adapter.make_request_factory(streams)
    gen_extra: Dict[str, Any] = {}
    if arrival is not None:
        from repro.loadgen.interarrival import arrival_process
        gen_extra["interarrival"] = arrival_process(arrival, qps)
    generator = adapter.make_generator(
        sim, streams, client_config, service, qps, num_requests,
        request_factory=request_factory,
        warmup_fraction=warmup_fraction,
        params=params,
        **gen_extra,
    )
    return Testbed(
        sim, streams, generator, service,
        workload=str(workload), qps=qps,
        client_config=client_config, server_config=server_config,
    )
