"""Frozen specs describing a multi-tier service graph.

A :class:`ServiceGraphSpec` composes named tiers into a DAG: the first
tier is the entry (where the load generator submits), each tier names
the tiers it forwards to, and every tier carries its own station shape
(a :class:`~repro.cluster.spec.ClusterSpec` for service tiers, a
hit-ratio model for cache tiers) plus the :class:`ResiliencePolicy`
governing calls *into* it.

Specs follow the same contract as ``ClusterSpec``: frozen, validated
at construction, exactly round-tripping through ``to_dict`` /
``from_dict`` with defaults omitted so the dict form is canonical and
content hashes are stable.

The tuple order of ``tiers`` is the topological order: every
downstream reference must point to a tier declared *later* in the
tuple.  That single rule makes cycles unrepresentable and gives the
builder a deterministic construction order for free.
"""

from __future__ import annotations

import difflib
import hashlib
import json
import re
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.cluster.spec import SINGLE_SERVER, ClusterSpec, as_cluster_spec
from repro.errors import SpecValidationError

TIER_SERVICE = "service"
TIER_CACHE = "cache"
TIER_KINDS = (TIER_SERVICE, TIER_CACHE)

_NAME_RE = re.compile(r"^[A-Za-z0-9_-]+$")

_POLICY_FIELDS = ("timeout_us", "max_retries", "backoff_us",
                  "hedge_after_us", "hedges")
_TIER_FIELDS = ("name", "kind", "shape", "downstream", "policy",
                "hit_ratio", "hit_service_us", "fill_penalty_us")
_GRAPH_FIELDS = ("tiers",)


def _did_you_mean(key: str, valid) -> str:
    close = difflib.get_close_matches(key, list(valid), n=1)
    return f" -- did you mean {close[0]!r}?" if close else ""


def _check_keys(data: Mapping[str, Any], allowed, what: str) -> None:
    unknown = sorted(set(map(str, data)) - set(allowed))
    if unknown:
        hints = "".join(_did_you_mean(k, allowed) for k in unknown[:1])
        raise SpecValidationError(
            f"unknown key(s) {', '.join(map(repr, unknown))} in "
            f"{what}; valid keys: {', '.join(allowed)}{hints}")


# --------------------------------------------------------------- policy
@dataclass(frozen=True)
class ResiliencePolicy:
    """Timeout/retry/hedge behavior for calls into a tier.

    All fields default to zero, meaning "no policy" -- calls go
    straight through.  A non-zero ``timeout_us`` arms a timer per
    attempt; on expiry the attempt is abandoned (its response drains
    as a straggler) and, while retries remain, a fresh attempt is
    issued after ``backoff_us``.  A non-zero ``hedge_after_us``
    launches up to ``hedges`` duplicate attempts if no response has
    arrived yet; the first response wins and later ones drain without
    double-counting, reusing the fanout-quorum machinery's contract.

    Attributes:
        timeout_us: per-attempt timeout; 0 disables timeouts.
        max_retries: extra attempts after a timeout (requires
            ``timeout_us``).
        backoff_us: delay before each retry attempt.
        hedge_after_us: delay before launching a hedged duplicate;
            0 disables hedging.
        hedges: maximum hedged duplicates (requires
            ``hedge_after_us``).
    """

    timeout_us: float = 0.0
    max_retries: int = 0
    backoff_us: float = 0.0
    hedge_after_us: float = 0.0
    hedges: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "timeout_us", float(self.timeout_us))
        object.__setattr__(self, "max_retries", int(self.max_retries))
        object.__setattr__(self, "backoff_us", float(self.backoff_us))
        object.__setattr__(self, "hedge_after_us",
                           float(self.hedge_after_us))
        object.__setattr__(self, "hedges", int(self.hedges))
        for name in _POLICY_FIELDS:
            if getattr(self, name) < 0:
                raise SpecValidationError(
                    f"resilience {name} must be >= 0, "
                    f"got {getattr(self, name)}")
        if (self.max_retries > 0) != (self.timeout_us > 0):
            raise SpecValidationError(
                "retries need both timeout_us > 0 and max_retries "
                f"> 0 (got timeout_us={self.timeout_us}, "
                f"max_retries={self.max_retries})")
        if (self.hedges > 0) != (self.hedge_after_us > 0):
            raise SpecValidationError(
                "hedging needs both hedge_after_us > 0 and hedges "
                f"> 0 (got hedge_after_us={self.hedge_after_us}, "
                f"hedges={self.hedges})")
        if self.backoff_us > 0 and self.max_retries == 0:
            raise SpecValidationError(
                "backoff_us without retries has no effect; set "
                "timeout_us and max_retries")

    @property
    def is_noop(self) -> bool:
        """True when every knob is off (calls pass straight through)."""
        return (self.timeout_us == 0 and self.max_retries == 0
                and self.hedge_after_us == 0)

    def describe(self) -> str:
        """One-line summary for topology listings."""
        if self.is_noop:
            return "none"
        parts = []
        if self.max_retries:
            backoff = (f" (backoff {self.backoff_us:g}us)"
                       if self.backoff_us else "")
            parts.append(f"retry x{self.max_retries} @ "
                         f"{self.timeout_us:g}us{backoff}")
        elif self.timeout_us:
            parts.append(f"timeout {self.timeout_us:g}us")
        if self.hedges:
            parts.append(f"hedge x{self.hedges} @ "
                         f"{self.hedge_after_us:g}us")
        return ", ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form; zero fields are omitted (noop -> ``{}``)."""
        return {name: getattr(self, name) for name in _POLICY_FIELDS
                if getattr(self, name)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResiliencePolicy":
        _check_keys(data, _POLICY_FIELDS, "resilience policy")
        return cls(**{name: data[name] for name in _POLICY_FIELDS
                      if name in data})

    def with_fields(self, **changes: Any) -> "ResiliencePolicy":
        """Copy with some fields replaced (re-validated)."""
        return replace(self, **changes)


NO_RESILIENCE = ResiliencePolicy()


def as_resilience_policy(value: Any) -> ResiliencePolicy:
    """Coerce ``None`` / policy / mapping to a :class:`ResiliencePolicy`."""
    if value is None:
        return NO_RESILIENCE
    if isinstance(value, ResiliencePolicy):
        return value
    if isinstance(value, Mapping):
        return ResiliencePolicy.from_dict(value)
    raise SpecValidationError(
        f"policy must be a ResiliencePolicy or dict, "
        f"got {type(value).__name__}")


# ----------------------------------------------------------------- tier
@dataclass(frozen=True)
class GraphTierSpec:
    """One named stage of a service graph.

    A ``service`` tier hosts the workload's service in the station or
    cluster shape given by ``shape``; a ``cache`` tier is a hit-ratio
    model that answers hits locally and forwards misses downstream
    (filling on the way back).  ``policy`` governs calls *into* this
    tier from its upstream (for the entry tier: from the client).

    Attributes:
        name: tier identifier, ``[A-Za-z0-9_-]+``.
        kind: ``"service"`` or ``"cache"``.
        shape: station/cluster shape of a service tier.
        downstream: names of tiers this one forwards to.
        policy: resilience policy on this tier's inbound edge.
        hit_ratio: cache hit probability (cache tiers only).
        hit_service_us: local service time charged on a hit.
        fill_penalty_us: extra time charged filling after a miss.
    """

    name: str
    kind: str = TIER_SERVICE
    shape: ClusterSpec = field(default_factory=lambda: SINGLE_SERVER)
    downstream: Tuple[str, ...] = ()
    policy: ResiliencePolicy = field(
        default_factory=lambda: NO_RESILIENCE)
    hit_ratio: float = 0.0
    hit_service_us: float = 0.0
    fill_penalty_us: float = 0.0

    def __post_init__(self) -> None:
        name = str(self.name)
        if not _NAME_RE.match(name):
            raise SpecValidationError(
                f"tier name must match [A-Za-z0-9_-]+, got {name!r}")
        object.__setattr__(self, "name", name)
        kind = str(self.kind)
        if kind not in TIER_KINDS:
            raise SpecValidationError(
                f"unknown tier kind {kind!r}; valid kinds: "
                f"{', '.join(TIER_KINDS)}"
                f"{_did_you_mean(kind, TIER_KINDS)}")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "shape", as_cluster_spec(self.shape))
        downstream = tuple(str(d) for d in self.downstream)
        if len(set(downstream)) != len(downstream):
            raise SpecValidationError(
                f"tier {name!r} lists a downstream tier twice: "
                f"{downstream}")
        object.__setattr__(self, "downstream", downstream)
        object.__setattr__(self, "policy",
                           as_resilience_policy(self.policy))
        for attr in ("hit_ratio", "hit_service_us",
                     "fill_penalty_us"):
            object.__setattr__(self, attr, float(getattr(self, attr)))
        if kind == TIER_CACHE:
            if not self.shape.is_single_server:
                raise SpecValidationError(
                    f"cache tier {name!r} must be single-server; "
                    f"got shape {self.shape.describe()!r}")
            if not downstream:
                raise SpecValidationError(
                    f"cache tier {name!r} needs a downstream tier "
                    f"to forward misses to")
            if not 0.0 <= self.hit_ratio <= 1.0:
                raise SpecValidationError(
                    f"cache tier {name!r} hit_ratio must be in "
                    f"[0, 1], got {self.hit_ratio}")
            if self.hit_service_us < 0 or self.fill_penalty_us < 0:
                raise SpecValidationError(
                    f"cache tier {name!r} service costs must be "
                    f">= 0")
        else:
            for attr in ("hit_ratio", "hit_service_us",
                         "fill_penalty_us"):
                if getattr(self, attr):
                    raise SpecValidationError(
                        f"{attr} only applies to cache tiers; "
                        f"service tier {name!r} sets it to "
                        f"{getattr(self, attr)}")

    def describe(self) -> str:
        """One-line summary for topology listings."""
        if self.kind == TIER_CACHE:
            head = (f"cache (hit {self.hit_ratio:.0%}, "
                    f"hit cost {self.hit_service_us:g}us, "
                    f"fill {self.fill_penalty_us:g}us)")
        else:
            head = self.shape.describe()
        arrow = (f" -> {', '.join(self.downstream)}"
                 if self.downstream else "")
        policy = (f" [policy: {self.policy.describe()}]"
                  if not self.policy.is_noop else "")
        return f"{self.name}: {head}{arrow}{policy}"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form; fields at their default are omitted."""
        data: Dict[str, Any] = {"name": self.name}
        if self.kind != TIER_SERVICE:
            data["kind"] = self.kind
        if not self.shape.is_single_server:
            data["shape"] = self.shape.to_dict()
        if self.downstream:
            data["downstream"] = list(self.downstream)
        if not self.policy.is_noop:
            data["policy"] = self.policy.to_dict()
        for attr in ("hit_ratio", "hit_service_us",
                     "fill_penalty_us"):
            if getattr(self, attr):
                data[attr] = getattr(self, attr)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GraphTierSpec":
        _check_keys(data, _TIER_FIELDS, "graph tier spec")
        if "name" not in data:
            raise SpecValidationError("graph tier spec needs a name")
        kwargs: Dict[str, Any] = {
            name: data[name] for name in _TIER_FIELDS if name in data}
        if "downstream" in kwargs:
            kwargs["downstream"] = tuple(kwargs["downstream"])
        return cls(**kwargs)

    def with_fields(self, **changes: Any) -> "GraphTierSpec":
        """Copy with some fields replaced (re-validated)."""
        return replace(self, **changes)


# ---------------------------------------------------------------- graph
@dataclass(frozen=True)
class ServiceGraphSpec:
    """A validated DAG of tiers; ``tiers[0]`` is the entry.

    The tuple order is the topological order: every ``downstream``
    name must reference a tier declared later, so cycles cannot be
    expressed and builders can assemble back-to-front.
    """

    tiers: Tuple[GraphTierSpec, ...]

    def __post_init__(self) -> None:
        tiers = []
        for tier in self.tiers:
            if isinstance(tier, Mapping):
                tier = GraphTierSpec.from_dict(tier)
            elif not isinstance(tier, GraphTierSpec):
                raise SpecValidationError(
                    f"graph tiers must be GraphTierSpec or dict, "
                    f"got {type(tier).__name__}")
            tiers.append(tier)
        if not tiers:
            raise SpecValidationError(
                "a service graph needs at least one tier")
        object.__setattr__(self, "tiers", tuple(tiers))
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SpecValidationError(
                f"duplicate tier name(s): {', '.join(dupes)}")
        position = {name: i for i, name in enumerate(names)}
        for i, tier in enumerate(self.tiers):
            for ref in tier.downstream:
                if ref not in position:
                    raise SpecValidationError(
                        f"tier {tier.name!r} forwards to unknown "
                        f"tier {ref!r}; known tiers: "
                        f"{', '.join(names)}"
                        f"{_did_you_mean(ref, names)}")
                if position[ref] <= i:
                    raise SpecValidationError(
                        f"tier {tier.name!r} forwards to "
                        f"{ref!r}, which is declared at or before "
                        f"it; tiers must be listed in topological "
                        f"order (downstream tiers come later)")
        reachable = {names[0]}
        for tier in self.tiers:
            if tier.name in reachable:
                reachable.update(tier.downstream)
        orphans = [n for n in names if n not in reachable]
        if orphans:
            raise SpecValidationError(
                f"tier(s) unreachable from entry {names[0]!r}: "
                f"{', '.join(orphans)}")

    @property
    def entry(self) -> GraphTierSpec:
        """The tier the load generator submits to."""
        return self.tiers[0]

    @property
    def names(self) -> Tuple[str, ...]:
        """Tier names in topological order."""
        return tuple(t.name for t in self.tiers)

    def tier(self, name: str) -> GraphTierSpec:
        """Look up a tier by name (did-you-mean on miss)."""
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise SpecValidationError(
            f"no tier named {name!r}; known tiers: "
            f"{', '.join(self.names)}"
            f"{_did_you_mean(name, self.names)}")

    def describe(self) -> str:
        """Multi-line topology summary for ``repro plan``."""
        return "\n".join(t.describe() for t in self.tiers)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (tiers serialized with defaults omitted)."""
        return {"tiers": [t.to_dict() for t in self.tiers]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceGraphSpec":
        _check_keys(data, _GRAPH_FIELDS, "service graph spec")
        if "tiers" not in data:
            raise SpecValidationError(
                "service graph spec needs a 'tiers' list")
        return cls(tiers=tuple(data["tiers"]))

    def content_hash(self) -> str:
        """Stable hash of the canonical (default-omitting) form."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def as_graph_spec(value: Any) -> Optional[ServiceGraphSpec]:
    """Coerce ``None`` / spec / mapping to a :class:`ServiceGraphSpec`."""
    if value is None:
        return None
    if isinstance(value, ServiceGraphSpec):
        return value
    if isinstance(value, Mapping):
        return ServiceGraphSpec.from_dict(value)
    raise SpecValidationError(
        f"graph must be a ServiceGraphSpec or dict, "
        f"got {type(value).__name__}")
