"""Experiment-order randomization (OrderSage, related work [12]).

The order in which conditions run can bias results (machine state
carries over).  The paper's protocol resets state between runs; this
module adds the complementary OrderSage-style defence for *condition*
ordering: instead of running condition A's 50 runs then condition B's,
interleave or shuffle them so slow environmental drift spreads evenly
across conditions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.testbed import RunMetrics, Testbed
from repro.errors import ExperimentError


def build_schedule(conditions: Sequence[str], runs: int,
                   strategy: str = "shuffled",
                   seed: int = 0) -> List[Tuple[str, int]]:
    """Build a (condition, repetition) execution schedule.

    Args:
        conditions: condition labels.
        runs: repetitions per condition.
        strategy: ``"grouped"`` (all of A, then all of B -- the biased
            default), ``"interleaved"`` (ABAB...) or ``"shuffled"``
            (random order, the OrderSage recommendation).
        seed: shuffle seed.

    Raises:
        ExperimentError: on an unknown strategy or empty input.
    """
    if not conditions:
        raise ExperimentError("need at least one condition")
    if runs < 1:
        raise ExperimentError(f"runs must be >= 1, got {runs}")
    if strategy == "grouped":
        return [(condition, repetition)
                for condition in conditions
                for repetition in range(runs)]
    if strategy == "interleaved":
        return [(condition, repetition)
                for repetition in range(runs)
                for condition in conditions]
    if strategy == "shuffled":
        schedule = build_schedule(conditions, runs, "grouped")
        rng = np.random.default_rng(seed)
        rng.shuffle(schedule)
        return schedule
    raise ExperimentError(f"unknown strategy {strategy!r}")


def run_ordered(builders: Dict[str, Callable[[int], Testbed]],
                runs: int, strategy: str = "shuffled",
                base_seed: int = 0,
                order_seed: int = 0) -> Dict[str, List[RunMetrics]]:
    """Run several conditions under an explicit ordering strategy.

    Each (condition, repetition) pair gets a deterministic seed, so
    two strategies over the same conditions execute the exact same
    runs -- only the wall-clock order differs.  With the simulator this
    is order-invariant by construction (a property the test suite
    checks); on real hardware the ordering is the whole point.

    Returns:
        condition -> run metrics in repetition order.
    """
    schedule = build_schedule(
        sorted(builders), runs, strategy, seed=order_seed)
    results: Dict[str, List[Tuple[int, RunMetrics]]] = {
        condition: [] for condition in builders}
    for condition, repetition in schedule:
        seed = base_seed + repetition
        metrics = builders[condition](seed).run()
        results[condition].append((repetition, metrics))
    return {
        condition: [metrics for _, metrics in sorted(entries)]
        for condition, entries in results.items()
    }
