"""Experiment core: testbeds, runners, scenarios, conclusions.

This package implements the paper's primary contribution as reusable
machinery: assemble a client/server testbed under explicit hardware
configurations, run repetition protocols that keep samples iid,
summarize with the right confidence intervals, detect when two
configurations' conclusions *conflict*, estimate evaluation time
(repetition counts), and emit the Section VI configuration
recommendations.
"""

from repro.core.testbed import Testbed, RunMetrics
from repro.core.experiment import (
    Experiment,
    ExperimentResult,
    run_experiment,
)
from repro.core.scenarios import Scenario, scenario_table
from repro.core.comparison import (
    Comparison,
    ConclusionConflict,
    compare_conditions,
    detect_conflicts,
)
from repro.core.evaluation_time import (
    EvaluationTimeEstimate,
    estimate_evaluation_time,
)
from repro.core.recommendations import Recommendation, recommend
from repro.core.ordering import build_schedule, run_ordered
from repro.core.provisioning import (
    CapacityResult,
    ProvisioningPlan,
    capacity_under_qos,
    provisioning_error,
    provisioning_plan,
)

__all__ = [
    "build_schedule",
    "run_ordered",
    "CapacityResult",
    "ProvisioningPlan",
    "capacity_under_qos",
    "provisioning_plan",
    "provisioning_error",
    "Testbed",
    "RunMetrics",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
    "Scenario",
    "scenario_table",
    "Comparison",
    "ConclusionConflict",
    "compare_conditions",
    "detect_conflicts",
    "EvaluationTimeEstimate",
    "estimate_evaluation_time",
    "Recommendation",
    "recommend",
]
