"""Comparing conditions and detecting conflicting conclusions.

The paper's findings 1-2 are about *conclusions*: the same server-side
study (SMT on vs off; C1E on vs off) performed under two client
configurations can report different speedups and even different
verdicts.  This module encodes the paper's decision rule -- two
conditions differ only when their non-parametric CIs do not overlap --
and a detector for the Fig. 3 situation where LP and HP clients
disagree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import StatisticsError
from repro.stats.ci import ConfidenceInterval, nonparametric_median_ci


class Verdict(enum.Enum):
    """Outcome of one A-vs-B comparison."""

    A_FASTER = "a_faster"
    B_FASTER = "b_faster"
    INDISTINGUISHABLE = "same"


@dataclass(frozen=True)
class Comparison:
    """One A-vs-B comparison at one operating point.

    Attributes:
        label_a: name of condition A (e.g. ``"C1E off"``).
        label_b: name of condition B (e.g. ``"C1E on"``).
        ci_a: median CI of condition A's samples.
        ci_b: median CI of condition B's samples.
        ratio: mean(B) / mean(A) -- the paper's slowdown ratio
            convention (Fig. 2c: SMT_OFF / SMT_ON uses A=on, B=off).
        verdict: the CI-overlap decision.
    """

    label_a: str
    label_b: str
    ci_a: ConfidenceInterval
    ci_b: ConfidenceInterval
    ratio: float
    verdict: Verdict

    def describe(self) -> str:
        """One-line human-readable conclusion."""
        if self.verdict is Verdict.INDISTINGUISHABLE:
            return (f"{self.label_a} and {self.label_b} are statistically "
                    f"indistinguishable (CIs overlap)")
        winner, loser = (
            (self.label_a, self.label_b)
            if self.verdict is Verdict.A_FASTER
            else (self.label_b, self.label_a))
        return (f"{winner} is faster than {loser} "
                f"(ratio {self.ratio:.3f}, CIs do not overlap)")


def compare_conditions(samples_a: Sequence[float],
                       samples_b: Sequence[float],
                       label_a: str = "A", label_b: str = "B",
                       confidence: float = 0.95) -> Comparison:
    """Compare two sample sets with the paper's CI-overlap rule.

    Lower is better (the samples are latencies).
    """
    ci_a = nonparametric_median_ci(samples_a, confidence)
    ci_b = nonparametric_median_ci(samples_b, confidence)
    mean_a = float(np.mean(np.asarray(samples_a, dtype=float)))
    mean_b = float(np.mean(np.asarray(samples_b, dtype=float)))
    if mean_a == 0:
        raise StatisticsError("condition A has zero mean latency")
    ratio = mean_b / mean_a
    if ci_a.overlaps(ci_b):
        verdict = Verdict.INDISTINGUISHABLE
    elif ci_a.upper < ci_b.lower:
        verdict = Verdict.A_FASTER
    else:
        verdict = Verdict.B_FASTER
    return Comparison(
        label_a=label_a, label_b=label_b,
        ci_a=ci_a, ci_b=ci_b, ratio=ratio, verdict=verdict,
    )


@dataclass(frozen=True)
class ConclusionConflict:
    """Two observers reached different verdicts for the same study.

    Attributes:
        operating_point: e.g. the QPS at which the conflict occurs.
        verdicts: observer label -> that observer's verdict.
    """

    operating_point: float
    verdicts: Dict[str, Verdict]

    def describe(self) -> str:
        parts = ", ".join(
            f"{observer}: {verdict.value}"
            for observer, verdict in sorted(self.verdicts.items()))
        return (f"conflicting conclusions at {self.operating_point:g}: "
                f"{parts}")


def detect_conflicts(per_observer: Dict[str, Dict[float, Comparison]]
                     ) -> List[ConclusionConflict]:
    """Find operating points where observers' verdicts disagree.

    Args:
        per_observer: observer label (e.g. ``"LP"``, ``"HP"``) ->
            {operating point -> comparison}.

    Returns:
        One :class:`ConclusionConflict` per operating point where at
        least two observers disagree, sorted by operating point.
    """
    if not per_observer:
        return []
    points: set = set()
    for comparisons in per_observer.values():
        points.update(comparisons.keys())
    conflicts: List[ConclusionConflict] = []
    for point in sorted(points):
        verdicts = {
            observer: comparisons[point].verdict
            for observer, comparisons in per_observer.items()
            if point in comparisons
        }
        if len(set(verdicts.values())) > 1:
            conflicts.append(ConclusionConflict(
                operating_point=point, verdicts=verdicts))
    return conflicts
