"""Experimental-evaluation-time estimation (Section V-C, Table IV).

Given one condition's per-run samples, estimate how many repetitions a
1%-error, 95%-confidence result needs -- with the parametric formula
and with CONFIRM -- plus the Shapiro-Wilk verdict that tells you which
estimate to trust, and the implied wall-clock evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.stats.normality import NormalityResult, shapiro_wilk
from repro.stats.repetitions import (
    confirm_repetitions,
    parametric_repetitions,
)

#: The paper's run duration (2 minutes), used for wall-clock estimates.
DEFAULT_RUN_SECONDS = 120.0


@dataclass(frozen=True)
class EvaluationTimeEstimate:
    """Repetition counts and evaluation time for one condition.

    Attributes:
        parametric_runs: equation-3 estimate.
        confirm_runs: CONFIRM estimate, or ``None`` when even the full
            sample set did not converge (Table IV prints ``> n``).
        sample_count: how many pilot runs the estimates are based on.
        normality: the Shapiro-Wilk result on the pilot samples.
        run_seconds: duration of one run.
    """

    parametric_runs: int
    confirm_runs: Optional[int]
    sample_count: int
    normality: NormalityResult
    run_seconds: float

    # ------------------------------------------------------------------
    @property
    def recommended_runs(self) -> int:
        """The estimate matching the data's distribution.

        Normal samples -> parametric; non-normal -> CONFIRM.  When
        CONFIRM did not converge, the pilot count itself is the floor.
        """
        if self.normality.normal:
            return self.parametric_runs
        if self.confirm_runs is not None:
            return self.confirm_runs
        return self.sample_count + 1

    @property
    def evaluation_seconds(self) -> float:
        """Wall-clock time to statistical confidence."""
        return self.recommended_runs * self.run_seconds

    def confirm_display(self) -> str:
        """Table IV's rendering: a number or ``"> n"``."""
        if self.confirm_runs is None:
            return f">{self.sample_count}"
        return str(self.confirm_runs)

    def format_row(self, label: str) -> str:
        """One Table IV row."""
        return (f"{label:<18} parametric={self.parametric_runs:>5d}  "
                f"CONFIRM={self.confirm_display():>5}  "
                f"Shapiro-Wilk={self.normality.verdict}")


def estimate_evaluation_time(
        samples: Sequence[float],
        error_pct: float = 1.0,
        confidence: float = 0.95,
        run_seconds: float = DEFAULT_RUN_SECONDS,
        rng: Optional[np.random.Generator] = None,
        ) -> EvaluationTimeEstimate:
    """Estimate repetitions/time for one condition's pilot samples.

    Args:
        samples: per-run summary samples (e.g. 50 run averages).
        error_pct: target CI half-width, percent of the point estimate.
        confidence: confidence level.
        run_seconds: duration of one run for wall-clock conversion.
        rng: randomness for CONFIRM's subset draws (seeded default).
    """
    array = np.asarray(samples, dtype=float)
    return EvaluationTimeEstimate(
        parametric_runs=parametric_repetitions(
            array, error_pct=error_pct, confidence=confidence),
        confirm_runs=confirm_repetitions(
            array, error=error_pct / 100.0, confidence=confidence,
            rng=rng),
        sample_count=int(array.size),
        normality=shapiro_wilk(array),
        run_seconds=run_seconds,
    )
