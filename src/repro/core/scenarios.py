"""The scenario taxonomy of Table III.

Each scenario combines a generator design (inter-arrival rate
implementation and point of measurement), a client configuration state
(tuned or not), and a service response-time regime (small or big), and
records whether the combination risks wrong conclusions and where the
paper evaluates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Scenario:
    """One row of Table III.

    Attributes:
        generator_design: e.g. ``"open-loop time-sensitive"``.
        point_of_measurement: where latency is timestamped
            (``"in-app"`` for all the paper's generators).
        client_tuned: True when the client configuration is tuned (HP).
        response_time: ``"small"`` (microseconds) or ``"big"``
            (milliseconds).
        risky: True when the combination can cause wrong conclusions
            (the paper's X mark).
        sections: paper sections evaluating the scenario.
    """

    generator_design: str
    point_of_measurement: str
    client_tuned: bool
    response_time: str
    risky: bool
    sections: Tuple[str, ...]

    @property
    def client_conf(self) -> str:
        """Table III's wording: ``"tuned"`` / ``"not-tuned"``."""
        return "tuned" if self.client_tuned else "not-tuned"


def scenario_table() -> List[Scenario]:
    """The four scenarios of Table III, in the paper's order."""
    return [
        Scenario(
            generator_design="open-loop time-sensitive",
            point_of_measurement="in-app",
            client_tuned=True,
            response_time="small",
            risky=False,
            sections=("5.1", "5.3"),
        ),
        Scenario(
            generator_design="open-loop time-sensitive",
            point_of_measurement="in-app",
            client_tuned=False,
            response_time="small",
            risky=True,
            sections=("5.1", "5.3"),
        ),
        Scenario(
            generator_design="open-loop time-insensitive",
            point_of_measurement="in-app",
            client_tuned=True,
            response_time="big",
            risky=False,
            sections=("5.2",),
        ),
        Scenario(
            generator_design="open-loop time-insensitive",
            point_of_measurement="in-app",
            client_tuned=False,
            response_time="big",
            risky=False,
            sections=("5.2",),
        ),
    ]


def risky_scenarios() -> List[Scenario]:
    """Scenarios the paper marks as able to cause wrong conclusions."""
    return [scenario for scenario in scenario_table() if scenario.risky]
