"""Experiment runner: the paper's repetition protocol.

An *experiment* is N repetitions of a run, each with a fresh testbed
(fresh simulator, fresh seeds -- the reset that makes per-run samples
independent) under identical configuration.  The result object exposes
the per-run sample arrays and the paper's summary statistics:
non-parametric median CIs for the average and 99th-percentile
latencies.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.core.testbed import RunMetrics, Testbed
from repro.errors import ExperimentError
from repro.stats.ci import ConfidenceInterval, nonparametric_median_ci
from repro.stats.descriptive import SummaryStats, describe

#: Default repetition count (the paper: "each experiment is the
#: average of 50 runs").
DEFAULT_RUNS = 50


@dataclass
class ExperimentResult:
    """All repetitions of one experimental condition.

    Attributes:
        label: condition label, e.g. ``"LP-SMToff"``.
        workload: workload name.
        qps: offered load.
        runs: one :class:`RunMetrics` per repetition, in seed order.
        metadata: free-form extras (e.g. the synthetic delay).
    """

    label: str
    workload: str
    qps: float
    runs: List[RunMetrics]
    metadata: Dict[str, float] = field(default_factory=dict)
    #: Lazily-built per-metric sample arrays.  Figure studies read the
    #: same series many times (medians, ratios, CI comparisons); each
    #: array is built from the runs once and then shared, returned
    #: read-only.  Rebuilt never -- runs are append-complete by the
    #: time a result is consumed.
    _sample_cache: Dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    def _samples(self, attr: str) -> np.ndarray:
        cached = self._sample_cache.get(attr)
        if cached is None:
            cached = np.array([getattr(run, attr) for run in self.runs])
            cached.setflags(write=False)
            self._sample_cache[attr] = cached
        return cached

    def avg_samples(self) -> np.ndarray:
        """Per-run average response times (the Fig. 2a/3a samples)."""
        return self._samples("avg_us")

    def p99_samples(self) -> np.ndarray:
        """Per-run 99th-percentile latencies (Fig. 2b/3b samples)."""
        return self._samples("p99_us")

    def true_avg_samples(self) -> np.ndarray:
        """Per-run NIC-point averages (ground truth)."""
        return self._samples("true_avg_us")

    def true_p99_samples(self) -> np.ndarray:
        """Per-run NIC-point 99th percentiles (ground truth)."""
        return self._samples("true_p99_us")

    # ------------------------------------------------------------------
    def median_avg_ci(self, confidence: float = 0.95
                      ) -> ConfidenceInterval:
        """Non-parametric median CI of the average response time."""
        return nonparametric_median_ci(self.avg_samples(), confidence)

    def median_p99_ci(self, confidence: float = 0.95
                      ) -> ConfidenceInterval:
        """Non-parametric median CI of the 99th-percentile latency."""
        return nonparametric_median_ci(self.p99_samples(), confidence)

    def avg_stats(self) -> SummaryStats:
        """Descriptive summary of the per-run averages."""
        return describe(self.avg_samples())

    def p99_stats(self) -> SummaryStats:
        """Descriptive summary of the per-run 99th percentiles."""
        return describe(self.p99_samples())

    def stdev_avg_us(self) -> float:
        """Run-to-run standard deviation of the average (Fig. 5)."""
        return self.avg_stats().std

    def mean_server_utilization(self) -> float:
        """Average first-tier utilization across runs."""
        return float(np.mean(
            [run.server_utilization for run in self.runs]))

    def mean_node_utilizations(self) -> tuple:
        """Per-node utilization averaged across runs (cluster runs).

        Empty for single-server results.  Runs of one condition share
        a topology, so the per-run tuples always align.
        """
        per_run = [run.node_utilizations for run in self.runs
                   if run.node_utilizations]
        if not per_run:
            return ()
        return tuple(float(v) for v in np.mean(per_run, axis=0))


class Experiment:
    """N repetitions of one condition, with environment reset."""

    def __init__(self, builder: Callable[[int], Testbed],
                 runs: int = DEFAULT_RUNS, base_seed: int = 0,
                 label: str = "") -> None:
        if runs < 1:
            raise ExperimentError(f"runs must be >= 1, got {runs}")
        self._builder = builder
        self.runs = int(runs)
        self.base_seed = int(base_seed)
        self.label = str(label)

    def run(self) -> ExperimentResult:
        """Execute all repetitions and collect per-run metrics."""
        metrics: List[RunMetrics] = []
        workload = ""
        qps = 0.0
        for repetition in range(self.runs):
            testbed = self._builder(self.base_seed + repetition)
            workload = testbed.workload
            qps = testbed.qps
            metrics.append(testbed.run())
        return ExperimentResult(
            label=self.label or workload,
            workload=workload,
            qps=qps,
            runs=metrics,
        )


def run_experiment(builder: Callable[[int], Testbed],
                   runs: int = DEFAULT_RUNS, base_seed: int = 0,
                   label: str = "") -> ExperimentResult:
    """Deprecated shim: build, run and summarize an experiment.

    Construct an :class:`~repro.api.ExperimentPlan` instead -- it
    reaches the same :class:`Experiment` machinery through a
    validated, serializable spec::

        from repro.api import experiment
        result = (experiment("memcached").client("LP")
                  .load(qps=100_000).policy(runs=10).run())
    """
    warnings.warn(
        "run_experiment() is deprecated; construct an ExperimentPlan "
        "via repro.api (experiment(...).build()) and call plan.run()",
        DeprecationWarning, stacklevel=2)
    return Experiment(builder, runs=runs, base_seed=base_seed,
                      label=label).run()
