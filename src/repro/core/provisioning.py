"""QoS capacity analysis and resource provisioning (Section V-A).

The paper's datacenter framing: an experiment determines the highest
load a machine sustains without violating a QoS target (e.g. 99th
percentile <= 400 us), and that number sizes the fleet.  A client
whose measurements are inflated finds a *lower* sustainable load and
therefore provisions *more* machines -- the paper's example has the LP
client demanding 1.6x the machines the HP client would.

:func:`capacity_under_qos` finds the sustainable load from a measured
load sweep; :func:`provisioning_plan` turns capacities into machine
counts; :func:`provisioning_error` quantifies the over/under-provision
between two observers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import ExperimentError


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of a QoS capacity search.

    Attributes:
        qos_target_us: the latency target.
        metric: which metric the target applies to (e.g. ``"p99"``).
        capacity_qps: highest examined load meeting the target, or 0.0
            when even the lowest load violates it.
        violated_at_qps: first examined load violating the target, or
            ``None`` if none did (capacity is sweep-limited).
        interpolated_capacity_qps: load at which linear interpolation
            between the last passing and first violating sweep points
            crosses the QoS target; ``None`` unless interpolation was
            requested and both bracketing points exist.  Lets a coarse
            sweep provision almost as accurately as a fine one.
    """

    qos_target_us: float
    metric: str
    capacity_qps: float
    violated_at_qps: Optional[float]
    interpolated_capacity_qps: Optional[float] = None

    @property
    def sweep_limited(self) -> bool:
        """True when the sweep never reached a violation."""
        return self.violated_at_qps is None

    @property
    def best_capacity_qps(self) -> float:
        """The interpolated capacity when available, else the grid one."""
        if self.interpolated_capacity_qps is not None:
            return self.interpolated_capacity_qps
        return self.capacity_qps


def capacity_under_qos(latency_by_qps: Mapping[float, float],
                       qos_target_us: float,
                       metric: str = "p99",
                       interpolate: bool = False) -> CapacityResult:
    """Find the highest load whose measured latency meets the target.

    Args:
        latency_by_qps: load -> measured latency (one observer's view).
        qos_target_us: the QoS latency bound.
        metric: label recorded in the result.
        interpolate: also estimate where the latency curve crosses the
            target between the last passing and first violating loads
            (linear in QPS), recovering the resolution a coarse sweep
            grid loses.  The grid answer in ``capacity_qps`` is
            unchanged either way.

    Raises:
        ExperimentError: on an empty sweep or non-positive target.
    """
    if not latency_by_qps:
        raise ExperimentError("empty load sweep")
    if qos_target_us <= 0:
        raise ExperimentError(
            f"QoS target must be positive, got {qos_target_us}"
        )
    capacity = 0.0
    passed_any = False
    violated_at: Optional[float] = None
    for qps in sorted(latency_by_qps):
        if latency_by_qps[qps] <= qos_target_us:
            capacity = qps
            passed_any = True
        else:
            violated_at = qps
            break
    interpolated: Optional[float] = None
    if interpolate and passed_any and violated_at is not None:
        latency_pass = latency_by_qps[capacity]
        latency_viol = latency_by_qps[violated_at]
        # latency_pass <= target < latency_viol, so the span is
        # strictly positive and the crossing fraction lies in [0, 1).
        span = latency_viol - latency_pass
        fraction = (qos_target_us - latency_pass) / span
        interpolated = capacity + (violated_at - capacity) * fraction
    return CapacityResult(
        qos_target_us=qos_target_us, metric=metric,
        capacity_qps=capacity, violated_at_qps=violated_at,
        interpolated_capacity_qps=interpolated)


@dataclass(frozen=True)
class ProvisioningPlan:
    """Machines needed to serve a target aggregate load.

    Attributes:
        target_qps: the aggregate production load.
        per_machine_qps: sustainable load per machine -- the capacity
            value the plan was actually sized from (the interpolated
            crossing when the capacity search computed one and the
            caller did not opt out, else the grid capacity).
        machines: machine count, rounded up.
    """

    target_qps: float
    per_machine_qps: float
    machines: int


def provisioning_plan(target_qps: float,
                      capacity: CapacityResult,
                      use_interpolated: bool = True) -> ProvisioningPlan:
    """Size a fleet from one observer's capacity result.

    Sizes from :attr:`CapacityResult.best_capacity_qps`: when the
    capacity search interpolated the QoS crossing, that finer estimate
    -- not the coarse grid point below it -- is what the fleet math
    uses, and ``per_machine_qps`` records it.  Pass
    ``use_interpolated=False`` to pin the grid answer (the pre-fix
    behavior, useful for comparing against sweep-grid-only tooling).

    Raises:
        ExperimentError: when the selected capacity is zero (no load
            met the QoS target -- nothing can be provisioned from it).
    """
    if target_qps <= 0:
        raise ExperimentError(
            f"target_qps must be positive, got {target_qps}"
        )
    per_machine = (capacity.best_capacity_qps if use_interpolated
                   else capacity.capacity_qps)
    if per_machine <= 0:
        raise ExperimentError(
            "observer found no load meeting the QoS target; cannot "
            "derive a provisioning plan"
        )
    machines = math.ceil(target_qps / per_machine)
    return ProvisioningPlan(
        target_qps=target_qps,
        per_machine_qps=per_machine,
        machines=machines)


def provisioning_error(observers: Mapping[str, CapacityResult],
                       target_qps: float,
                       use_interpolated: bool = True) -> Dict[str, float]:
    """Relative fleet sizes implied by each observer.

    Each observer's fleet is sized by :func:`provisioning_plan`, so
    interpolated capacities (when present) drive the comparison unless
    ``use_interpolated=False``.

    Returns:
        observer label -> machines(observer) / min(machines) -- 1.0 is
        the most optimistic observer; the paper's LP/HP example yields
        {"HP": 1.0, "LP": 1.6}.
    """
    plans = {
        label: provisioning_plan(target_qps, capacity,
                                 use_interpolated=use_interpolated)
        for label, capacity in observers.items()
    }
    smallest = min(plan.machines for plan in plans.values())
    return {
        label: plan.machines / smallest
        for label, plan in plans.items()
    }
