"""Configuration recommendations (paper Section VI).

A rule-based encoding of the paper's guidance:

* time-sensitive (block-wait) generators: tune the client for
  performance, but flag the representativeness question when the
  production environment is power-managed;
* time-insensitive (busy-wait) generators: match the target
  environment; when unknown, explore the configuration space;
* always size repetition counts with the distribution-appropriate
  method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config.knobs import HardwareConfig
from repro.config.presets import HP_CLIENT
from repro.loadgen.base import GeneratorDesign


@dataclass(frozen=True)
class Recommendation:
    """The advice for one experimental setup.

    Attributes:
        client_config: the suggested client configuration, or ``None``
            when the advice is to explore multiple configurations.
        rationale: ordered, human-readable reasoning.
        explore_space: True when a configuration-space exploration is
            recommended instead of a single configuration.
    """

    client_config: Optional[HardwareConfig]
    rationale: List[str]
    explore_space: bool

    def render(self) -> str:
        """Readable multi-line advice."""
        lines = []
        if self.explore_space:
            lines.append("Recommendation: explore client configurations "
                         "(homogeneous and heterogeneous with the server).")
        elif self.client_config is not None:
            lines.append(f"Recommendation: configure the client as "
                         f"{self.client_config.name} "
                         f"({self.client_config.describe()}).")
        for index, reason in enumerate(self.rationale, start=1):
            lines.append(f"  {index}. {reason}")
        return "\n".join(lines)


def recommend(design: GeneratorDesign,
              target_config: Optional[HardwareConfig] = None,
              target_known: bool = False) -> Recommendation:
    """Section VI's recommendation for one generator design.

    Args:
        design: the workload generator's taxonomy entry.
        target_config: the production environment's configuration, if
            known.
        target_known: whether the production configuration is known.

    Returns:
        The paper's advice as a structured :class:`Recommendation`.
    """
    rationale: List[str] = []

    if design.time_sensitive:
        rationale.append(
            "The inter-arrival implementation is time-sensitive "
            "(block-wait): client hardware timing overheads shift "
            "request send times away from the target distribution, so "
            "the client must be tuned for performance.")
        rationale.append(
            "A performance-tuned client mitigates C-state and DVFS "
            "wake overheads, letting requests leave as close as "
            "possible to the inter-arrival schedule.")
        if target_known and target_config is not None:
            if target_config.enabled_cstates != frozenset({"C0"}):
                rationale.append(
                    "Caution: the target environment enables sleep "
                    "states, so a performance-tuned point of "
                    "measurement will under-estimate production "
                    "end-to-end latency; expect resource "
                    "over/under-provisioning if this is ignored.")
        rationale.append(
            "Size repetition counts with the method matching the "
            "sample distribution (equation 3 when normal, CONFIRM "
            "otherwise).")
        return Recommendation(
            client_config=HP_CLIENT,
            rationale=rationale,
            explore_space=False,
        )

    # Time-insensitive: the busy-wait loop protects send timing, so the
    # choice is about representativeness, not accuracy.
    rationale.append(
        "The inter-arrival implementation is time-insensitive "
        "(busy-wait): send timing is robust to sleep states, so the "
        "client configuration should match the target environment.")
    if target_known and target_config is not None:
        rationale.append(
            f"The target environment is known: mirror it "
            f"({target_config.describe()}).")
        rationale.append(
            "Size repetition counts with the method matching the "
            "sample distribution (equation 3 when normal, CONFIRM "
            "otherwise).")
        return Recommendation(
            client_config=target_config,
            rationale=rationale,
            explore_space=False,
        )
    rationale.append(
        "The target environment is unknown: evaluate the technique "
        "under several client/server configuration scenarios "
        "(space exploration), homogeneous and heterogeneous.")
    rationale.append(
        "Size repetition counts with the method matching the sample "
        "distribution (equation 3 when normal, CONFIRM otherwise).")
    return Recommendation(
        client_config=None,
        rationale=rationale,
        explore_space=True,
    )
