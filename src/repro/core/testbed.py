"""A testbed: one assembled client/server deployment, run once.

A :class:`Testbed` owns a simulator, a service, and a workload
generator; :meth:`Testbed.run` drives the run to completion and
returns the run's :class:`RunMetrics` -- the per-run summary (average
response time, 99th percentile, ...) that becomes **one sample** in an
experiment, exactly matching the paper's one-sample-per-run protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.config.knobs import HardwareConfig
from repro.errors import ExperimentError
from repro.loadgen.base import LoadGenerator
from repro.loadgen.measurement import PointOfMeasurement, RunSamples
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


@dataclass(frozen=True)
class RunMetrics:
    """Summary statistics of one run (one experiment sample).

    Attributes:
        avg_us: average response time at the generator.
        p99_us: 99th-percentile latency at the generator.
        true_avg_us: average latency at the NIC (ground truth).
        true_p99_us: 99th percentile at the NIC.
        requests: measured (post-warmup) request count.
        seed: the run's root seed.
        server_utilization: time-averaged utilization of the first
            service tier (for a cluster: the mean across nodes).
        node_utilizations: per-node utilizations for cluster
            topologies, in node order; empty for the single-server
            testbed (so single-server metrics -- and their stored
            serialized form -- are unchanged).
        obs_metrics: flattened ``(name, value)`` pairs harvested from
            the run's :class:`~repro.obs.core.Observability` context;
            empty when observability is off (the default), so
            unobserved metrics -- and their stored serialized form --
            are unchanged.
    """

    avg_us: float
    p99_us: float
    true_avg_us: float
    true_p99_us: float
    requests: int
    seed: int
    server_utilization: float
    node_utilizations: Tuple[float, ...] = ()
    obs_metrics: Tuple[Tuple[str, float], ...] = ()

    @property
    def client_bias_avg_us(self) -> float:
        """Average client-caused measurement error this run."""
        return self.avg_us - self.true_avg_us


def service_utilization(service) -> float:
    """Utilization of any service shape: a station (``utilization``),
    a tiered service (first tier's station), or 0.0 when unknown.

    The single duck-typing probe shared by the testbed summary and
    the cluster layer's per-backend accounting, so every consumer
    agrees on what a service's utilization means.
    """
    if hasattr(service, "utilization"):
        return float(service.utilization())
    tiers = getattr(service, "tiers", None)
    if tiers:
        return float(tiers[0].station.utilization())
    return 0.0


class Testbed:
    """One deployment of a workload, valid for exactly one run."""

    def __init__(self, sim: Simulator, streams: RandomStreams,
                 generator: LoadGenerator, service,
                 workload: str, qps: float,
                 client_config: HardwareConfig,
                 server_config: HardwareConfig) -> None:
        self.sim = sim
        self.streams = streams
        self.generator = generator
        self.service = service
        self.workload = str(workload)
        self.qps = float(qps)
        self.client_config = client_config
        self.server_config = server_config
        self._ran = False

    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        """Execute the run to completion and summarize it.

        Raises:
            ExperimentError: if called twice, or if the run ends with
                outstanding requests (a wiring bug).
        """
        if self._ran:
            raise ExperimentError(
                "a Testbed is single-use; build a fresh one per run "
                "(the paper resets the environment between runs)"
            )
        self._ran = True
        self.generator.start()
        self.sim.run()
        expected = self.generator.num_requests
        if not self.generator.drained:
            raise ExperimentError(
                f"run ended with {self.generator.completed}/{expected} "
                f"requests completed and {self.sim.live_pending_events} "
                f"live events pending"
            )
        # The summary reads the columnar buffer directly: each latency
        # column is computed once and shared between the average and
        # percentile accessors; no Request objects are materialized.
        samples = self.generator.samples
        utilization = service_utilization(self.service)
        per_node = getattr(self.service, "node_utilizations", None)
        node_utilizations = (tuple(float(u) for u in per_node())
                             if per_node is not None else ())
        obs = getattr(self.sim, "obs", None)
        obs_metrics = obs.finalize(self) if obs is not None else ()
        return RunMetrics(
            avg_us=samples.average_latency_us(PointOfMeasurement.GENERATOR),
            p99_us=samples.percentile_latency_us(
                99.0, PointOfMeasurement.GENERATOR),
            true_avg_us=samples.average_latency_us(PointOfMeasurement.NIC),
            true_p99_us=samples.percentile_latency_us(
                99.0, PointOfMeasurement.NIC),
            requests=samples.measured_count,
            seed=self.streams.root_seed,
            server_utilization=utilization,
            node_utilizations=node_utilizations,
            obs_metrics=obs_metrics,
        )

    @property
    def samples(self) -> RunSamples:
        """The run's raw samples (available after :meth:`run`)."""
        return self.generator.samples
