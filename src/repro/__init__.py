"""repro: reproduction of "Taming Performance Variability caused by
Client-Side Hardware Configuration" (Antoniou, Volos, Sazeides --
IISWC 2024).

The library has three faces:

* a **testbed simulator** -- a discrete-event model of a small
  client-server cluster with Skylake-class hardware behaviour
  (C-states, DVFS, SMT, uncore, timers) and the paper's four workloads
  (Memcached, HDSearch, Social Network, synthetic);
* a **host tuning toolkit** -- sysfs/MSR/grub/cpupower tooling that
  realizes the paper's LP/HP/baseline configurations on a real Linux
  machine (or a fake filesystem for tests);
* a **statistics + methodology layer** -- non-parametric CIs,
  Shapiro-Wilk, CONFIRM, conclusion-conflict detection and the
  Section VI recommendation rules.

Quickstart::

    from repro import (LP_CLIENT, HP_CLIENT, build_memcached_testbed,
                       run_experiment)
    result = run_experiment(
        lambda seed: build_memcached_testbed(
            seed, client_config=LP_CLIENT, qps=100_000,
            num_requests=1_000),
        runs=10)
    print(result.median_avg_ci().format("us"))
"""

from repro.config import (
    HP_CLIENT,
    LP_CLIENT,
    SERVER_BASELINE,
    FrequencyDriver,
    FrequencyGovernor,
    HardwareConfig,
    UncorePolicy,
    client_by_name,
    server_with_c1e,
    server_with_smt,
)
from repro.core import (
    Experiment,
    ExperimentResult,
    RunMetrics,
    Testbed,
    compare_conditions,
    detect_conflicts,
    estimate_evaluation_time,
    recommend,
    run_experiment,
    scenario_table,
)
from repro.loadgen import GeneratorDesign, PointOfMeasurement
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.stats import (
    confirm_repetitions,
    nonparametric_median_ci,
    parametric_mean_ci,
    parametric_repetitions,
    shapiro_wilk,
)
from repro.workloads import (
    build_hdsearch_testbed,
    build_memcached_testbed,
    build_socialnetwork_testbed,
    build_synthetic_testbed,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "HardwareConfig",
    "FrequencyDriver",
    "FrequencyGovernor",
    "UncorePolicy",
    "LP_CLIENT",
    "HP_CLIENT",
    "SERVER_BASELINE",
    "client_by_name",
    "server_with_smt",
    "server_with_c1e",
    "SkylakeParameters",
    "DEFAULT_PARAMETERS",
    # experiments
    "Testbed",
    "RunMetrics",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
    "compare_conditions",
    "detect_conflicts",
    "estimate_evaluation_time",
    "recommend",
    "scenario_table",
    "GeneratorDesign",
    "PointOfMeasurement",
    # statistics
    "nonparametric_median_ci",
    "parametric_mean_ci",
    "shapiro_wilk",
    "parametric_repetitions",
    "confirm_repetitions",
    # workloads
    "build_memcached_testbed",
    "build_hdsearch_testbed",
    "build_socialnetwork_testbed",
    "build_synthetic_testbed",
]
