"""repro: reproduction of "Taming Performance Variability caused by
Client-Side Hardware Configuration" (Antoniou, Volos, Sazeides --
IISWC 2024).

The library has three faces:

* a **testbed simulator** -- a discrete-event model of a small
  client-server cluster with Skylake-class hardware behaviour
  (C-states, DVFS, SMT, uncore, timers) and the paper's four workloads
  (Memcached, HDSearch, Social Network, synthetic);
* a **host tuning toolkit** -- sysfs/MSR/grub/cpupower tooling that
  realizes the paper's LP/HP/baseline configurations on a real Linux
  machine (or a fake filesystem for tests);
* a **statistics + methodology layer** -- non-parametric CIs,
  Shapiro-Wilk, CONFIRM, conclusion-conflict detection and the
  Section VI recommendation rules.

All of it is driven through one public surface, :mod:`repro.api`:
typed, frozen, serializable :class:`ExperimentPlan` specs that the
CLI, campaign sweeps, figure studies and examples all compile down
to.

Quickstart::

    from repro import experiment

    result = (experiment("memcached")
              .client("LP")
              .load(qps=100_000, num_requests=1_000)
              .policy(runs=10)
              .run())
    print(result.median_avg_ci().format("us"))

The legacy ``build_*_testbed`` / ``run_experiment`` entry points
remain as deprecated shims; see the README's "Public API" migration
table.
"""

from repro.api import (
    ExperimentPlan,
    HardwareSpec,
    LoadSpec,
    PlanBuilder,
    RunPolicy,
    WorkloadSpec,
    experiment,
)
from repro.config import (
    HP_CLIENT,
    LP_CLIENT,
    SERVER_BASELINE,
    FrequencyDriver,
    FrequencyGovernor,
    HardwareConfig,
    UncorePolicy,
    client_by_name,
    server_with_c1e,
    server_with_smt,
)
from repro.core import (
    Experiment,
    ExperimentResult,
    RunMetrics,
    Testbed,
    compare_conditions,
    detect_conflicts,
    estimate_evaluation_time,
    recommend,
    run_experiment,
    scenario_table,
)
from repro.loadgen import GeneratorDesign, PointOfMeasurement
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.stats import (
    confirm_repetitions,
    nonparametric_median_ci,
    parametric_mean_ci,
    parametric_repetitions,
    shapiro_wilk,
)
from repro.workloads import (
    build_hdsearch_testbed,
    build_memcached_testbed,
    build_socialnetwork_testbed,
    build_synthetic_testbed,
)

#: Kept in sync with ``version`` in pyproject.toml.
__version__ = "0.3.0"

__all__ = [
    "__version__",
    # the unified experiment API (repro.api)
    "ExperimentPlan",
    "WorkloadSpec",
    "LoadSpec",
    "HardwareSpec",
    "RunPolicy",
    "PlanBuilder",
    "experiment",
    # configuration
    "HardwareConfig",
    "FrequencyDriver",
    "FrequencyGovernor",
    "UncorePolicy",
    "LP_CLIENT",
    "HP_CLIENT",
    "SERVER_BASELINE",
    "client_by_name",
    "server_with_smt",
    "server_with_c1e",
    "SkylakeParameters",
    "DEFAULT_PARAMETERS",
    # experiments
    "Testbed",
    "RunMetrics",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
    "compare_conditions",
    "detect_conflicts",
    "estimate_evaluation_time",
    "recommend",
    "scenario_table",
    "GeneratorDesign",
    "PointOfMeasurement",
    # statistics
    "nonparametric_median_ci",
    "parametric_mean_ci",
    "shapiro_wilk",
    "parametric_repetitions",
    "confirm_repetitions",
    # workloads
    "build_memcached_testbed",
    "build_hdsearch_testbed",
    "build_socialnetwork_testbed",
    "build_synthetic_testbed",
]
