"""Minimal ASCII line charts for figure-style output.

The benchmark harness prints numeric series; this module adds a
terminal-friendly chart so the Fig. 2/3/7 shapes are visible at a
glance without matplotlib (which is not a dependency).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import StatisticsError

#: Glyphs assigned to series in insertion order.
GLYPHS = "*o+x#@%&"


def ascii_chart(series: Dict[str, Sequence[Tuple[float, float]]],
                width: int = 64, height: int = 16,
                title: str = "", y_label: str = "") -> str:
    """Render several (x, y) series on one character grid.

    Args:
        series: label -> [(x, y), ...]; all series share the axes.
        width/height: plot area size in characters.
        title: heading line.
        y_label: unit appended to the y-axis bounds.

    Returns:
        A multi-line string: title, plot, x-range line, legend.
    """
    if not series:
        raise StatisticsError("nothing to plot")
    if width < 8 or height < 4:
        raise StatisticsError("plot area too small")
    points = [point for line in series.values() for point in line]
    if not points:
        raise StatisticsError("all series are empty")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid: List[List[str]] = [
        [" "] * width for _ in range(height)]

    def place(x: float, y: float, glyph: str) -> None:
        column = int((x - x_low) / (x_high - x_low) * (width - 1))
        row = int((y - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][column] = glyph

    legend = []
    for index, (label, line) in enumerate(series.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        legend.append(f"{glyph} {label}")
        for x, y in line:
            place(x, y, glyph)

    lines: List[str] = []
    if title:
        lines.append(title)
    top = f"{y_high:.4g}{(' ' + y_label) if y_label else ''}"
    lines.append(top)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{y_low:.4g} .. x: [{x_low:.4g}, {x_high:.4g}]")
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)


def chart_from_grid(grid, metric: str = "avg", title: str = "",
                    width: int = 64, height: int = 16) -> str:
    """Chart every (client, condition) line of a StudyGrid."""
    series = {
        f"{client}-{condition}": grid.series(client, condition, metric)
        for (client, condition) in grid.cells
    }
    return ascii_chart(series, width=width, height=height,
                       title=title or f"{grid.workload}: {metric}",
                       y_label="us")
