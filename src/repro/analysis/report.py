"""Markdown report writer for experiments and studies.

Turns :class:`~repro.core.experiment.ExperimentResult` objects and
:class:`~repro.analysis.figures.StudyGrid` grids into a self-contained
markdown report: configuration tables, per-condition summaries with
CIs, conclusion analysis, and methodology notes (repetition counts,
normality) -- the artifact a user would attach to a paper or ticket.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.figures import StudyGrid
from repro.core.comparison import detect_conflicts
from repro.core.evaluation_time import estimate_evaluation_time
from repro.core.experiment import ExperimentResult
from repro.errors import InsufficientSamplesError


def experiment_section(result: ExperimentResult) -> List[str]:
    """Markdown lines summarizing one experiment condition."""
    stats = result.avg_stats()
    avg_ci = result.median_avg_ci()
    p99_ci = result.median_p99_ci()
    lines = [
        f"### {result.label} ({result.workload} @ {result.qps:g} QPS)",
        "",
        f"- runs: {stats.count}, requests/run: "
        f"{result.runs[0].requests}",
        f"- average response time (median, 95% CI): "
        f"{avg_ci.format('us')}",
        f"- 99th percentile (median, 95% CI): {p99_ci.format('us')}",
        f"- run-to-run stdev of the average: {stats.std:.2f} us",
        f"- mean server utilization: "
        f"{result.mean_server_utilization():.1%}",
    ]
    try:
        estimate = estimate_evaluation_time(
            result.avg_samples(), rng=np.random.default_rng(0))
    except InsufficientSamplesError:
        lines.append("- repetition estimate: skipped "
                     "(CONFIRM needs >= 10 pilot runs)")
    else:
        lines.append(
            f"- normality (Shapiro-Wilk): "
            f"{estimate.normality.verdict} "
            f"(p={estimate.normality.p_value:.4f})")
        lines.append(
            f"- repetitions to 1%-error 95% CI: "
            f"parametric={estimate.parametric_runs}, "
            f"CONFIRM={estimate.confirm_display()}")
    lines.append("")
    return lines


def study_report(grid: StudyGrid, title: str,
                 condition_a: Optional[str] = None,
                 condition_b: Optional[str] = None,
                 metric: str = "avg") -> str:
    """Full markdown report for one study grid.

    Args:
        grid: the study results.
        title: report heading.
        condition_a / condition_b: when given, adds a per-client
            conclusion section comparing the two conditions.
        metric: metric used for the conclusion analysis.
    """
    lines: List[str] = [f"# {title}", ""]
    lines.append(f"Workload: **{grid.workload}**; loads: "
                 + ", ".join(f"{qps:g}" for qps in grid.qps_list))
    lines.append("")

    lines.append("## Conditions")
    lines.append("")
    for label, config in grid.conditions.items():
        lines.append(f"- `{label}`: {config.describe()}")
    lines.append("")

    lines.append("## Results")
    lines.append("")
    header = "| series | " + " | ".join(
        f"{qps:g}" for qps in grid.qps_list) + " |"
    divider = "|---" * (len(grid.qps_list) + 1) + "|"
    lines.append(header)
    lines.append(divider)
    for (client, condition) in grid.cells:
        values = grid.series(client, condition, metric)
        row = (f"| {client}-{condition} | "
               + " | ".join(f"{value:.1f}" for _, value in values)
               + " |")
        lines.append(row)
    lines.append("")

    if condition_a and condition_b:
        lines.append(f"## Conclusions ({condition_a} vs {condition_b}, "
                     f"{metric})")
        lines.append("")
        per_observer = {}
        clients = sorted({client for client, _ in grid.cells})
        for client in clients:
            comparisons = grid.comparisons(
                client, condition_a, condition_b, metric)
            per_observer[client] = comparisons
            for qps, comparison in sorted(comparisons.items()):
                lines.append(f"- {client} @ {qps:g}: "
                             f"{comparison.describe()}")
        conflicts = detect_conflicts(per_observer)
        lines.append("")
        if conflicts:
            lines.append("**Conflicting conclusions detected:**")
            for conflict in conflicts:
                lines.append(f"- {conflict.describe()}")
        else:
            lines.append("No conflicting conclusions across clients.")
        lines.append("")

    lines.append("## Per-condition detail")
    lines.append("")
    for (client, condition), per_qps in grid.cells.items():
        for qps in grid.qps_list:
            lines.extend(experiment_section(per_qps[qps]))
    return "\n".join(lines)


def write_report(path: str, content: str) -> None:
    """Write a report to *path* (UTF-8)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
