"""Analysis layer: table renderers and figure-series builders.

Everything a benchmark or example needs to regenerate the paper's
tables (I-IV) and figures (2-9): survey data, sweep engines that run
the LP/HP x server-knob studies, and ASCII renderers that print the
same rows/series the paper reports.
"""

from repro.analysis.survey import SURVEY_ROWS, survey_counts
from repro.analysis.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.analysis.figures import (
    GraphStudyGrid,
    StudyGrid,
    graph_study,
    memcached_study,
    hdsearch_study,
    socialnetwork_study,
    synthetic_study,
    render_graph_capacity,
    render_graph_series,
    render_latency_series,
    render_ratio_series,
)
from repro.analysis.report import study_report, write_report

__all__ = [
    "study_report",
    "write_report",
    "SURVEY_ROWS",
    "survey_counts",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "GraphStudyGrid",
    "StudyGrid",
    "graph_study",
    "render_graph_capacity",
    "render_graph_series",
    "memcached_study",
    "hdsearch_study",
    "socialnetwork_study",
    "synthetic_study",
    "render_latency_series",
    "render_ratio_series",
]
