"""ASCII renderers for the paper's Tables I-IV."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.survey import CATEGORY_ORDER, survey_counts
from repro.config.knobs import HardwareConfig
from repro.config.presets import HP_CLIENT, LP_CLIENT, SERVER_BASELINE
from repro.core.evaluation_time import EvaluationTimeEstimate
from repro.core.scenarios import scenario_table


def render_table1() -> str:
    """Table I: hardware characterization in previous work."""
    counts = survey_counts()
    lines = [
        "TABLE I: Hardware characterization in previous work.",
        f"{'Characterization':<22} Publications",
    ]
    total = 0
    for category in CATEGORY_ORDER:
        count = counts[category]
        total += count
        lines.append(f"{category:<22} {count}")
    lines.append(f"{'Total':<22} {total}")
    return "\n".join(lines)


def render_table2(lp: HardwareConfig = LP_CLIENT,
                  hp: HardwareConfig = HP_CLIENT,
                  server: HardwareConfig = SERVER_BASELINE) -> str:
    """Table II: client- and server-side hardware configurations."""
    lp_knobs = lp.knob_settings()
    hp_knobs = hp.knob_settings()
    server_knobs = server.knob_settings()
    lines = [
        "TABLE II: Client- and server-side hardware configurations",
        f"{'Configuration':<20} {'LP':<18} {'HP':<18} {'Baseline':<18}",
    ]
    for knob in lp_knobs:
        lines.append(
            f"{knob:<20} {lp_knobs[knob]:<18} {hp_knobs[knob]:<18} "
            f"{server_knobs[knob]:<18}")
    return "\n".join(lines)


def render_table3() -> str:
    """Table III: scenarios tested in Section V."""
    lines = [
        "TABLE III: Scenarios Tested in Section V.",
        f"{'inter. rate':<28} {'point of meas.':<15} "
        f"{'Client Conf.':<13} {'Response Time':<14} {'Risk/Section'}",
    ]
    for scenario in scenario_table():
        risk = "X" if scenario.risky else " "
        sections = ",".join(scenario.sections)
        lines.append(
            f"{scenario.generator_design:<28} "
            f"{scenario.point_of_measurement:<15} "
            f"{scenario.client_conf:<13} "
            f"{scenario.response_time:<14} "
            f"{risk}({sections})")
    return "\n".join(lines)


def render_table4(estimates: Mapping[str, Mapping[float, "EvaluationTimeEstimate"]],
                  qps_order: Sequence[float]) -> str:
    """Table IV: iterations to gain statistical confidence.

    Args:
        estimates: configuration label -> {qps -> estimate}.
        qps_order: row order of the QPS sweep.
    """
    lines = [
        "TABLE IV: Number of iterations to gain statistical confidence "
        "and Shapiro-Wilk results.",
        f"{'Configuration':<14} {'QPS':>8} {'Parametric':>11} "
        f"{'CONFIRM':>8} {'Shapiro-Wilk':>13}",
    ]
    for config_label, per_qps in estimates.items():
        for qps in qps_order:
            if qps not in per_qps:
                continue
            estimate = per_qps[qps]
            qps_text = (f"{qps / 1000:.0f}K" if qps >= 1000
                        else f"{qps:.0f}")
            lines.append(
                f"{config_label:<14} {qps_text:>8} "
                f"{estimate.parametric_runs:>11d} "
                f"{estimate.confirm_display():>8} "
                f"{estimate.normality.verdict:>13}")
    return "\n".join(lines)
