"""Table I: hardware characterization in previous work.

The paper surveys 20 publications from 2021-2023 across systems and
architecture venues (ISPASS, IISWC, MICRO, ...) and classifies whether
each specifies the client-side and/or server-side hardware
configuration.  The headline: 0 papers specify client-only, 8
server-only, 2 both, 10 neither -- i.e. only 10% describe the client.

The paper does not name the 20 publications, so the per-row entries
here are anonymized placeholders carrying the category labels; the
category *counts* are the data Table I reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class SurveyRow:
    """One surveyed publication (anonymized)."""

    paper_id: str
    year: int
    venue: str
    characterizes_client: bool
    characterizes_server: bool

    @property
    def category(self) -> str:
        """Table I category for this row."""
        if self.characterizes_client and self.characterizes_server:
            return "Client and server"
        if self.characterizes_client:
            return "Client only"
        if self.characterizes_server:
            return "Server only"
        return "None"


def _build_rows() -> List[SurveyRow]:
    venues = ("ISPASS", "IISWC", "MICRO", "HPCA", "ASPLOS")
    rows: List[SurveyRow] = []
    # 8 server-only, 2 client-and-server, 10 none; 0 client-only.
    spec = [(False, True)] * 8 + [(True, True)] * 2 + [(False, False)] * 10
    for index, (client, server) in enumerate(spec):
        rows.append(SurveyRow(
            paper_id=f"P{index + 1:02d}",
            year=2021 + index % 3,
            venue=venues[index % len(venues)],
            characterizes_client=client,
            characterizes_server=server,
        ))
    return rows


#: The 20 surveyed publications.
SURVEY_ROWS: List[SurveyRow] = _build_rows()

#: Table I's row order.
CATEGORY_ORDER = (
    "Client only", "Server only", "Client and server", "None")


def survey_counts() -> Dict[str, int]:
    """Category -> publication count (the body of Table I)."""
    counts = {category: 0 for category in CATEGORY_ORDER}
    for row in SURVEY_ROWS:
        counts[row.category] += 1
    return counts
