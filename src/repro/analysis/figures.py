"""Study engines and series renderers for the paper's figures.

A *study* is a grid of experiments: client configuration x server
condition x offered load, each cell being N repetitions.  One grid
feeds several figures (e.g. the Memcached SMT grid produces Fig. 2a-d,
Fig. 5a, Fig. 8, Fig. 9 and half of Table IV), so benchmarks build the
grid once and render multiple artifacts from it.

Every study is a thin wrapper over a declarative
:class:`~repro.campaign.spec.CampaignSpec` executed through the
shared campaign path, whose conditions compile into
:class:`~repro.api.ExperimentPlan`s -- the single execution surface
everything in the library funnels through.  The same specs can run
in parallel, memoized in a :class:`~repro.campaign.store.ResultStore`,
via ``repro campaign``; ``repro plan`` prints a grid's expansion
without running it.  Seeds are cell-identity-derived
(:func:`repro.campaign.spec.cell_seed`), so a study grid and a
campaign of the same conditions are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.executor import execute_campaign
from repro.campaign.spec import CampaignSpec
from repro.cluster.spec import LB_POLICIES, ClusterSpec
from repro.config.knobs import HardwareConfig
from repro.config.presets import (
    HP_CLIENT,
    LP_CLIENT,
    SERVER_BASELINE,
    knob_conditions,
)
from repro.core.comparison import Comparison, compare_conditions
from repro.core.experiment import ExperimentResult
from repro.core.provisioning import CapacityResult, capacity_under_qos
from repro.errors import ExperimentError
from repro.workloads.registry import DEFAULT_QPS_SWEEPS

#: The paper's load sweeps.
MEMCACHED_QPS = DEFAULT_QPS_SWEEPS["memcached"]
HDSEARCH_QPS = DEFAULT_QPS_SWEEPS["hdsearch"]
SOCIALNETWORK_QPS = DEFAULT_QPS_SWEEPS["socialnetwork"]
SYNTHETIC_QPS = DEFAULT_QPS_SWEEPS["synthetic"]
SYNTHETIC_DELAYS = (0, 100, 200, 300, 400)

CLIENTS: Dict[str, HardwareConfig] = {"LP": LP_CLIENT, "HP": HP_CLIENT}


@dataclass
class StudyGrid:
    """Results of one study: (client, condition) x QPS -> experiment.

    Attributes:
        workload: workload name.
        conditions: condition label -> server HardwareConfig.
        cells: ``(client_label, condition_label)`` ->
            {qps -> ExperimentResult}.
        qps_list: the load sweep, ascending.
    """

    workload: str
    conditions: Dict[str, HardwareConfig]
    cells: Dict[Tuple[str, str], Dict[float, ExperimentResult]] = field(
        default_factory=dict)
    qps_list: Tuple[float, ...] = ()

    # ------------------------------------------------------------------
    def result(self, client: str, condition: str,
               qps: float) -> ExperimentResult:
        """One cell of the grid."""
        try:
            return self.cells[(client, condition)][qps]
        except KeyError:
            raise ExperimentError(
                f"no result for ({client}, {condition}) @ {qps}"
            ) from None

    def series(self, client: str, condition: str,
               metric: str = "avg") -> List[Tuple[float, float]]:
        """(qps, median-of-metric) pairs for one grid line.

        ``metric`` is ``"avg"``, ``"p99"``, ``"true_avg"``,
        ``"stdev_avg"`` or ``"true_p99"``.
        """
        points = []
        for qps in self.qps_list:
            result = self.result(client, condition, qps)
            points.append((qps, _metric_value(result, metric)))
        return points

    def ratio_series(self, client: str, condition_num: str,
                     condition_den: str, metric: str = "avg"
                     ) -> List[Tuple[float, float]]:
        """(qps, mean(num)/mean(den)) -- the Fig. 2c/2d ratio lines."""
        points = []
        for qps in self.qps_list:
            numerator = self.result(client, condition_num, qps)
            denominator = self.result(client, condition_den, qps)
            num = float(np.mean(_metric_samples(numerator, metric)))
            den = float(np.mean(_metric_samples(denominator, metric)))
            points.append((qps, num / den))
        return points

    def client_gap_series(self, condition: str, metric: str = "avg"
                          ) -> List[Tuple[float, float]]:
        """(qps, LP/HP) for one condition -- the Fig. 6a/7a lines."""
        points = []
        for qps in self.qps_list:
            lp = float(np.mean(_metric_samples(
                self.result("LP", condition, qps), metric)))
            hp = float(np.mean(_metric_samples(
                self.result("HP", condition, qps), metric)))
            points.append((qps, lp / hp))
        return points

    def comparisons(self, client: str, condition_a: str,
                    condition_b: str, metric: str = "avg",
                    confidence: float = 0.95
                    ) -> Dict[float, Comparison]:
        """CI-overlap comparisons per QPS, as one client sees them."""
        output: Dict[float, Comparison] = {}
        for qps in self.qps_list:
            samples_a = _metric_samples(
                self.result(client, condition_a, qps), metric)
            samples_b = _metric_samples(
                self.result(client, condition_b, qps), metric)
            output[qps] = compare_conditions(
                samples_a, samples_b,
                label_a=condition_a, label_b=condition_b,
                confidence=confidence)
        return output


#: metric name -> unbound ExperimentResult accessor.  The accessors
#: serve cached read-only arrays, so series/ratio/comparison renderers
#: that revisit the same cell never rebuild the sample array.
_METRIC_ACCESSORS = {
    "avg": ExperimentResult.avg_samples,
    "p99": ExperimentResult.p99_samples,
    "true_avg": ExperimentResult.true_avg_samples,
    "true_p99": ExperimentResult.true_p99_samples,
}


def _metric_samples(result: ExperimentResult, metric: str) -> np.ndarray:
    accessor = _METRIC_ACCESSORS.get(metric)
    if accessor is None:
        raise ExperimentError(f"unknown metric {metric!r}")
    return accessor(result)


def _metric_value(result: ExperimentResult, metric: str) -> float:
    if metric == "stdev_avg":
        return result.stdev_avg_us()
    return float(np.median(_metric_samples(result, metric)))


def _run_grid(workload: str,
              conditions: Dict[str, HardwareConfig],
              qps_list: Sequence[float],
              runs: int, num_requests: int, base_seed: int,
              clients: Optional[Dict[str, HardwareConfig]] = None,
              **extra) -> StudyGrid:
    """Run one study grid through the shared campaign path (inline)."""
    from repro.campaign.report import grid_from_outcome

    spec = CampaignSpec(
        name=f"{workload}-study",
        workload=workload,
        conditions=dict(conditions),
        qps_list=tuple(float(q) for q in qps_list),
        clients=dict(clients or CLIENTS),
        runs=runs,
        num_requests=num_requests,
        base_seed=base_seed,
        extra=dict(extra),
    )
    # fail_fast restores the pre-campaign study behavior: a broken
    # cell raises its original exception immediately instead of
    # simulating the rest of the grid first.
    outcome = execute_campaign(spec, max_workers=1, fail_fast=True)
    return grid_from_outcome(spec, outcome)


# ----------------------------------------------------------------- studies
def memcached_study(knob: str = "smt",
                    qps_list: Sequence[float] = MEMCACHED_QPS,
                    runs: int = 50, num_requests: int = 2_000,
                    base_seed: int = 0) -> StudyGrid:
    """The Fig. 2 (knob="smt") / Fig. 3 (knob="c1e") Memcached grid."""
    return _run_grid("memcached", knob_conditions(knob), qps_list,
                     runs, num_requests, base_seed)


def hdsearch_study(knob: str = "smt",
                   qps_list: Sequence[float] = HDSEARCH_QPS,
                   runs: int = 50, num_requests: int = 1_000,
                   base_seed: int = 0) -> StudyGrid:
    """The Fig. 4 HDSearch grid (SMT or C1E server conditions)."""
    return _run_grid("hdsearch", knob_conditions(knob), qps_list,
                     runs, num_requests, base_seed)


def socialnetwork_study(qps_list: Sequence[float] = SOCIALNETWORK_QPS,
                        runs: int = 50, num_requests: int = 800,
                        base_seed: int = 0) -> StudyGrid:
    """The Fig. 6 Social Network grid (baseline server only)."""
    conditions = {"baseline": SERVER_BASELINE}
    return _run_grid("socialnetwork", conditions, qps_list, runs,
                     num_requests, base_seed)


def synthetic_study(delays_us: Sequence[float] = SYNTHETIC_DELAYS,
                    qps_list: Sequence[float] = SYNTHETIC_QPS,
                    runs: int = 20, num_requests: int = 2_000,
                    base_seed: int = 0) -> Dict[float, StudyGrid]:
    """The Fig. 7 sensitivity grids: one StudyGrid per added delay.

    The paper's Fig. 7 uses 20 runs per point (Section V-B).
    """
    grids: Dict[float, StudyGrid] = {}
    for delay in delays_us:
        grids[float(delay)] = _run_grid(
            "synthetic", {"baseline": SERVER_BASELINE},
            qps_list, runs, num_requests, base_seed,
            added_delay_us=float(delay))
    return grids


# ---------------------------------------------------------- cluster study
@dataclass
class ClusterStudyGrid:
    """Results of a cluster-scale study: (nodes, policy) x QPS.

    Attributes:
        workload: workload name.
        nodes_list: cluster sizes swept, ascending.
        policies: LB policies swept, in sweep order.
        cells: ``(nodes, policy)`` -> {qps -> ExperimentResult}.
        qps_list: the load sweep, ascending.
    """

    workload: str
    nodes_list: Tuple[int, ...]
    policies: Tuple[str, ...]
    cells: Dict[Tuple[int, str], Dict[float, ExperimentResult]] = field(
        default_factory=dict)
    qps_list: Tuple[float, ...] = ()

    def result(self, nodes: int, policy: str,
               qps: float) -> ExperimentResult:
        """One cell of the grid."""
        try:
            return self.cells[(nodes, policy)][qps]
        except KeyError:
            raise ExperimentError(
                f"no result for ({nodes} nodes, {policy}) @ {qps}"
            ) from None

    def series(self, nodes: int, policy: str,
               metric: str = "p99") -> List[Tuple[float, float]]:
        """(qps, median-of-metric) pairs for one topology line."""
        return [(qps, _metric_value(
            self.result(nodes, policy, qps), metric))
            for qps in self.qps_list]

    def node_utilization_spread(self, nodes: int, policy: str,
                                qps: float) -> Tuple[float, float]:
        """(min, max) per-node utilization -- LB fairness at a glance."""
        utils = self.result(nodes, policy, qps).mean_node_utilizations()
        if not utils:
            raise ExperimentError(
                f"({nodes} nodes, {policy}) @ {qps} carries no "
                f"per-node utilization")
        return (min(utils), max(utils))


def cluster_study(workload: str = "memcached",
                  nodes_list: Sequence[int] = (2, 4, 8),
                  policies: Sequence[str] = LB_POLICIES,
                  qps_list: Optional[Sequence[float]] = None,
                  runs: int = 10, num_requests: int = 500,
                  base_seed: int = 0,
                  shards: int = 1, fanout: int = 0, quorum: int = 0,
                  clients: Optional[Dict[str, HardwareConfig]] = None,
                  ) -> ClusterStudyGrid:
    """Sweep cluster size x LB policy for one workload.

    Each (nodes, policy) topology runs as its own campaign through
    the shared executor path (cell-identity seeds, store-compatible
    hashes), with the QPS sweep scaled by the node count so per-node
    load stays at the paper's operating points.
    """
    from repro.campaign.report import grid_from_outcome

    if qps_list is None:
        from repro.workloads.registry import workload_by_name
        definition = workload_by_name(workload)
        qps_list = definition.qps_sweep or (definition.default_qps,)
    clients = dict(clients or {"LP": LP_CLIENT})
    if len(clients) != 1:
        # The grid is keyed (nodes, policy) for one observer; a
        # multi-client sweep would silently discard all but the
        # first client's runs.
        raise ExperimentError(
            f"cluster_study sweeps topologies for exactly one "
            f"client, got {len(clients)}: {', '.join(clients)}")
    client_label = next(iter(clients))
    nodes_list = tuple(int(n) for n in nodes_list)
    policies = tuple(str(p) for p in policies)
    grid = ClusterStudyGrid(
        workload=workload, nodes_list=nodes_list, policies=policies)
    for nodes in nodes_list:
        scaled_qps = tuple(float(q) * nodes for q in qps_list)
        for policy in policies:
            spec = CampaignSpec(
                name=f"{workload}-cluster-n{nodes}-{policy}",
                workload=workload,
                conditions={"baseline": SERVER_BASELINE},
                qps_list=scaled_qps,
                clients=dict(clients),
                runs=runs,
                num_requests=num_requests,
                base_seed=base_seed,
                cluster=ClusterSpec(
                    nodes=nodes, lb_policy=policy, shards=shards,
                    fanout=fanout, quorum=quorum),
            )
            outcome = execute_campaign(
                spec, max_workers=1, fail_fast=True)
            study = grid_from_outcome(spec, outcome)
            cell: Dict[float, ExperimentResult] = {}
            for scaled, original in zip(scaled_qps, qps_list):
                # Key cells by the *per-node* load so different
                # cluster sizes line up on one axis.
                cell[float(original)] = study.result(
                    client_label, "baseline", scaled)
            grid.cells[(nodes, policy)] = cell
    grid.qps_list = tuple(float(q) for q in qps_list)
    return grid


def render_cluster_series(grid: ClusterStudyGrid,
                          metric: str = "p99",
                          title: str = "") -> str:
    """Print one metric's series for every (nodes, policy) line.

    Columns are per-node QPS, so cluster sizes are comparable."""
    lines = [title or (f"{grid.workload} cluster: {metric} by "
                       f"per-node QPS")]
    header = f"{'topology':<28}" + "".join(
        f"{_format_qps(qps):>10}" for qps in grid.qps_list)
    lines.append(header)
    for nodes in grid.nodes_list:
        for policy in grid.policies:
            values = grid.series(nodes, policy, metric)
            row = f"{f'{nodes}n-{policy}':<28}" + "".join(
                f"{value:>10.1f}" for _, value in values)
            lines.append(row)
    return "\n".join(lines)


# ------------------------------------------------------------ graph study
@dataclass
class GraphStudyGrid:
    """Results of a service-graph QoS-capacity study: topology x QPS.

    Attributes:
        workload: workload name.
        topologies: topology labels swept, in sweep order.
        cells: topology label -> {qps -> ExperimentResult}.
        qps_list: the load sweep, ascending.
    """

    workload: str
    topologies: Tuple[str, ...]
    cells: Dict[str, Dict[float, ExperimentResult]] = field(
        default_factory=dict)
    qps_list: Tuple[float, ...] = ()

    def result(self, topology: str, qps: float) -> ExperimentResult:
        """One cell of the grid."""
        try:
            return self.cells[topology][qps]
        except KeyError:
            raise ExperimentError(
                f"no result for {topology!r} @ {qps}") from None

    def series(self, topology: str,
               metric: str = "p99") -> List[Tuple[float, float]]:
        """(qps, median-of-metric) pairs for one topology line."""
        return [(qps, _metric_value(self.result(topology, qps), metric))
                for qps in self.qps_list]

    def capacity_result(self, topology: str, target_us: float,
                        metric: str = "p99",
                        interpolate: bool = True) -> CapacityResult:
        """Full :func:`capacity_under_qos` search for one topology.

        Delegates to the provisioning-layer search over this
        topology's measured sweep, so the figures layer and the
        capacity analysis give the same answer -- including the
        interpolated QoS crossing -- for the same data.
        """
        latency_by_qps = dict(self.series(topology, metric))
        return capacity_under_qos(
            latency_by_qps, float(target_us), metric=metric,
            interpolate=interpolate)

    def qos_capacity(self, topology: str, target_us: float,
                     metric: str = "p99",
                     interpolate: bool = False) -> float:
        """Highest load whose *metric* stays within *target_us*.

        The QoS-capacity number: how much load a topology sustains
        before its tail blows the SLO.  Delegates to
        :func:`capacity_under_qos` (first-crossing semantics, same as
        the provisioning analysis) instead of the old grid-only
        ``max(passing qps)`` scan; ``interpolate=True`` returns the
        interpolated crossing when the sweep brackets one.  Returns
        0.0 when even the lightest swept load misses the target,
        including non-positive targets.
        """
        if float(target_us) <= 0:
            return 0.0
        result = self.capacity_result(
            topology, target_us, metric=metric, interpolate=interpolate)
        return (result.best_capacity_qps if interpolate
                else result.capacity_qps)


def graph_study(workload: str = "memcached",
                graphs: Optional[Sequence[str]] = None,
                qps_list: Optional[Sequence[float]] = None,
                runs: int = 10, num_requests: int = 500,
                base_seed: int = 0,
                arrival: Optional[Any] = None,
                clients: Optional[Dict[str, HardwareConfig]] = None,
                ) -> GraphStudyGrid:
    """Sweep service-graph topologies x QPS for one workload.

    *graphs* names graph presets (default: every preset); each
    topology runs as its own campaign through the shared executor
    path, so the cells are bit-identical to a ``repro campaign`` of
    the same conditions and land under the same store keys.
    """
    from repro.campaign.report import grid_from_outcome
    from repro.graph.presets import graph_preset, graph_preset_names

    if qps_list is None:
        from repro.workloads.registry import workload_by_name
        definition = workload_by_name(workload)
        qps_list = definition.qps_sweep or (definition.default_qps,)
    clients = dict(clients or {"LP": LP_CLIENT})
    if len(clients) != 1:
        # Keyed by topology for one observer, like cluster_study.
        raise ExperimentError(
            f"graph_study sweeps topologies for exactly one "
            f"client, got {len(clients)}: {', '.join(clients)}")
    client_label = next(iter(clients))
    topologies = tuple(str(g) for g in (graphs or graph_preset_names()))
    grid = GraphStudyGrid(
        workload=workload, topologies=topologies,
        qps_list=tuple(float(q) for q in qps_list))
    for topology in topologies:
        spec = CampaignSpec(
            name=f"{workload}-graph-{topology}",
            workload=workload,
            conditions={"baseline": SERVER_BASELINE},
            qps_list=tuple(float(q) for q in qps_list),
            clients=dict(clients),
            runs=runs,
            num_requests=num_requests,
            base_seed=base_seed,
            graph=graph_preset(topology),
            arrival=arrival,
        )
        outcome = execute_campaign(spec, max_workers=1, fail_fast=True)
        study = grid_from_outcome(spec, outcome)
        grid.cells[topology] = {
            float(qps): study.result(client_label, "baseline", float(qps))
            for qps in qps_list}
    return grid


def render_graph_series(grid: GraphStudyGrid,
                        metric: str = "p99",
                        title: str = "") -> str:
    """Print one metric's series for every topology line."""
    lines = [title or f"{grid.workload} graphs: {metric} by QPS"]
    header = f"{'topology':<28}" + "".join(
        f"{_format_qps(qps):>10}" for qps in grid.qps_list)
    lines.append(header)
    for topology in grid.topologies:
        values = grid.series(topology, metric)
        row = f"{topology:<28}" + "".join(
            f"{value:>10.1f}" for _, value in values)
        lines.append(row)
    return "\n".join(lines)


def render_graph_capacity(grid: GraphStudyGrid, target_us: float,
                          metric: str = "p99",
                          title: str = "") -> str:
    """Print each topology's QoS capacity, grid and interpolated.

    The ``interp`` column is the linear QoS crossing from
    :func:`capacity_under_qos` -- blank (``-``) when the sweep never
    bracketed a violation (sweep-limited) or never passed at all.
    """
    lines = [title or (f"{grid.workload} graphs: capacity @ "
                       f"{metric} <= {target_us:g}us")]
    lines.append(f"{'topology':<28}{'grid':>10}{'interp':>10}")
    for topology in grid.topologies:
        result = grid.capacity_result(
            topology, target_us, metric=metric, interpolate=True)
        interp = (f"{result.interpolated_capacity_qps:>10.0f}"
                  if result.interpolated_capacity_qps is not None
                  else f"{'-':>10}")
        lines.append(
            f"{topology:<28}{result.capacity_qps:>10.0f}{interp}")
    return "\n".join(lines)


# --------------------------------------------------------------- rendering
def _format_qps(qps: float) -> str:
    return f"{qps / 1000:g}K" if qps >= 1000 else f"{qps:g}"


def render_latency_series(grid: StudyGrid, metric: str = "avg",
                          unit: str = "us",
                          title: str = "") -> str:
    """Print one metric's series for every (client, condition) line."""
    lines = [title or f"{grid.workload}: {metric} ({unit}) by QPS"]
    header = f"{'series':<16}" + "".join(
        f"{_format_qps(qps):>10}" for qps in grid.qps_list)
    lines.append(header)
    for (client, condition), _ in grid.cells.items():
        values = grid.series(client, condition, metric)
        row = f"{client + '-' + condition:<16}" + "".join(
            f"{value:>10.1f}" for _, value in values)
        lines.append(row)
    return "\n".join(lines)


def render_ratio_series(grid: StudyGrid, condition_num: str,
                        condition_den: str, metric: str = "avg",
                        title: str = "") -> str:
    """Print the per-client ratio lines (Fig. 2c/2d style)."""
    lines = [title or (f"{grid.workload}: {condition_num}/{condition_den} "
                       f"ratio ({metric})")]
    header = f"{'client':<10}" + "".join(
        f"{_format_qps(qps):>10}" for qps in grid.qps_list)
    lines.append(header)
    clients = sorted({client for client, _ in grid.cells})
    for client in clients:
        ratios = grid.ratio_series(
            client, condition_num, condition_den, metric)
        row = f"{client:<10}" + "".join(
            f"{ratio:>10.3f}" for _, ratio in ratios)
        lines.append(row)
    return "\n".join(lines)
