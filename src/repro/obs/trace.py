"""Request-lifecycle span recording.

A :class:`Tracer` collects flat span tuples -- ``(name, start_us,
end_us, request_id, track, detail)`` -- appended by the instrumented
components along a request's path:

====================  =====================  ==============================
span name             track                  covers
====================  =====================  ==============================
``client.send``       ``client``             intended -> actual send time
                                             (send-timing error)
``net.out``           ``net``                client -> server link transit
``lb.dispatch``       balancer name          instant: LB picked a backend
``queue``             station name           time waited in the station
                                             queue (only when > 0)
``service``           station name           worker occupancy incl. kernel
                                             stack / SMT / C-state effects
``fanout.rpc``        fanout name            shard dispatch -> response
                                             back at the root (per shard)
``net.in``            ``net``                server -> client link transit
``client.recv``       ``client``             client NIC -> generator
                                             timestamp (measurement bias)
``request``           ``client``             actual send -> measured
                                             completion (== measured
                                             latency, exactly)
====================  =====================  ==============================

Spans are derived purely from timestamps the simulation already
tracks: recording consumes **no random draws** and schedules **no
events**, so a traced run is bit-identical to an untraced one.  The
span list is bounded by ``max_spans``; past the cap spans are counted
in :attr:`Tracer.dropped` instead of retained, keeping worst-case
memory fixed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: One recorded span (see module docstring for the field meanings).
Span = Tuple[str, float, float, int, str, Any]

#: Default span-list bound: ~9 spans/request keeps a 200k-request trace
#: under this, while a runaway instrumentation bug cannot eat the heap.
DEFAULT_MAX_SPANS = 2_000_000


class Tracer:
    """Bounded append-only collector of lifecycle spans.

    The hot-path contract: components cache ``tracer`` (or ``None``)
    at construction, so a disabled run pays one attribute load and a
    ``None`` test per hook; an enabled run pays one bounds check and a
    tuple append per span.
    """

    __slots__ = ("spans", "max_spans", "dropped")

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.spans: List[Span] = []
        self.max_spans = int(max_spans)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    def span(self, name: str, start_us: float, end_us: float,
             request_id: int = -1, track: str = "run",
             detail: Any = None) -> None:
        """Record one duration span ``[start_us, end_us]``."""
        if len(self.spans) < self.max_spans:
            self.spans.append(
                (name, start_us, end_us, request_id, track, detail))
        else:
            self.dropped += 1

    def instant(self, name: str, at_us: float, request_id: int = -1,
                track: str = "run", detail: Any = None) -> None:
        """Record a zero-duration marker at *at_us*."""
        self.span(name, at_us, at_us, request_id, track, detail)

    # ------------------------------------------------------------------
    def spans_named(self, name: str) -> List[Span]:
        """All spans with the given name, in record order."""
        return [span for span in self.spans if span[0] == name]

    def spans_for_request(self, request_id: int) -> List[Span]:
        """All spans of one request, sorted by start time."""
        return sorted((span for span in self.spans
                       if span[3] == request_id),
                      key=lambda span: (span[1], span[2]))

    def counts(self) -> Dict[str, int]:
        """Span count per name (retained spans only)."""
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span[0]] = out.get(span[0], 0) + 1
        return out

    def request_latency_us(self, request_id: int) -> Optional[float]:
        """Measured latency reconstructed from the ``request`` span.

        Returns None when the request has no root span (e.g. it was
        dropped past the span cap).
        """
        for span in self.spans:
            if span[0] == "request" and span[3] == request_id:
                return span[2] - span[1]
        return None
