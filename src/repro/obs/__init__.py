"""Observability: lifecycle tracing, metrics, and telemetry sinks.

The package behind ``repro trace`` and the ``RunPolicy`` observability
knobs.  See :mod:`repro.obs.core` for the null-object hook contract
that keeps the traced-off hot path at one attribute check per site.
"""

from repro.obs.core import LinkObserver, Observability
from repro.obs.export import (
    chrome_trace,
    latency_breakdown,
    render_breakdown_table,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sinks import (
    DEFAULT_SINK,
    SINK_COLUMNAR,
    SINK_STREAMING,
    SINKS,
    P2Quantile,
    Sink,
    StreamingSink,
    describe_sink,
    make_sink,
    sink_names,
    validate_sink_name,
)
from repro.obs.trace import DEFAULT_MAX_SPANS, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_MAX_SPANS",
    "DEFAULT_SINK",
    "Gauge",
    "Histogram",
    "LinkObserver",
    "MetricsRegistry",
    "Observability",
    "P2Quantile",
    "SINKS",
    "SINK_COLUMNAR",
    "SINK_STREAMING",
    "Sink",
    "Span",
    "StreamingSink",
    "Tracer",
    "chrome_trace",
    "describe_sink",
    "latency_breakdown",
    "make_sink",
    "render_breakdown_table",
    "sink_names",
    "validate_chrome_trace",
    "validate_sink_name",
    "write_chrome_trace",
]
