"""Pluggable telemetry sinks: where per-request samples land.

The sink decides the memory/exactness trade of a run's telemetry
(ROADMAP item 2):

* ``"columnar"`` -- the default and the exact path:
  :class:`~repro.loadgen.measurement.RunSamples` keeps one float64 row
  per request in a :class:`~repro.telemetry.SampleColumns` buffer, so
  every statistic is exact but memory is O(requests).
* ``"streaming"`` -- :class:`StreamingSink`: O(1) memory per run.
  Running moments (Welford), P\N{SUPERSCRIPT TWO} quantile markers and
  a bounded windowed time series replace the per-request rows, which
  is what unlocks multi-million-request runs.

Both satisfy the :class:`Sink` protocol -- the accessor surface
:meth:`~repro.core.testbed.Testbed.run` summarizes a run through -- so
the whole experiment stack is sink-agnostic.

Accuracy contract of the streaming sink (validated in
``tests/test_obs_sinks.py`` against the exact path):

* mean latency: exact up to float summation order (< 1e-9 relative);
* p50/p99: P\N{SUPERSCRIPT TWO} estimates, within ~2% relative of
  ``numpy.percentile`` on unimodal service-time distributions at
  >= 100k requests (quantiles not in :attr:`StreamingSink.quantiles`
  are unavailable rather than silently approximated);
* warmup trimming: by request id, which equals the exact path's
  intended-send-order trim for open-loop trains (ids are assigned in
  send order); closed-loop runs may differ by the handful of requests
  whose machine interleaving crosses the warmup boundary.
"""

from __future__ import annotations

import difflib
import math
from typing import Any, Callable, Dict, List, Tuple

try:  # pragma: no cover - import guard exercised implicitly
    from typing import Protocol
except ImportError:  # pragma: no cover - Python < 3.8 fallback
    Protocol = object  # type: ignore[assignment]

import numpy as np

from repro.errors import SpecValidationError
from repro.loadgen.measurement import PointOfMeasurement, RunSamples
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.server.request import Request

SINK_COLUMNAR = "columnar"
SINK_STREAMING = "streaming"
#: The exact columnar buffer stays the default sink.
DEFAULT_SINK = SINK_COLUMNAR


class Sink(Protocol):
    """The accessor surface a run summary needs from its sample sink."""

    def record(self, request: Request) -> None:
        """Record one completed request."""

    def __len__(self) -> int:
        """Completed requests recorded (warmup included)."""

    @property
    def warmup_count(self) -> int:
        """Completed requests discarded as warmup."""

    @property
    def measured_count(self) -> int:
        """Completed requests after warmup trimming."""

    def average_latency_us(self, point: PointOfMeasurement
                           = PointOfMeasurement.GENERATOR) -> float:
        """The run's average response time at *point*."""

    def percentile_latency_us(self, percentile: float = 99.0,
                              point: PointOfMeasurement
                              = PointOfMeasurement.GENERATOR) -> float:
        """The run's tail latency at *point*."""


class P2Quantile:
    """P\N{SUPERSCRIPT TWO} streaming quantile estimator (Jain &
    Chlamtac, CACM 1985).

    Five markers track the running quantile in O(1) memory and O(1)
    per observation; marker heights adjust by parabolic (falling back
    to linear) interpolation as desired positions drift.
    """

    __slots__ = ("p", "count", "_q", "_n", "_desired", "_rate")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = float(p)
        self.count = 0
        self._q: List[float] = []
        self._n = [0, 1, 2, 3, 4]
        self._desired = [0.0, 2 * p, 4 * p, 2 + 2 * p, 4.0]
        self._rate = [0.0, p / 2, p, (1 + p) / 2, 1.0]

    def observe_many(self, values: List[float]) -> None:
        """Observe *values* in order; identical markers to calling
        :meth:`observe` per value, with the estimator state hoisted
        into locals once per batch instead of once per observation."""
        count = self.count
        q = self._q
        n = self._n
        desired = self._desired
        rate = self._rate
        for x in values:
            count += 1
            if count <= 5:
                q.append(x)
                if count == 5:
                    q.sort()
                continue
            if x < q[0]:
                q[0] = x
                k = 0
            elif x >= q[4]:
                q[4] = x
                k = 3
            else:
                k = 0
                while x >= q[k + 1]:
                    k += 1
            for i in range(k + 1, 5):
                n[i] += 1
            desired[0] += rate[0]
            desired[1] += rate[1]
            desired[2] += rate[2]
            desired[3] += rate[3]
            desired[4] += rate[4]
            for i in (1, 2, 3):
                d = desired[i] - n[i]
                if ((d >= 1.0 and n[i + 1] - n[i] > 1)
                        or (d <= -1.0 and n[i - 1] - n[i] < -1)):
                    step = 1 if d >= 1.0 else -1
                    candidate = self._parabolic(i, step)
                    if q[i - 1] < candidate < q[i + 1]:
                        q[i] = candidate
                    else:
                        q[i] = self._linear(i, step)
                    n[i] += step
        self.count = count

    def observe(self, x: float) -> None:
        self.count += 1
        q = self._q
        if self.count <= 5:
            q.append(x)
            if self.count == 5:
                q.sort()
            return
        n = self._n
        # Locate the cell; clamp extremes to the new observation.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        desired = self._desired
        for i in range(5):
            desired[i] += self._rate[i]
        # Adjust the three interior markers toward desired positions.
        for i in (1, 2, 3):
            d = desired[i] - n[i]
            if ((d >= 1.0 and n[i + 1] - n[i] > 1)
                    or (d <= -1.0 and n[i - 1] - n[i] < -1)):
                step = 1 if d >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        q, n = self._q, self._n
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: int) -> float:
        q, n = self._q, self._n
        return q[i] + step * (q[i + step] - q[i]) / (n[i + step] - n[i])

    def value(self) -> float:
        """The current quantile estimate.

        Below five observations this interpolates the sorted buffer
        (numpy's ``linear`` method) so small runs stay sensible.
        """
        if self.count == 0:
            raise ValueError("P2Quantile has no observations")
        if self.count >= 5:
            return self._q[2]
        ordered = sorted(self._q)
        rank = self.p * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (rank - lo) * (ordered[hi] - ordered[lo])

    def marker_state(self) -> Dict[str, Any]:
        """The estimator's compressed state (the mergeable form).

        ``heights`` are the marker values in non-decreasing order and
        ``positions`` the 0-based observation counts at each marker;
        below five observations both describe the raw sorted buffer.
        :func:`merge_marker_states` consumes this across shards.
        """
        if self.count >= 5:
            return {"count": self.count,
                    "heights": list(self._q),
                    "positions": list(self._n)}
        ordered = sorted(self._q)
        return {"count": self.count,
                "heights": ordered,
                "positions": list(range(len(ordered)))}


class _RunningMoments:
    """Welford running mean/variance with extremes."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def observe_chunk(self, values: "np.ndarray") -> None:
        """Merge one chunk of observations (Chan et al. combine).

        The chunk's moments come from vectorized numpy reductions and
        fold into the running state in O(1); the result differs from
        per-value :meth:`observe` only in float summation order, which
        is within the sink's documented mean/variance contract.
        """
        count = int(values.size)
        if count == 0:
            return
        mean = float(values.mean())
        m2 = float(((values - mean) ** 2).sum())
        low = float(values.min())
        high = float(values.max())
        if self.count == 0:
            self.count = count
            self.mean = mean
            self._m2 = m2
        else:
            total = self.count + count
            delta = mean - self.mean
            self.mean += delta * (count / total)
            self._m2 += m2 + delta * delta * (self.count * count / total)
            self.count = total
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high

    def variance(self) -> float:
        """Population variance (ddof=0, matching ``numpy.var``)."""
        return self._m2 / self.count if self.count else 0.0

    def state(self) -> Dict[str, float]:
        """The moments' mergeable state (Chan-combinable)."""
        return {"count": self.count, "mean": self.mean,
                "m2": self._m2, "min": self.min, "max": self.max}

    @classmethod
    def from_states(cls, states: List[Dict[str, float]]
                    ) -> "_RunningMoments":
        """Combine per-shard moment states into one (Chan et al.).

        Exactly the :meth:`observe_chunk` pairwise combine applied in
        shard order, so merging K shards' moments equals feeding the
        K chunks to one accumulator -- within the sink's documented
        float-order contract.
        """
        out = cls()
        for state in states:
            count = int(state["count"])
            if count == 0:
                continue
            if out.count == 0:
                out.count = count
                out.mean = float(state["mean"])
                out._m2 = float(state["m2"])
            else:
                total = out.count + count
                delta = float(state["mean"]) - out.mean
                out.mean += delta * (count / total)
                out._m2 += float(state["m2"]) + delta * delta * (
                    out.count * count / total)
                out.count = total
            if state["min"] < out.min:
                out.min = float(state["min"])
            if state["max"] > out.max:
                out.max = float(state["max"])
        return out


class _Channel:
    """Moments + quantile markers for one point of measurement."""

    __slots__ = ("moments", "quantiles")

    def __init__(self, quantiles: Tuple[float, ...]) -> None:
        self.moments = _RunningMoments()
        self.quantiles: Dict[float, P2Quantile] = {
            pct: P2Quantile(pct / 100.0) for pct in quantiles}

    def observe(self, x: float) -> None:
        self.moments.observe(x)
        for estimator in self.quantiles.values():
            estimator.observe(x)

    def observe_chunk(self, values: "np.ndarray") -> None:
        """Batch ingest: chunk-merged moments, ordered P2 updates."""
        self.moments.observe_chunk(values)
        data = values.tolist()
        for estimator in self.quantiles.values():
            estimator.observe_many(data)


def merge_marker_states(states: List[Dict[str, Any]],
                        p: float) -> float:
    """Estimate quantile *p* of the union of shards from their markers.

    Each shard's P\N{SUPERSCRIPT TWO} markers are replayed as a
    piecewise-linear empirical CDF (height ``q_i`` at cumulative
    fraction ``n_i / (count - 1)``); the merged CDF is the
    count-weighted mixture, evaluated on the pooled marker grid, and
    the quantile is read back by inverse interpolation.  This is the
    documented-tolerance half of the mergeable-sink contract: exact
    marker state cannot be combined across shards, but the mixture
    replay tracks the unpartitioned estimator to within a few percent
    on the distributions the streaming sink supports (pinned in
    ``tests/test_parallel_merge.py``).
    """
    live = [s for s in states if int(s["count"]) > 0]
    if not live:
        raise ValueError("no observations in any marker state")
    total = sum(int(s["count"]) for s in live)
    singles = [s for s in live if int(s["count"]) == 1]
    multi = [s for s in live if int(s["count"]) > 1]
    if not multi:
        # Degenerate: every shard saw one value; pool and interpolate.
        pooled = np.sort(np.array(
            [s["heights"][0] for s in singles], dtype=np.float64))
        return float(np.quantile(pooled, p))
    grid = np.unique(np.concatenate(
        [np.asarray(s["heights"], dtype=np.float64) for s in live]))
    cdf = np.zeros_like(grid)
    for state in multi:
        heights = np.asarray(state["heights"], dtype=np.float64)
        fractions = (np.asarray(state["positions"], dtype=np.float64)
                     / (int(state["count"]) - 1))
        cdf += (int(state["count"]) / total) * np.interp(
            grid, heights, fractions, left=0.0, right=1.0)
    for state in singles:
        cdf += (1 / total) * (grid >= float(state["heights"][0]))
    # The mixture CDF is non-decreasing by construction; invert it.
    return float(np.interp(p, cdf, grid))


#: Windowed time-series entry:
#: ``(start_us, end_us, count, mean_us, max_us)``.
Window = Tuple[float, float, int, float, float]

#: Quantiles every streaming run tracks (p99 is what the paper lives
#: on; the rest cost four extra marker updates per request).
DEFAULT_QUANTILES = (50.0, 90.0, 95.0, 99.0, 99.9)

#: Target number of time-series windows per run.
DEFAULT_WINDOWS = 128

#: Buffered completions per streaming-sink drain.  Recording stays
#: O(1) (three floats into a list); every accessor drains first, so
#: the buffering is invisible to readers.
INGEST_CHUNK = 256


class StreamingSink:
    """O(1)-memory replacement for the exact columnar sample buffer.

    Args:
        num_requests: the run's request count; sizes the warmup trim
            and the time-series window width up front.
        warmup_fraction: leading completions to discard, trimmed by
            request id (see the module docstring for how this lines up
            with the exact path).
        quantiles: percentiles (0, 100) tracked per channel.
        params: timing constants (kernel-point latency offset).
        target_windows: how many time-series windows to aim for.
    """

    def __init__(self, num_requests: int, warmup_fraction: float = 0.1,
                 quantiles: Tuple[float, ...] = DEFAULT_QUANTILES,
                 params: SkylakeParameters = DEFAULT_PARAMETERS,
                 target_windows: int = DEFAULT_WINDOWS) -> None:
        if num_requests <= 0:
            raise ValueError(
                f"num_requests must be positive, got {num_requests}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
        for pct in quantiles:
            if not 0.0 < pct < 100.0:
                raise ValueError(
                    f"tracked percentiles must be in (0, 100), got {pct}")
        if target_windows < 1:
            raise ValueError(
                f"target_windows must be >= 1, got {target_windows}")
        self.num_requests = int(num_requests)
        self.warmup_fraction = float(warmup_fraction)
        self._warmup_target = int(num_requests * warmup_fraction)
        self._kernel_stack_us = params.kernel_stack_us
        self._recorded = 0
        self._warmup_skipped = 0
        self._channels = {
            PointOfMeasurement.GENERATOR: _Channel(tuple(quantiles)),
            PointOfMeasurement.NIC: _Channel(tuple(quantiles)),
        }
        # Bounded time series: one summary row per fixed-size window
        # of measured completions, ~target_windows rows per run.
        self._window_requests = max(
            1, self.num_requests // int(target_windows))
        self._windows: List[Window] = []
        self._win_count = 0
        self._win_total = 0.0
        self._win_max = -math.inf
        self._win_start = 0.0
        # Batched ingest: measured completions buffer as
        # (actual_send_us, client_nic_us, measured_complete_us) and
        # drain through vectorized chunk updates.
        self._pending: List[Tuple[float, float, float]] = []

    # ------------------------------------------------------------------
    def record(self, request: Request) -> None:
        """Record one completed request (O(1) time and memory).

        The per-request work is three float loads and a list append;
        the statistical updates happen per :data:`INGEST_CHUNK` in
        :meth:`_drain`, which cuts the sink's hot-path overhead to a
        fraction of the per-request version.
        """
        self._recorded += 1
        if request.request_id < self._warmup_target:
            self._warmup_skipped += 1
            return
        pending = self._pending
        pending.append((request.actual_send_us, request.client_nic_us,
                        request.measured_complete_us))
        if len(pending) >= INGEST_CHUNK:
            self._drain()

    def _drain(self) -> None:
        """Fold the pending buffer into moments, markers and windows.

        Values feed the P2 estimators and the windowed series in
        completion order, so their state is identical to unbuffered
        per-request ingest; only the Welford accumulation order
        changes (chunk merge), within the documented contract.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        chunk = np.asarray(pending, dtype=np.float64)
        sent = chunk[:, 0]
        completes = chunk[:, 2]
        latencies = completes - sent
        self._channels[PointOfMeasurement.GENERATOR].observe_chunk(
            latencies)
        self._channels[PointOfMeasurement.NIC].observe_chunk(
            chunk[:, 1] - sent)
        # Windowed series keyed on completion time, replayed in order.
        window_requests = self._window_requests
        windows = self._windows
        count = self._win_count
        total = self._win_total
        peak = self._win_max
        start = self._win_start
        complete_list = completes.tolist()
        for index, latency in enumerate(latencies.tolist()):
            if count == 0:
                start = complete_list[index]
            count += 1
            total += latency
            if latency > peak:
                peak = latency
            if count >= window_requests:
                windows.append((start, complete_list[index], count,
                                total / count, peak))
                count = 0
                total = 0.0
                peak = -math.inf
        self._win_count = count
        self._win_total = total
        self._win_max = peak
        self._win_start = start

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._recorded

    @property
    def warmup_count(self) -> int:
        """Completed requests discarded as warmup."""
        return self._warmup_skipped

    @property
    def measured_count(self) -> int:
        """Completed requests after warmup trimming."""
        return self._recorded - self._warmup_skipped

    @property
    def quantiles(self) -> Tuple[float, ...]:
        """The percentiles this sink tracks."""
        channel = self._channels[PointOfMeasurement.GENERATOR]
        return tuple(sorted(channel.quantiles))

    @property
    def windows(self) -> List[Window]:
        """The windowed time series recorded so far."""
        self._drain()
        return self._windows

    def _channel(self, point: PointOfMeasurement
                 ) -> Tuple[_Channel, float]:
        """The backing channel and additive offset for *point*
        (draining any buffered completions first)."""
        self._drain()
        if point is PointOfMeasurement.KERNEL:
            # The kernel point is the NIC point shifted by one
            # constant RX-stack traversal; a constant shift moves
            # every moment and quantile by exactly that constant.
            return self._channels[PointOfMeasurement.NIC], (
                self._kernel_stack_us)
        return self._channels[point], 0.0

    def average_latency_us(self, point: PointOfMeasurement
                           = PointOfMeasurement.GENERATOR) -> float:
        """Running-mean latency at *point* (exact up to float order)."""
        channel, offset = self._channel(point)
        if channel.moments.count == 0:
            raise ValueError("no measured samples recorded yet")
        return channel.moments.mean + offset

    def percentile_latency_us(self, percentile: float = 99.0,
                              point: PointOfMeasurement
                              = PointOfMeasurement.GENERATOR) -> float:
        """P\N{SUPERSCRIPT TWO}-estimated tail latency at *point*.

        Raises:
            ValueError: when *percentile* is not one of the tracked
                :attr:`quantiles` -- streaming estimates exist only
                for markers installed before the run.
        """
        channel, offset = self._channel(point)
        estimator = channel.quantiles.get(float(percentile))
        if estimator is None:
            tracked = ", ".join(f"{pct:g}" for pct in self.quantiles)
            raise ValueError(
                f"percentile {percentile:g} is not tracked by this "
                f"streaming sink (tracked: {tracked})")
        return estimator.value() + offset

    def variance_us2(self, point: PointOfMeasurement
                     = PointOfMeasurement.GENERATOR) -> float:
        """Running population variance at *point*."""
        channel, _ = self._channel(point)
        return channel.moments.variance()

    def export_state(self) -> Dict[str, Any]:
        """The sink's complete mergeable state (plain JSON-able data).

        One shard's contribution to a sharded run: per-channel moment
        states and quantile marker states, the windowed series, and
        the record/warmup counters.  Consumed by
        :class:`repro.parallel.merge.MergedStreamingSamples`, which
        Chan-combines the moments and mixture-replays the markers.
        """
        self._drain()
        channels: Dict[str, Any] = {}
        for point, channel in self._channels.items():
            channels[point.value] = {
                "moments": channel.moments.state(),
                "quantiles": {
                    f"{pct:g}": estimator.marker_state()
                    for pct, estimator in channel.quantiles.items()},
            }
        return {
            "recorded": self._recorded,
            "warmup_skipped": self._warmup_skipped,
            "warmup_fraction": self.warmup_fraction,
            "kernel_stack_us": self._kernel_stack_us,
            "tracked_quantiles": list(self.quantiles),
            "channels": channels,
            "windows": [list(window) for window in self.windows],
        }

    def min_latency_us(self, point: PointOfMeasurement
                       = PointOfMeasurement.GENERATOR) -> float:
        channel, offset = self._channel(point)
        return channel.moments.min + offset

    def max_latency_us(self, point: PointOfMeasurement
                       = PointOfMeasurement.GENERATOR) -> float:
        channel, offset = self._channel(point)
        return channel.moments.max + offset


# ------------------------------------------------------------- registry
def _columnar_factory(num_requests: int,
                      warmup_fraction: float) -> RunSamples:
    return RunSamples(warmup_fraction=warmup_fraction)


def _streaming_factory(num_requests: int,
                       warmup_fraction: float) -> StreamingSink:
    return StreamingSink(num_requests, warmup_fraction=warmup_fraction)


#: name -> (factory(num_requests, warmup_fraction), one-line summary).
SINKS: Dict[str, Tuple[Callable[[int, float], object], str]] = {
    SINK_COLUMNAR: (
        _columnar_factory,
        "exact per-request columns, O(requests) memory (default)"),
    SINK_STREAMING: (
        _streaming_factory,
        "running moments + P2 quantiles, O(1) memory"),
}


def sink_names() -> Tuple[str, ...]:
    """Sorted names of the registered sinks."""
    return tuple(sorted(SINKS))


def validate_sink_name(name: str) -> str:
    """Check *name* against the sink registry; return it normalized.

    Raises:
        SpecValidationError: for unknown names, with a did-you-mean
            suggestion when a registered sink name is close.
    """
    key = str(name)
    if key in SINKS:
        return key
    close = difflib.get_close_matches(key, list(SINKS), n=1)
    hint = f" -- did you mean {close[0]!r}?" if close else ""
    raise SpecValidationError(
        f"unknown sink {name!r}{hint} (registered sinks: "
        f"{', '.join(sink_names())})")


def describe_sink(name: str) -> str:
    """One-line summary of a registered sink."""
    return SINKS[validate_sink_name(name)][1]


def make_sink(name: str, num_requests: int,
              warmup_fraction: float = 0.1):
    """Construct the sink registered under *name* for one run."""
    factory, _ = SINKS[validate_sink_name(name)]
    return factory(int(num_requests), float(warmup_fraction))
