"""A small in-process metrics registry: counters, gauges, histograms.

The registry is the run-scoped ledger behind :mod:`repro.obs`:
components increment counters (events dispatched, heap compactions,
stream refills), set gauges (utilization, peak queue depth), and feed
histograms (per-stage durations).  :meth:`MetricsRegistry.flatten`
collapses everything into sorted ``(name, value)`` scalar pairs -- the
shape that rides on :class:`~repro.core.testbed.RunMetrics`, survives
JSON round-trips, and diffs cleanly in bench payloads.

Nothing here touches the simulator hot path directly; hot components
accumulate into plain attributes and the registry is populated once at
run finalization (the pull model), so the traced-off cost stays a
single attribute check at the instrumentation sites.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple, Union

MetricValue = Union[int, float]
#: The flattened registry shape carried on ``RunMetrics.obs_metrics``.
MetricPairs = Tuple[Tuple[str, float], ...]


class Counter:
    """A monotonically non-decreasing scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: MetricValue = 1) -> None:
        """Increment by *amount* (must be >= 0)."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (add {amount!r})")
        self.value += amount


class Gauge:
    """A scalar that may move in either direction (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: MetricValue) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with running sum/count/extremes.

    Bucket upper bounds are inclusive; one overflow bucket catches
    everything past the last bound.  Memory is O(buckets), independent
    of observation count.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min", "max")

    #: Default bounds, in microseconds: log-spaced from sub-us to 1 s.
    DEFAULT_BOUNDS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                      500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0,
                      100_000.0, 1_000_000.0)

    def __init__(self, name: str,
                 bounds: Iterable[float] = DEFAULT_BOUNDS) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: MetricValue) -> None:
        value = float(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Names to instruments; one registry per observed run.

    ``counter``/``gauge``/``histogram`` are get-or-create, so any
    component can contribute to a shared name without coordination.
    A name registered as one kind cannot be re-registered as another.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: type, *args) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str,
                  bounds: Iterable[float] = Histogram.DEFAULT_BOUNDS
                  ) -> Histogram:
        return self._get(  # type: ignore[return-value]
            name, Histogram, bounds)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Structured dump: name -> scalar, or a histogram summary dict."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "mean": metric.mean,
                    "min": metric.min if metric.count else 0.0,
                    "max": metric.max if metric.count else 0.0,
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                }
            else:
                out[name] = metric.value  # type: ignore[attr-defined]
        return out

    def flatten(self) -> MetricPairs:
        """Sorted scalar pairs; histograms contribute ``.count``/``.mean``.

        This is the serialization-stable shape surfaced on
        :class:`~repro.core.testbed.RunMetrics.obs_metrics`.
        """
        pairs: List[Tuple[str, float]] = []
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                pairs.append((name + ".count", float(metric.count)))
                pairs.append((name + ".mean", float(metric.mean)))
            else:
                pairs.append(
                    (name, float(metric.value)))  # type: ignore[attr-defined]
        pairs.sort()
        return tuple(pairs)
