"""Trace export: Chrome trace-event JSON and latency breakdowns.

:func:`chrome_trace` turns a :class:`~repro.obs.trace.Tracer`'s spans
into the Chrome trace-event JSON object format, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``: one ``"X"``
(complete) event per span with microsecond ``ts``/``dur``, one
process, and one named thread row per track (client, net, and each
station/balancer/fanout).  :func:`validate_chrome_trace` checks a
payload against the parts of the trace-event contract the viewers
actually enforce -- the CI smoke gate for ``repro trace``.

:func:`latency_breakdown` aggregates span durations per stage name,
the per-stage table ``repro trace`` prints.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

import numpy as np

from repro.obs.trace import Tracer

#: Span-name prefix -> trace event category.
_CATEGORIES = {
    "client": "client",
    "net": "net",
    "lb": "cluster",
    "fanout": "cluster",
    "queue": "server",
    "service": "server",
    "request": "request",
}

#: Phases emitted by :func:`chrome_trace` (and accepted by the
#: validator): complete spans and metadata only.
_VALID_PHASES = frozenset("XMiIbBeEsStfPNODvVC")


def _category(name: str) -> str:
    return _CATEGORIES.get(name.split(".", 1)[0], "other")


def chrome_trace(tracer: Tracer, label: str = "repro") -> Dict[str, Any]:
    """Render *tracer*'s spans as a Chrome trace-event JSON object.

    Args:
        tracer: the recorded spans.
        label: process name shown in the viewer.

    Returns:
        The JSON-ready payload (``{"traceEvents": [...], ...}``).
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": label},
    }]
    tracks: Dict[str, int] = {}
    for name, start, end, request_id, track, detail in tracer.spans:
        tid = tracks.get(track)
        if tid is None:
            tid = len(tracks) + 1
            tracks[track] = tid
        args: Dict[str, Any] = {"request_id": request_id}
        if detail is not None:
            args["detail"] = detail
        events.append({
            "name": name,
            "cat": _category(name),
            "ph": "X",
            "ts": start,
            "dur": end - start,
            "pid": 0,
            "tid": tid,
            "args": args,
        })
    for track, tid in tracks.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": track},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "spans": len(tracer.spans),
            "dropped_spans": tracer.dropped,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str,
                       label: str = "repro") -> Dict[str, Any]:
    """Validate and write the trace JSON to *path*; return the payload."""
    payload = chrome_trace(tracer, label=label)
    validate_chrome_trace(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return payload


def validate_chrome_trace(payload: Any) -> int:
    """Check *payload* against the Chrome trace-event object format.

    Returns:
        The number of trace events validated.

    Raises:
        ValueError: describing the first malformed event found.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"trace payload must be a JSON object, got "
            f"{type(payload).__name__}")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload needs a 'traceEvents' list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _VALID_PHASES:
            raise ValueError(f"{where} has invalid phase {phase!r}")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{where} needs a non-empty string name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where} needs an integer {key!r}")
        if phase == "M":
            continue  # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or not np.isfinite(ts):
            raise ValueError(f"{where} needs a finite numeric ts")
        if phase == "X":
            dur = event.get("dur")
            if (not isinstance(dur, (int, float))
                    or not np.isfinite(dur) or dur < 0):
                raise ValueError(
                    f"{where} needs a finite non-negative dur, "
                    f"got {dur!r}")
    return len(events)


# ------------------------------------------------------------ breakdown
def latency_breakdown(tracer: Tracer) -> Dict[str, Dict[str, float]]:
    """Per-stage duration statistics over all recorded spans.

    Returns:
        span name -> ``{count, total_us, mean_us, p50_us, p99_us,
        max_us}``, zero-duration instants included (they aggregate to
        zero rows, which keeps the table exhaustive).
    """
    durations: Dict[str, List[float]] = {}
    for name, start, end, _request_id, _track, _detail in tracer.spans:
        durations.setdefault(name, []).append(end - start)
    out: Dict[str, Dict[str, float]] = {}
    for name, values in durations.items():
        array = np.asarray(values, dtype=np.float64)
        out[name] = {
            "count": float(array.size),
            "total_us": float(array.sum()),
            "mean_us": float(array.mean()),
            "p50_us": float(np.percentile(array, 50.0)),
            "p99_us": float(np.percentile(array, 99.0)),
            "max_us": float(array.max()),
        }
    return out


def render_breakdown_table(
        breakdown: Dict[str, Dict[str, float]],
        total_request_us: Optional[float] = None) -> str:
    """Format a :func:`latency_breakdown` as an aligned text table.

    Args:
        breakdown: per-stage statistics.
        total_request_us: when given, adds a ``% of request`` column
            (stage total over total request-span time).
    """
    header = ["stage", "count", "mean us", "p50 us", "p99 us",
              "max us", "total us"]
    if total_request_us:
        header.append("% of req")
    rows: List[List[str]] = []
    ordered = sorted(breakdown.items(),
                     key=lambda item: -item[1]["total_us"])
    for name, stats in ordered:
        row = [
            name,
            f"{int(stats['count'])}",
            f"{stats['mean_us']:.2f}",
            f"{stats['p50_us']:.2f}",
            f"{stats['p99_us']:.2f}",
            f"{stats['max_us']:.2f}",
            f"{stats['total_us']:.1f}",
        ]
        if total_request_us:
            row.append(
                f"{100.0 * stats['total_us'] / total_request_us:.1f}%")
        rows.append(row)
    widths = [max(len(header[col]),
                  *(len(row[col]) for row in rows)) if rows
              else len(header[col])
              for col in range(len(header))]
    lines = ["  ".join(title.ljust(widths[col])
                       for col, title in enumerate(header))]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(
            cell.ljust(widths[col]) if col == 0 else cell.rjust(widths[col])
            for col, cell in enumerate(row)))
    return "\n".join(lines)
