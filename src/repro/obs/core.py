"""The per-run observability context.

One :class:`Observability` instance is installed on one
:class:`~repro.sim.engine.Simulator` (``sim.obs``) before the
testbed's components are built.  Components discover it at
construction via the null-object contract::

    obs = getattr(sim, "obs", None)
    self._trace = obs.tracer if obs is not None else None

so a disabled run (``sim.obs is None``, the default) pays exactly one
cached-attribute check per hook on the hot path, and an enabled run
appends spans / bumps plain counters with no extra indirection.

Metrics follow the pull model: hot components accumulate into plain
attributes they already keep (events processed, dispatch counts,
busy time); :meth:`Observability.finalize` harvests them all into the
:class:`~repro.obs.metrics.MetricsRegistry` once, after the run
drains, and returns the flattened pairs that ride on
:class:`~repro.core.testbed.RunMetrics.obs_metrics`.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.obs.metrics import MetricPairs, MetricsRegistry
from repro.obs.sinks import (
    DEFAULT_SINK,
    SINK_COLUMNAR,
    make_sink,
    validate_sink_name,
)
from repro.obs.trace import DEFAULT_MAX_SPANS, Tracer


class LinkObserver:
    """Message accounting attached to one network link.

    The link calls :meth:`on_message` per sampled transit -- two plain
    attribute adds -- only when an observer is attached.
    """

    __slots__ = ("name", "messages", "kb")

    def __init__(self, name: str) -> None:
        self.name = name
        self.messages = 0
        self.kb = 0.0

    def on_message(self, message_kb: float) -> None:
        self.messages += 1
        self.kb += message_kb


class Observability:
    """Run-scoped observability switchboard.

    Args:
        trace: record lifecycle spans (off by default; tracing costs
            a few tuple appends per request and the span memory).
        sink: telemetry sink name (see :mod:`repro.obs.sinks`);
            validated immediately so typos fail before a run starts.
        max_spans: span-list bound when tracing.

    Example:
        >>> from repro.sim.engine import Simulator
        >>> obs = Observability(trace=True)
        >>> sim = obs.install(Simulator())
        >>> sim.obs is obs
        True
    """

    def __init__(self, trace: bool = False, sink: str = DEFAULT_SINK,
                 max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.sink_name = validate_sink_name(sink)
        self.tracer: Optional[Tracer] = (
            Tracer(max_spans) if trace else None)
        self.registry = MetricsRegistry()
        self._generators: List[Any] = []
        self._stations: List[Any] = []
        self._balancers: List[Any] = []
        self._fanouts: List[Any] = []
        self._caches: List[Any] = []
        self._resilience: List[Any] = []
        self._links: List[LinkObserver] = []
        self._finalized: Optional[MetricPairs] = None

    @property
    def tracing(self) -> bool:
        """True when lifecycle spans are being recorded."""
        return self.tracer is not None

    # ------------------------------------------------------------------
    def install(self, sim: Any) -> Any:
        """Attach this context to *sim* (``sim.obs``); return *sim*."""
        sim.obs = self
        return sim

    # ---------------------------------------------------- registration
    def on_generator(self, generator: Any) -> None:
        """A load generator is wiring up: swap sinks, watch links.

        Called from ``LoadGenerator.__init__``; replacing ``samples``
        here (before any completion) keeps the generator subclasses
        sink-agnostic.
        """
        self._generators.append(generator)
        if self.sink_name != SINK_COLUMNAR:
            generator.samples = make_sink(
                self.sink_name, generator.num_requests,
                generator.samples.warmup_fraction)
        self.watch_link(generator._link_to_server, "client->server")
        self.watch_link(generator._link_to_client, "server->client")

    def on_station(self, station: Any) -> None:
        self._stations.append(station)

    def on_balancer(self, balancer: Any) -> None:
        self._balancers.append(balancer)

    def on_fanout(self, fanout: Any) -> None:
        self._fanouts.append(fanout)
        for index, link in enumerate(fanout._links):
            if link is not None:
                self.watch_link(
                    link, f"{fanout.name}.shard{index}")

    def on_cache(self, cache: Any) -> None:
        self._caches.append(cache)

    def on_resilience(self, dispatcher: Any) -> None:
        self._resilience.append(dispatcher)

    def watch_link(self, link: Any, name: str) -> LinkObserver:
        """Attach (or reuse) a message observer on *link*."""
        observer = getattr(link, "observer", None)
        if observer is None:
            observer = LinkObserver(name)
            link.observer = observer
            self._links.append(observer)
        return observer

    # ------------------------------------------------------- finalize
    def finalize(self, testbed: Any) -> MetricPairs:
        """Harvest every component's counters into the registry.

        Idempotent: the run summary and any later export see the same
        flattened snapshot.
        """
        if self._finalized is not None:
            return self._finalized
        reg = self.registry
        sim = testbed.sim
        reg.counter("engine.events_dispatched").add(sim.events_processed)
        reg.counter("engine.heap_compactions").add(
            getattr(sim, "compactions", 0))
        kernel_counters = getattr(sim, "kernel_counters", None)
        if kernel_counters is not None:
            # The vectorized engine: batch-dequeue engagement telemetry
            # (duck-typed so the reference engine pays nothing).
            counters = kernel_counters()
            reg.counter("engine.kernel.batches").add(
                counters["batches"])
            reg.counter("engine.kernel.batched_events").add(
                counters["batched_events"])
            reg.counter("engine.kernel.scalar_fallbacks").add(
                counters["scalar_fallbacks"])
            reg.gauge("engine.kernel.mean_batch_len").set(
                counters["mean_batch_len"])
        totals = {"blocks_drawn": 0, "batched_served": 0,
                  "scalar_served": 0, "reconciles": 0}
        for stats in testbed.streams.batched_stats().values():
            for key in totals:
                totals[key] += stats.get(key, 0)
        for key, value in totals.items():
            reg.counter(f"sampling.{key}").add(value)
        for observer in self._links:
            reg.counter(f"net.{observer.name}.messages").add(
                observer.messages)
            reg.counter(f"net.{observer.name}.kb").add(observer.kb)
        for station in self._stations:
            prefix = f"station.{station.name}"
            reg.counter(prefix + ".completed").add(station.completed)
            reg.gauge(prefix + ".utilization").set(station.utilization())
            pool = getattr(station, "_pool", None)
            if pool is not None:
                reg.gauge(prefix + ".peak_queue_depth").set(
                    getattr(pool, "peak_queue_depth", 0))
                reg.counter(prefix + ".queue_drops").add(
                    pool.queue.dropped)
        for balancer in self._balancers:
            prefix = f"lb.{balancer.name}"
            reg.counter(prefix + ".completed").add(balancer.completed)
            reg.gauge(prefix + ".peak_outstanding").set(
                getattr(balancer, "peak_outstanding", 0))
            for index, count in enumerate(balancer.dispatched):
                reg.counter(
                    f"{prefix}.dispatched.node{index}").add(count)
        for fanout in self._fanouts:
            prefix = f"fanout.{fanout.name}"
            reg.counter(prefix + ".roots_completed").add(
                fanout.roots_completed)
            reg.counter(prefix + ".subs_issued").add(fanout.subs_issued)
            reg.counter(prefix + ".subs_completed").add(
                fanout.subs_completed)
        for cache in self._caches:
            prefix = f"cache.{cache.name}"
            reg.counter(prefix + ".hits").add(cache.hits)
            reg.counter(prefix + ".misses").add(cache.misses)
            reg.gauge(prefix + ".hit_rate").set(cache.hit_rate)
        for dispatcher in self._resilience:
            prefix = f"resilience.{dispatcher.name}"
            reg.counter(prefix + ".calls").add(dispatcher.calls)
            reg.counter(prefix + ".retries").add(dispatcher.retries)
            reg.counter(prefix + ".hedges").add(dispatcher.hedges)
            reg.counter(prefix + ".timeouts").add(dispatcher.timeouts)
            reg.counter(prefix + ".attempts_issued").add(
                dispatcher.attempts_issued)
            reg.counter(prefix + ".attempts_completed").add(
                dispatcher.attempts_completed)
        for generator in self._generators:
            samples = generator.samples
            reg.counter("sink.recorded").add(len(samples))
            reg.counter("sink.warmup_skipped").add(samples.warmup_count)
        tracer = self.tracer
        if tracer is not None:
            reg.counter("trace.spans").add(len(tracer))
            reg.counter("trace.dropped").add(tracer.dropped)
        self._finalized = reg.flatten()
        return self._finalized
