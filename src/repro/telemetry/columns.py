"""The columnar sample buffer behind per-run telemetry.

:class:`SampleColumns` stores one float64 column per request-record
field (see :data:`COLUMN_FIELDS`).  Columns are preallocated and grown
by doubling, so recording a completion is a handful of scalar stores
with no per-request object retention; reading a column is a zero-copy
slice of the filled prefix.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.server.request import Request

#: Column names, matching :class:`~repro.server.request.Request`
#: attributes one-to-one so a row can be materialized back into a
#: request record when object form is genuinely needed (debugging,
#: timeline validation).
COLUMN_FIELDS = (
    "request_id",
    "size_kb",
    "intended_send_us",
    "actual_send_us",
    "server_arrival_us",
    "queue_wait_us",
    "service_us",
    "server_departure_us",
    "client_nic_us",
    "measured_complete_us",
)

#: Initial per-column capacity (rows).
DEFAULT_CAPACITY = 1024


class SampleColumns:
    """Struct-of-arrays buffer of completed-request telemetry.

    Example:
        >>> cols = SampleColumns(capacity=2)
        >>> cols.append(Request(request_id=0, client_nic_us=50.0))
        >>> cols.append(Request(request_id=1, client_nic_us=60.0))
        >>> cols.append(Request(request_id=2, client_nic_us=70.0))  # grows
        >>> len(cols)
        3
        >>> cols.column("client_nic_us")
        array([50., 60., 70.])
    """

    __slots__ = ("_size", "_capacity", "_data")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._size = 0
        self._capacity = int(capacity)
        self._data = {name: np.empty(self._capacity, dtype=np.float64)
                      for name in COLUMN_FIELDS}

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Allocated rows (grows by doubling as needed)."""
        return self._capacity

    # ------------------------------------------------------------------
    def _grow(self) -> None:
        self._capacity *= 2
        for name, column in self._data.items():
            grown = np.empty(self._capacity, dtype=np.float64)
            grown[:self._size] = column[:self._size]
            self._data[name] = grown

    def append(self, request: Request) -> None:
        """Record one completed request's full timestamp timeline."""
        row = self._size
        if row == self._capacity:
            self._grow()
        data = self._data
        data["request_id"][row] = request.request_id
        data["size_kb"][row] = request.size_kb
        data["intended_send_us"][row] = request.intended_send_us
        data["actual_send_us"][row] = request.actual_send_us
        data["server_arrival_us"][row] = request.server_arrival_us
        data["queue_wait_us"][row] = request.queue_wait_us
        data["service_us"][row] = request.service_us
        data["server_departure_us"][row] = request.server_departure_us
        data["client_nic_us"][row] = request.client_nic_us
        data["measured_complete_us"][row] = request.measured_complete_us
        self._size = row + 1

    def extend(self, requests: Sequence[Request]) -> None:
        """Record many completed requests in one bulk write.

        Equivalent to calling :meth:`append` once per request in
        order -- same growth schedule, same final state -- but each
        column is written with a single slice assignment instead of
        one scalar store per request, which is what makes batched
        ingest on the simulator hot path pay off.
        """
        count = len(requests)
        if count == 0:
            return
        if count == 1:
            self.append(requests[0])
            return
        start = self._size
        need = start + count
        if need > self._capacity:
            while self._capacity < need:
                self._capacity *= 2
            for name, column in self._data.items():
                grown = np.empty(self._capacity, dtype=np.float64)
                grown[:start] = column[:start]
                self._data[name] = grown
        data = self._data
        data["request_id"][start:need] = [
            r.request_id for r in requests]
        data["size_kb"][start:need] = [
            r.size_kb for r in requests]
        data["intended_send_us"][start:need] = [
            r.intended_send_us for r in requests]
        data["actual_send_us"][start:need] = [
            r.actual_send_us for r in requests]
        data["server_arrival_us"][start:need] = [
            r.server_arrival_us for r in requests]
        data["queue_wait_us"][start:need] = [
            r.queue_wait_us for r in requests]
        data["service_us"][start:need] = [
            r.service_us for r in requests]
        data["server_departure_us"][start:need] = [
            r.server_departure_us for r in requests]
        data["client_nic_us"][start:need] = [
            r.client_nic_us for r in requests]
        data["measured_complete_us"][start:need] = [
            r.measured_complete_us for r in requests]
        self._size = need

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]
                    ) -> "SampleColumns":
        """Build a buffer directly from full column arrays.

        *arrays* must provide every :data:`COLUMN_FIELDS` name, all of
        one length.  Values are copied into float64 storage, so the
        buffer owns its memory and later :meth:`append` calls grow it
        normally.  This is the bulk entry point the sharded runner
        uses to reassemble one merged buffer from per-shard column
        payloads (:mod:`repro.parallel`).
        """
        missing = [name for name in COLUMN_FIELDS if name not in arrays]
        if missing:
            raise ValueError(
                f"from_arrays is missing column(s): {', '.join(missing)}")
        first = np.asarray(arrays[COLUMN_FIELDS[0]], dtype=np.float64)
        size = int(first.shape[0])
        out = cls(capacity=max(size, 1))
        for name in COLUMN_FIELDS:
            column = np.asarray(arrays[name], dtype=np.float64)
            if column.shape != (size,):
                raise ValueError(
                    f"column {name!r} has shape {column.shape}, "
                    f"expected ({size},)")
            out._data[name][:size] = column
        out._size = size
        return out

    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """The filled prefix of one column (a zero-copy, read-only view).

        The view is frozen so consumers cannot corrupt the live buffer;
        copy before mutating.  Appends keep writing through the base
        array unaffected.

        Raises:
            KeyError: for a name not in :data:`COLUMN_FIELDS`.
        """
        view = self._data[name][:self._size]
        view.setflags(write=False)
        return view

    def rows(self) -> Iterator[Request]:
        """Materialize rows back into request records, in record order.

        This is the slow, object-shaped escape hatch; summary paths
        should stay on :meth:`column` arithmetic.
        """
        for row in range(self._size):
            yield self.row(row)

    def row(self, index: int) -> Request:
        """Materialize one row as a request record."""
        if not 0 <= index < self._size:
            raise IndexError(
                f"row {index} out of range for {self._size} samples")
        data = self._data
        return Request(
            request_id=int(data["request_id"][index]),
            size_kb=float(data["size_kb"][index]),
            intended_send_us=float(data["intended_send_us"][index]),
            actual_send_us=float(data["actual_send_us"][index]),
            server_arrival_us=float(data["server_arrival_us"][index]),
            queue_wait_us=float(data["queue_wait_us"][index]),
            service_us=float(data["service_us"][index]),
            server_departure_us=float(data["server_departure_us"][index]),
            client_nic_us=float(data["client_nic_us"][index]),
            measured_complete_us=float(
                data["measured_complete_us"][index]),
        )
