"""Struct-of-arrays telemetry for the request lifecycle.

The hot path of every experiment is the per-request simulation loop;
this package holds the columnar buffers it records into.  Completed
requests land in a :class:`~repro.telemetry.columns.SampleColumns`
buffer -- one preallocated, grow-by-doubling numpy column per
timestamp -- instead of a list of retained
:class:`~repro.server.request.Request` objects, so per-run summaries
(average, percentiles, send-error and overhead arrays) are vectorized
column arithmetic rather than Python loops over an object graph.
"""

from repro.telemetry.columns import COLUMN_FIELDS, SampleColumns

__all__ = ["COLUMN_FIELDS", "SampleColumns"]
