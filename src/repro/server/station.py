"""A service station: worker threads with server-side hardware effects.

:class:`ServiceStation` is the simulated counterpart of "a memcached
instance with 10 worker threads pinned on a single socket".  It wraps a
:class:`~repro.sim.resources.ServerPool` and applies, per request:

* the sampled application service time (from a
  :class:`~repro.server.service.ServiceModel`),
* kernel RX/TX stack cost,
* frequency scaling from the server's CPUFreq configuration,
* the SMT knob: constant sharing overhead when enabled, stochastic
  softirq interference when disabled (see :mod:`repro.hardware.smt`),
* the C-states knob: a worker whose core idled long enough to enter a
  sleep state pays its exit latency before serving (the Fig. 3 C1E
  mechanism).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.config.knobs import FrequencyGovernor, HardwareConfig
from repro.config.validate import validate_config
from repro.hardware.cstates import CStateGovernor
from repro.hardware.smt import SmtModel
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.server.request import Request
from repro.server.service import ServiceModel
from repro.sim.engine import Simulator
from repro.sim.resources import ServerPool
from repro.sim.sampling import as_stream
from repro.units import work_cycles_us


class ServiceStation:
    """One tier of a service: *n* workers draining a shared queue."""

    def __init__(self, sim: Simulator, config: HardwareConfig,
                 service_model: ServiceModel, workers: int,
                 rng: Optional[np.random.Generator] = None,
                 params: SkylakeParameters = DEFAULT_PARAMETERS,
                 name: str = "service",
                 env_scale: float = 1.0) -> None:
        if env_scale <= 0:
            raise ValueError(f"env_scale must be positive, got {env_scale}")
        self._sim = sim
        self.name = str(name)
        self.config = validate_config(config)
        self.service_model = service_model
        self.params = params
        # All of the station's stochastic effects (service times, SMT
        # interference, C-state wake prediction) draw through one
        # batched facade over the provided generator; the facade
        # serves the exact scalar sequence and engages draw-ahead
        # blocks whenever the configuration's draws stay on a single
        # primitive (e.g. lognormal service + prediction noise).
        self._rng = as_stream(rng)
        self._env_scale = float(env_scale)
        self._pool = ServerPool(sim, workers)
        self._cstates = CStateGovernor(params, config)
        run_intensity = 1.0
        if self._rng is not None and params.smt_interference_run_sigma > 0:
            run_intensity = float(
                self._rng.lognormal(0.0, params.smt_interference_run_sigma))
        self._smt = SmtModel(params, config.smt,
                             run_intensity=run_intensity)
        self._freq_ghz = self._static_frequency()
        # Per-request constants hoisted off the hot path.
        self._smt_factor = self._smt.service_time_factor()
        self._kernel_stack_us = params.kernel_stack_us
        self._freq_scale = params.nominal_freq_ghz / self._freq_ghz
        # Observability (null-object contract): cache the tracer once
        # so submit() pays a single None test when tracing is off.
        obs = getattr(sim, "obs", None)
        self._trace = obs.tracer if obs is not None else None
        if obs is not None:
            obs.on_station(self)
        # Accelerated-kernel handshake (see repro.sim.kernel).
        adopt = getattr(sim, "adopt_station", None)
        if adopt is not None:
            adopt(self)

    # ------------------------------------------------------------------
    def _static_frequency(self) -> float:
        """Server cores run at a fixed frequency under the baseline.

        The paper's server baseline pins ``performance`` with turbo
        off, so workers run at a constant clock; we evaluate the
        governor once instead of tracking per-worker utilization.
        """
        governor = self.config.frequency_governor
        if governor is FrequencyGovernor.PERFORMANCE:
            return (self.params.turbo_freq_ghz if self.config.turbo
                    else self.params.nominal_freq_ghz)
        return self.params.min_freq_ghz

    @property
    def workers(self) -> int:
        """Number of worker threads."""
        return self._pool.num_servers

    @property
    def frequency_ghz(self) -> float:
        """The static worker frequency in effect."""
        return self._freq_ghz

    def utilization(self) -> float:
        """Time-averaged worker utilization since creation."""
        return self._pool.utilization()

    @property
    def completed(self) -> int:
        """Requests fully served so far."""
        return self._pool.jobs_completed

    # ------------------------------------------------------------------
    def expected_service_us(self) -> float:
        """Mean per-request occupancy (for load/utilization sizing)."""
        base = (self.service_model.mean_service_us()
                + self.params.kernel_stack_us)
        base *= self._smt.service_time_factor()
        return work_cycles_us(
            base, self.params.nominal_freq_ghz, self._freq_ghz)

    def _sample_occupancy_us(self, request: Request,
                             idle_gap_us: float) -> float:
        """Total worker occupancy for one request, including knobs."""
        # busy_servers includes the worker picking this job up; the
        # interference a request suffers comes from the *other* work
        # on the machine.
        rng = self._rng
        pool = self._pool
        utilization = max(0, pool.busy_servers - 1) / pool.num_servers
        base = self.service_model.sample_service_us(rng, request)
        base = (base + self._kernel_stack_us) * self._env_scale
        base *= self._smt_factor
        base += self._smt.interference_us(utilization, rng)
        # Same float expression as work_cycles_us(base, nominal, freq)
        # with the nominal/freq ratio precomputed once: the station's
        # worker frequency is static for the whole run.
        scaled = base * self._freq_scale
        wake, _ = self._cstates.wake_and_state(idle_gap_us, rng)
        return scaled + wake

    def _service_time(self, job: Request, server_index: int,
                      idle_gap_us: float) -> float:
        """Pool callback: sample and account one request's occupancy.

        A bound method rather than a per-submit closure -- one less
        allocation per request on the hot path.
        """
        occupancy = self._sample_occupancy_us(job, idle_gap_us)
        job.service_us += occupancy
        return occupancy

    # ------------------------------------------------------------------
    def submit(self, request: Request,
               done_fn: Callable[..., None], *ctx: Any) -> None:
        """Accept *request* now; call ``done_fn(request, *ctx)`` on
        departure.

        Sets ``server_arrival_us`` (first tier only), accumulates
        ``queue_wait_us``/``service_us`` and stamps
        ``server_departure_us``.  Extra positional context keeps the
        caller's completion callback a stable bound method -- the
        accelerated kernel dispatches on callback identity.
        """
        if request.server_arrival_us == 0.0:
            request.server_arrival_us = self._sim.now

        trace = self._trace
        if trace is None:
            # Untraced hot path: no per-request closure; the pool
            # carries the downstream callback as data.
            self._pool.submit(request, self._service_time,
                              self._pool_done, done_fn, ctx)
            return
        else:
            # Traced variant: derive the queue/service spans from the
            # timestamps the pool already reports.  Submission time is
            # the enqueue time, so [t_submit, t_submit + waited] is
            # the wait and [t_submit + waited, now] the occupancy --
            # no extra events, no random draws.
            t_submit = self._sim.now
            name = self.name

            def pool_done(job: Request, waited_us: float) -> None:
                job.queue_wait_us += waited_us
                now = self._sim.now
                job.server_departure_us = now
                started = t_submit + waited_us
                if waited_us > 0.0:
                    trace.span("queue", t_submit, started,
                               job.request_id, name)
                trace.span("service", started, now,
                           job.request_id, name)
                done_fn(job, *ctx)

        self._pool.submit(request, self._service_time, pool_done)

    def _pool_done(self, job: Request, waited_us: float,
                   done_fn: Callable[..., None], ctx: tuple = ()) -> None:
        """Untraced departure accounting (stable bound method)."""
        job.queue_wait_us += waited_us
        job.server_departure_us = self._sim.now
        done_fn(job, *ctx)
