"""Server substrate: requests, service-time models, queueing stations.

A service is a :class:`~repro.server.station.ServiceStation` -- a pool
of worker threads pinned to cores of a server machine, with server-side
hardware effects (C-state wake-ups on idle workers, SMT interference,
frequency scaling) applied per request.  Multi-tier applications
(HDSearch, Social Network) are composed with
:class:`~repro.server.tiers.TieredService`.
"""

from repro.server.request import Request
from repro.server.service import (
    BimodalService,
    ExponentialService,
    FixedService,
    LognormalService,
    ServiceModel,
)
from repro.server.station import ServiceStation
from repro.server.tiers import TierSpec, TieredService

__all__ = [
    "Request",
    "ServiceModel",
    "FixedService",
    "ExponentialService",
    "LognormalService",
    "BimodalService",
    "ServiceStation",
    "TierSpec",
    "TieredService",
]
