"""Multi-tier service composition (HDSearch, Social Network).

A :class:`TieredService` chains :class:`ServiceStation` tiers: a
request traverses tier 0, then tier 1, ... with an inter-tier network
hop between them, and finally departs.  A tier may *fan out*: HDSearch's
midtier issues parallel lookups to bucket servers and proceeds when the
slowest one returns; the per-tier ``fanout`` models that
max-of-parallel-lookups behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.net.link import NetworkLink
from repro.server.request import Request
from repro.server.station import ServiceStation
from repro.sim.engine import Simulator


@dataclass
class TierSpec:
    """One tier of a multi-tier service.

    Attributes:
        station: the service station implementing the tier.
        fanout: parallel sub-requests issued to the station per request
            (the request proceeds when all return).
        hop_link: network link crossed to reach this tier from the
            previous one, or ``None`` for a co-located tier.
    """

    station: ServiceStation
    fanout: int = 1
    hop_link: Optional[NetworkLink] = None

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ConfigurationError(
                f"fanout must be >= 1, got {self.fanout}"
            )


class TieredService:
    """A chain of service tiers with the same submit/done interface
    as a single :class:`ServiceStation`."""

    def __init__(self, sim: Simulator, tiers: Sequence[TierSpec],
                 name: str = "tiered-service") -> None:
        if not tiers:
            raise ConfigurationError("a tiered service needs >= 1 tier")
        self._sim = sim
        self._tiers: List[TierSpec] = list(tiers)
        self.name = str(name)

    @property
    def tiers(self) -> Sequence[TierSpec]:
        """The tier chain, front tier first."""
        return tuple(self._tiers)

    def expected_service_us(self) -> float:
        """Sum of mean tier occupancies along the critical path."""
        return sum(spec.station.expected_service_us() * spec.fanout
                   for spec in self._tiers)

    # ------------------------------------------------------------------
    def submit(self, request: Request,
               done_fn: Callable[..., None], *ctx: Any) -> None:
        """Accept *request* now; call ``done_fn(request, *ctx)`` after
        the last tier."""
        if request.server_arrival_us == 0.0:
            request.server_arrival_us = self._sim.now
        if ctx:
            inner = done_fn

            def done_fn(job: Request) -> None:
                inner(job, *ctx)
        self._enter_tier(request, 0, done_fn)

    def _enter_tier(self, request: Request, index: int,
                    done_fn: Callable[[Request], None]) -> None:
        if index >= len(self._tiers):
            request.server_departure_us = self._sim.now
            done_fn(request)
            return
        spec = self._tiers[index]
        hop = (spec.hop_link.sample_latency_us(request.size_kb)
               if spec.hop_link is not None else 0.0)
        self._sim.post(hop, self._run_tier, request, index, done_fn)

    def _run_tier(self, request: Request, index: int,
                  done_fn: Callable[[Request], None]) -> None:
        spec = self._tiers[index]
        remaining = [spec.fanout]

        def sub_done(sub: Request) -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                # Account the slowest sub-request path on the parent.
                return_hop = (
                    spec.hop_link.sample_latency_us(request.size_kb)
                    if spec.hop_link is not None else 0.0)
                self._sim.post(
                    return_hop, self._leave_tier, request, index, done_fn)

        if spec.fanout == 1:
            spec.station.submit(request, sub_done)
            return
        for shard in range(spec.fanout):
            sub = Request(
                request_id=request.request_id,
                size_kb=request.size_kb / spec.fanout,
                intended_send_us=request.intended_send_us,
                actual_send_us=request.actual_send_us,
            )
            spec.station.submit(sub, self._make_sub_collector(
                request, sub_done))

    def _make_sub_collector(self, parent: Request,
                            sub_done: Callable[[Request], None]):
        def collect(sub: Request) -> None:
            parent.service_us = max(parent.service_us, sub.service_us)
            parent.queue_wait_us = max(
                parent.queue_wait_us, sub.queue_wait_us)
            sub_done(sub)
        return collect

    def _leave_tier(self, request: Request, index: int,
                    done_fn: Callable[[Request], None]) -> None:
        self._enter_tier(request, index + 1, done_fn)
