"""Service-time models.

A :class:`ServiceModel` samples the CPU time one request needs on a
worker, calibrated at the server's nominal frequency.  Workloads build
their own models (Memcached from ETC value sizes, HDSearch from LSH
candidate counts); the generic shapes live here.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol

import numpy as np

from repro.errors import ConfigurationError


class ServiceModel(Protocol):
    """Protocol: sample per-request service demand in microseconds."""

    def sample_service_us(self, rng: Optional[np.random.Generator],
                          request=None) -> float:
        """Sample one request's service time at nominal frequency."""
        ...

    def mean_service_us(self) -> float:
        """The model's mean service time (for Little's-law sizing)."""
        ...


class FixedService:
    """Deterministic service time."""

    def __init__(self, service_us: float) -> None:
        if service_us < 0:
            raise ConfigurationError(
                f"service time must be >= 0, got {service_us}"
            )
        self._service_us = float(service_us)

    def sample_service_us(self, rng=None, request=None) -> float:
        return self._service_us

    def mean_service_us(self) -> float:
        return self._service_us


class ExponentialService:
    """Exponentially-distributed service time (an M/M/n station)."""

    def __init__(self, mean_us: float) -> None:
        if mean_us <= 0:
            raise ConfigurationError(
                f"mean service time must be positive, got {mean_us}"
            )
        self._mean_us = float(mean_us)

    def sample_service_us(self, rng=None, request=None) -> float:
        if rng is None:
            return self._mean_us
        # mean * std_exp is bit-identical to Generator.exponential(mean)
        # and serves from a draw-ahead block when rng is a
        # BatchedStream (see repro.sim.sampling).
        return self._mean_us * float(rng.standard_exponential())

    def mean_service_us(self) -> float:
        return self._mean_us


class LognormalService:
    """Lognormal service time: right-skewed, the common shape for
    request processing (hash lookups mostly fast, occasional slow
    path)."""

    def __init__(self, mean_us: float, sigma: float = 0.35) -> None:
        if mean_us <= 0:
            raise ConfigurationError(
                f"mean service time must be positive, got {mean_us}"
            )
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self._mean_us = float(mean_us)
        self._sigma = float(sigma)
        self._mu = math.log(self._mean_us) - 0.5 * self._sigma ** 2

    def sample_service_us(self, rng=None, request=None) -> float:
        if rng is None or self._sigma == 0:
            return self._mean_us
        # exp(mu + sigma * z) is bit-identical to
        # Generator.lognormal(mu, sigma) (same libm exp in-process)
        # and batch-servable via BatchedStream.standard_normal.
        return math.exp(self._mu + self._sigma * float(rng.standard_normal()))

    def mean_service_us(self) -> float:
        return self._mean_us


class BimodalService:
    """Two-population service time (e.g. cache hit vs. miss)."""

    def __init__(self, fast_us: float, slow_us: float,
                 slow_fraction: float) -> None:
        if fast_us <= 0 or slow_us <= 0:
            raise ConfigurationError("service times must be positive")
        if not 0.0 <= slow_fraction <= 1.0:
            raise ConfigurationError(
                f"slow_fraction must be in [0, 1], got {slow_fraction}"
            )
        self._fast_us = float(fast_us)
        self._slow_us = float(slow_us)
        self._slow_fraction = float(slow_fraction)

    def sample_service_us(self, rng=None, request=None) -> float:
        if rng is None:
            return self.mean_service_us()
        if rng.random() < self._slow_fraction:
            return self._slow_us
        return self._fast_us

    def mean_service_us(self) -> float:
        return (self._fast_us * (1.0 - self._slow_fraction)
                + self._slow_us * self._slow_fraction)
